"""Quickstart: the paper's two headline results in under a minute.

Runs the Fig. 3 genome-release comparison and the Fig. 4 early-stopping
replay with default settings and prints the same aggregates the paper
reports (>12x weighted speedup; ~19.5% STAR-hours saved).

Usage::

    python examples/quickstart.py
"""

from repro import run_fig3, run_fig4
from repro.perf.calibration import calibrate
from repro.perf.targets import summarize


def main() -> None:
    print(summarize())
    print()
    print(calibrate().to_text())
    print()

    fig3 = run_fig3(rng=0)
    print(fig3.to_table(max_rows=10))
    print()

    fig4 = run_fig4(rng=0)
    print(fig4.savings.to_text())
    print(f"false terminations: {fig4.false_terminations}")


if __name__ == "__main__":
    main()
