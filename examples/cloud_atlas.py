"""Cloud atlas campaign: the Fig. 2 architecture end to end.

Simulates a 150-run atlas slice on an AutoScalingGroup of spot
r6a.2xlarge instances with the release-111 index and early stopping on,
then re-runs the identical workload with each optimization disabled to
show what it buys:

* baseline        — r111 index, early stopping, spot
* no-early-stop   — r111 index, spot
* r108-index      — old index (needs r6a.4xlarge), early stopping, spot
* on-demand       — r111 index, early stopping, on-demand

Usage::

    python examples/cloud_atlas.py
"""

from dataclasses import replace

from repro.cloud.autoscaling import ScalingPolicy
from repro.cloud.ec2 import InstanceMarket
from repro.core.atlas import AtlasConfig, run_atlas
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease
from repro.util.tables import Table


def main() -> None:
    jobs = generate_corpus(CorpusSpec(n_runs=150), rng=3)
    base = AtlasConfig(
        release=EnsemblRelease.R111,
        instance_name="r6a.2xlarge",
        market=InstanceMarket.SPOT,
        scaling=ScalingPolicy(max_size=8, messages_per_instance=4),
        seed=11,
    )
    variants = {
        "baseline": base,
        "no-early-stop": replace(base, early_stopping=None),
        "r108-index": replace(
            base, release=EnsemblRelease.R108, instance_name="r6a.4xlarge"
        ),
        "on-demand": replace(base, market=InstanceMarket.ON_DEMAND),
    }

    table = Table(
        ["variant", "makespan h", "jobs/h", "STAR h", "terminated",
         "init s", "cost $", "$/job"],
        title=f"Atlas campaign over {len(jobs)} SRA runs",
    )
    for name, config in variants.items():
        report = run_atlas(jobs, config)
        table.add_row(
            [
                name,
                f"{report.makespan_seconds / 3600:.2f}",
                f"{report.throughput_jobs_per_hour:.1f}",
                f"{report.star_hours_actual:.1f}",
                report.n_terminated,
                f"{report.init_overhead_seconds:.0f}",
                f"{report.cost.total_usd:.2f}",
                f"{report.cost.total_usd / report.n_jobs:.3f}",
            ]
        )
    print(table.render())
    print(
        "\nReading the table: early stopping trims STAR hours; the r111 "
        "index cuts both runtime (~12x) and init overhead (~3x smaller "
        "download+load); spot cuts cost at a small makespan penalty."
    )


if __name__ == "__main__":
    main()
