"""Shared-memory parallel alignment: the engine alone, then in the pipeline.

Demonstrates the two levers the paper's instance architecture uses:

1. publish the suffix-array index into POSIX shared memory once and fan
   read batches out to a persistent worker pool
   (:class:`~repro.align.engine.ParallelStarAligner`) — the merged result
   is *identical* to the serial aligner's, so everything downstream
   (early stopping, GeneCounts, DESeq2) is unaffected;
2. run the four-step pipeline with ``PipelineConfig(workers=...)`` and
   overlap whole accessions with ``run_batch(..., BatchOptions(max_parallel=...))``.

Usage::

    python examples/parallel_pipeline.py [workdir]
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.align.engine import ParallelStarAligner
from repro.align.index import genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.pipeline import (
    BatchOptions,
    PipelineConfig,
    TranscriptomicsAtlasPipeline,
)
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.reads.sra import SraArchive, SraRepository

WORKERS = 2


def main(workdir: Path) -> None:
    rng = np.random.default_rng(7)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    index = genome_generate(assembly, universe.annotation)
    simulator = ReadSimulator(assembly, universe.annotation)

    # --- 1. the engine alone: identical results, shared index ------------
    sample = simulator.simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=600, read_length=80),
        rng=11,
    )
    parameters = StarParameters(progress_every=200)

    t0 = time.perf_counter()
    serial = StarAligner(index, parameters).run(sample.records)
    serial_s = time.perf_counter() - t0

    with ParallelStarAligner(index, parameters, workers=WORKERS) as engine:
        print(
            f"index published to shared memory: "
            f"{engine.start().shared_bytes / 1e6:.1f} MB, "
            f"{WORKERS} workers attached zero-copy"
        )
        t0 = time.perf_counter()
        parallel = engine.run(sample.records)
        parallel_s = time.perf_counter() - t0
    # blocks are unlinked on exit; nothing lingers in /dev/shm

    assert parallel.outcomes == serial.outcomes
    assert parallel.final.mapped_unique == serial.final.mapped_unique
    print(
        f"serial {serial_s:.2f}s vs {WORKERS}-worker {parallel_s:.2f}s "
        f"({serial_s / parallel_s:.2f}x) — results identical"
    )

    # --- 2. the pipeline: one engine shared across accessions ------------
    repository = SraRepository()
    profiles = {
        "SRR0000001": SampleProfile(LibraryType.BULK_POLYA, n_reads=400, read_length=80),
        "SRR0000002": SampleProfile(LibraryType.BULK_TOTAL, n_reads=400, read_length=80),
        "SRR0000003": SampleProfile(LibraryType.SINGLE_CELL_3P, n_reads=400, read_length=80),
    }
    for i, (accession, profile) in enumerate(profiles.items()):
        s = simulator.simulate(profile, rng=100 + i, read_id_prefix=accession)
        repository.deposit(SraArchive(accession, profile.library, s.records))

    config = PipelineConfig(
        early_stopping=EarlyStoppingPolicy(min_reads=40),
        workers=WORKERS,
    )
    with TranscriptomicsAtlasPipeline(
        repository, StarAligner(index, parameters), workdir, config=config
    ) as pipeline:
        results = pipeline.run_batch(list(profiles), BatchOptions(max_parallel=2))
        for r in results:
            print(
                f"{r.accession}: {r.status.value:14s} "
                f"mapped {100 * r.mapped_fraction:.1f}%  "
                f"star {r.timing.star:.2f}s"
            )
        matrix, factors, _ = pipeline.normalize()
    print(
        f"count matrix: {matrix.n_genes} genes x {matrix.n_samples} samples, "
        f"size factors {np.round(factors, 3)}"
    )


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
