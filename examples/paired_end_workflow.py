"""Paired-end workflow: trim → align pairs → SAM + insert sizes.

Shows the extended toolchain on a paired-end sample, the dominant layout
in the SRA:

1. simulate a paired-end bulk sample (fragment model, some adapter
   read-through contamination);
2. package/unpack it through the paired ``.sra`` container and
   ``fasterq-dump --split-files``;
3. quality/adapter-trim both mates;
4. align pairs with FR-orientation pairing and template-length bounds;
5. write ``Aligned.out.sam`` and summarize the insert-size distribution.

Usage::

    python examples/paired_end_workflow.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.align.index import genome_generate
from repro.align.paired import PairedParameters, PairedStarAligner, PairStatus
from repro.align.sam import write_paired_sam
from repro.align.star import StarAligner, StarParameters
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.fastq import read_fastq
from repro.reads.library import LibraryType
from repro.reads.paired import (
    PairedProfile,
    PairedSraArchive,
    fasterq_dump_paired,
    simulate_paired,
)
from repro.reads.simulator import ReadSimulator
from repro.reads.trim import ReadTrimmer, TrimConfig, contaminate_with_adapter


def main(workdir: Path) -> None:
    rng = np.random.default_rng(23)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    index = genome_generate(assembly, universe.annotation)

    simulator = ReadSimulator(assembly, universe.annotation)
    sample = simulate_paired(
        simulator,
        PairedProfile(
            LibraryType.BULK_POLYA, n_pairs=300, read_length=75,
            insert_mean=260, insert_sd=35,
        ),
        rng=3,
        read_id_prefix="SRRPE01",
    )
    # read-through contamination on mate 1
    mate1 = contaminate_with_adapter(sample.mate1, fraction=0.25, rng=5)

    archive = PairedSraArchive("SRRPE01", LibraryType.BULK_POLYA, mate1, sample.mate2)
    sra_path = workdir / "SRRPE01.sra"
    sra_path.write_bytes(archive.to_bytes())
    p1, p2 = fasterq_dump_paired(sra_path, workdir)
    print(f"dumped {p1.name} + {p2.name} "
          f"({archive.n_pairs} pairs, {sra_path.stat().st_size / 1e3:.0f} kB sra)")

    trimmer = ReadTrimmer(TrimConfig(min_length=40))
    trimmed1, stats1 = trimmer.trim(read_fastq(p1))
    trimmed2, stats2 = trimmer.trim(read_fastq(p2))
    print(f"trim mate1: {stats1.to_text()}")
    print(f"trim mate2: {stats2.to_text()}")
    # keep pairs where both mates survived
    ids1 = {r.read_id.rsplit('/', 1)[0] for r in trimmed1}
    ids2 = {r.read_id.rsplit('/', 1)[0] for r in trimmed2}
    keep = ids1 & ids2
    trimmed1 = [r for r in trimmed1 if r.read_id.rsplit("/", 1)[0] in keep]
    trimmed2 = [r for r in trimmed2 if r.read_id.rsplit("/", 1)[0] in keep]

    aligner = PairedStarAligner(
        StarAligner(index, StarParameters(progress_every=1000)),
        PairedParameters(min_template=50, max_template=2500),
    )
    result = aligner.run(trimmed1, trimmed2)
    print(f"\npairs aligned: {len(result.outcomes)}")
    for status in PairStatus:
        n = sum(o.status is status for o in result.outcomes)
        print(f"  {status.value:12s} {n}")

    tlens = result.template_lengths()
    if tlens:
        print(f"\ninsert size: median {int(np.median(tlens))}, "
              f"IQR {int(np.percentile(tlens, 25))}-{int(np.percentile(tlens, 75))}")

    sam_path = workdir / "Aligned.out.sam"
    n = write_paired_sam(trimmed1, trimmed2, result.outcomes, index, sam_path)
    print(f"wrote {sam_path.name}: {n} alignment lines "
          "(paired flags, RNEXT/PNEXT, signed TLEN)")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        path.mkdir(parents=True, exist_ok=True)
        main(path)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
