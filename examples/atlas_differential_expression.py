"""From raw reads to differential expression — the atlas's purpose.

Simulates two tissue conditions (the "treatment" tissue over-expresses a
chosen set of genes 4x), pushes every sample through the real pipeline
machinery (simulate → align with GeneCounts → DESeq2 normalization), and
runs the Wald test — recovering exactly the genes that were perturbed.

This is the end-to-end journey the Transcriptomics Atlas enables once the
paper's pipeline has filled it with aligned samples.

Usage::

    python examples/atlas_differential_expression.py
"""

import numpy as np

from repro.align.index import genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.quant.diffexp import wald_test
from repro.quant.matrix import CountMatrix
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator, SimulatorConfig


def main() -> None:
    rng = np.random.default_rng(17)
    universe = make_universe(
        GenomeUniverseSpec(genes_per_chromosome=6), rng
    )
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    index = genome_generate(assembly, universe.annotation)
    aligner = StarAligner(index, StarParameters(progress_every=1000))

    perturbed = {"ENSG1_000", "ENSG2_001", "ENSG3_002"}
    print(f"perturbed genes (4x up in 'tumor'): {sorted(perturbed)}\n")

    columns: dict[str, dict[str, int]] = {}
    labels: list[str] = []
    for condition, boost in (("normal", 1.0), ("tumor", 4.0)):
        for replicate in range(3):
            sample_id = f"{condition}_{replicate}"
            # per-condition expression: perturbed genes boosted in tumor
            sim = ReadSimulator(
                assembly, universe.annotation,
                config=SimulatorConfig(expression_sigma=0.4),
            )
            # simulate, then resample perturbed-gene reads by boosting their
            # transcripts via a biased second pass
            sample = sim.simulate(
                SampleProfile(
                    LibraryType.BULK_POLYA, n_reads=700, read_length=80,
                    offtarget_fraction=0.05,
                ),
                rng=1000 + replicate,  # same expression draw per replicate pair
                read_id_prefix=sample_id,
            )
            result = aligner.run(sample.records)
            counts = result.gene_counts.column_vector()
            if boost > 1.0:
                # the perturbation: tumor tissue transcribes these genes 4x
                for gene in perturbed:
                    counts[gene] = int(counts[gene] * boost)
            columns[sample_id] = counts
            labels.append(condition)
            mapped = 100 * result.mapped_fraction
            print(f"aligned {sample_id}: mapped {mapped:.1f}%, "
                  f"assigned {result.gene_counts.total_assigned()} reads")

    matrix = CountMatrix.from_columns(columns).drop_all_zero_genes()
    ordered_labels = [
        "normal" if sid.startswith("normal") else "tumor"
        for sid in matrix.sample_ids
    ]
    result = wald_test(matrix, ordered_labels)
    print()
    print(result.to_table(max_rows=8))

    hits = {r.gene_id for r in result.significant()}
    print(f"\nsignificant at FDR 5%: {sorted(hits)}")
    print(f"recovered {len(hits & perturbed)}/{len(perturbed)} perturbed genes; "
          f"{len(hits - perturbed)} false positives")


if __name__ == "__main__":
    main()
