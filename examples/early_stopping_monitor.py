"""Watching the early-stopping monitor fire on a real alignment.

Builds a mini genome, simulates one bulk and one single-cell sample, and
runs the real STAR-like aligner with the ``EarlyStopMonitor`` attached —
printing each ``Log.progress.out`` snapshot and the monitor's decision as
the run unfolds.  The bulk run completes; the single-cell run is aborted
as soon as ≥10% of its reads are processed with <30% mapped.

Also demonstrates the paper's closing observation: the Salmon-like
pseudo-aligner baseline produces *no* progress stream, so the same policy
cannot be applied to it — the wasted compute is exactly what early
stopping removes.

Usage::

    python examples/early_stopping_monitor.py
"""

import numpy as np

from repro.align.index import genome_generate
from repro.align.pseudo import PseudoAligner, build_pseudo_index
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStopMonitor, EarlyStoppingPolicy
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator


def run_with_monitor(aligner, records, label: str) -> None:
    policy = EarlyStoppingPolicy(min_reads=50)
    monitor = EarlyStopMonitor(policy=policy)

    def verbose_hook(record):
        decision = monitor.observe(record)
        print(
            f"  [{label}] processed {record.reads_processed}/{record.reads_total} "
            f"({100 * record.processed_fraction:.0f}%)  "
            f"mapped {100 * record.mapped_fraction:.1f}%  -> {decision.value}"
        )
        return decision.should_continue

    result = aligner.run(records, monitor=verbose_hook)
    verdict = "ABORTED by monitor" if result.aborted else (
        "completed, " + ("accepted" if policy.accepts_final(result.mapped_fraction) else "rejected at final check")
    )
    print(f"  [{label}] {verdict}; final mapped {100 * result.mapped_fraction:.1f}%\n")


def main() -> None:
    rng = np.random.default_rng(5)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    index = genome_generate(assembly, universe.annotation)
    aligner = StarAligner(index, StarParameters(progress_every=60))
    simulator = ReadSimulator(assembly, universe.annotation)

    print("bulk poly-A sample (high mapping rate — should complete):")
    bulk = simulator.simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=600, read_length=80), rng=21
    )
    run_with_monitor(aligner, bulk.records, "bulk")

    print("single-cell 3' sample (low mapping rate — should be aborted):")
    sc = simulator.simulate(
        SampleProfile(LibraryType.SINGLE_CELL_3P, n_reads=600, read_length=80), rng=22
    )
    run_with_monitor(aligner, sc.records, "single-cell")

    print("Salmon-like pseudo-aligner on the same single-cell sample:")
    pseudo = PseudoAligner(build_pseudo_index(assembly, universe.annotation))
    result = pseudo.run(sc.records)
    print(
        f"  no progress stream exists — only the final mapping rate "
        f"({100 * result.mapped_fraction:.1f}%) after ALL reads were processed.\n"
        "  Early stopping is impossible here; the paper suggests pseudo-\n"
        "  aligners should expose a running mapping rate too."
    )


if __name__ == "__main__":
    main()
