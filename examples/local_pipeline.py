"""End-to-end local pipeline on real (synthetic) data.

Exercises every tool for real, no performance models involved:

1. build a genome universe and the release-111 assembly;
2. ``genomeGenerate`` a suffix-array index;
3. simulate three RNA-seq samples (two bulk, one single-cell) and deposit
   them as ``.sra`` archives in a mock repository;
4. run the four-step pipeline per accession — prefetch → fasterq-dump →
   STAR with the early-stopping monitor → joint DESeq2 normalization.

The single-cell sample gets aborted by the monitor (its mapping rate sits
far below the 30% bar), exactly like the 38 terminated runs in Fig. 4.

Usage::

    python examples/local_pipeline.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.align.index import genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.pipeline import PipelineConfig, TranscriptomicsAtlasPipeline
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.reads.sra import SraArchive, SraRepository


def main(workdir: Path) -> None:
    rng = np.random.default_rng(7)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    print(f"assembly: {assembly.name}, {assembly.total_length} bases, "
          f"{len(assembly)} contigs")

    index = genome_generate(assembly, universe.annotation)
    print(f"index: {index.size_bytes() / 1e6:.1f} MB in memory")

    simulator = ReadSimulator(assembly, universe.annotation)
    repository = SraRepository()
    samples = {
        "SRR0000001": SampleProfile(LibraryType.BULK_POLYA, n_reads=400, read_length=80),
        "SRR0000002": SampleProfile(LibraryType.BULK_TOTAL, n_reads=400, read_length=80),
        "SRR0000003": SampleProfile(LibraryType.SINGLE_CELL_3P, n_reads=400, read_length=80),
    }
    for i, (accession, profile) in enumerate(samples.items()):
        sample = simulator.simulate(profile, rng=100 + i, read_id_prefix=accession)
        meta = repository.deposit(
            SraArchive(accession, profile.library, sample.records)
        )
        print(f"deposited {accession}: {meta.n_reads} reads, "
              f"{meta.sra_bytes / 1e3:.0f} kB sra, library {meta.library.value}")

    aligner = StarAligner(index, StarParameters(progress_every=40))
    pipeline = TranscriptomicsAtlasPipeline(
        repository,
        aligner,
        workdir,
        config=PipelineConfig(
            early_stopping=EarlyStoppingPolicy(min_reads=40)
        ),
    )
    for result in pipeline.run_batch(sorted(samples)):
        print(
            f"{result.accession}: {result.status.value:15s} "
            f"mapped={100 * result.mapped_fraction:.1f}%  "
            f"star={result.timing.star:.2f}s"
        )

    matrix, factors, normalized = pipeline.normalize()
    print(f"\nDESeq2 step: {matrix.n_genes} genes x {matrix.n_samples} samples")
    for sid, factor in zip(matrix.sample_ids, factors):
        print(f"  size factor {sid}: {factor:.3f}")
    print(f"normalized counts, first gene {matrix.gene_ids[0]}: "
          f"{np.round(normalized[0], 1)}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp))
