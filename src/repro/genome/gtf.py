"""Minimal GTF reader/writer for the :class:`~repro.genome.annotation.Annotation` model.

Emits ``gene``/``transcript``/``exon`` features with the standard attribute
keys (``gene_id``, ``transcript_id``, ``exon_number``, ``gene_name``), 1-based
inclusive coordinates as GTF specifies, and parses them back losslessly.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path

from repro.genome.annotation import Annotation, Exon, Gene, Strand, Transcript
from repro.genome.model import SequenceRegion

_ATTR_RE = re.compile(r'(\w+)\s+"([^"]*)"')


def _open_text(path: Path | str, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _attrs(**kwargs: str | int) -> str:
    return " ".join(f'{k} "{v}";' for k, v in kwargs.items())


def write_gtf(annotation: Annotation, path: Path | str, *, source: str = "repro") -> None:
    """Write an annotation as GTF (1-based inclusive coordinates)."""
    with _open_text(path, "w") as fh:
        for gene in annotation:
            fh.write(
                "\t".join(
                    [
                        gene.contig,
                        source,
                        "gene",
                        str(gene.start + 1),
                        str(gene.end),
                        ".",
                        gene.strand.value,
                        ".",
                        _attrs(gene_id=gene.gene_id, gene_name=gene.name),
                    ]
                )
                + "\n"
            )
            for t in gene.transcripts:
                fh.write(
                    "\t".join(
                        [
                            t.contig,
                            source,
                            "transcript",
                            str(t.start + 1),
                            str(t.end),
                            ".",
                            t.strand.value,
                            ".",
                            _attrs(
                                gene_id=gene.gene_id,
                                transcript_id=t.transcript_id,
                                gene_name=gene.name,
                            ),
                        ]
                    )
                    + "\n"
                )
                for exon in t.exons:
                    fh.write(
                        "\t".join(
                            [
                                t.contig,
                                source,
                                "exon",
                                str(exon.region.start + 1),
                                str(exon.region.end),
                                ".",
                                t.strand.value,
                                ".",
                                _attrs(
                                    gene_id=gene.gene_id,
                                    transcript_id=t.transcript_id,
                                    exon_number=exon.number,
                                    gene_name=gene.name,
                                ),
                            ]
                        )
                        + "\n"
                    )


def read_gtf(path: Path | str) -> Annotation:
    """Parse a GTF file produced by :func:`write_gtf` (or compatible).

    Only ``gene``/``transcript``/``exon`` features are consumed; unknown
    feature types and comment lines are skipped.
    """
    gene_meta: dict[str, dict] = {}
    transcript_meta: dict[str, dict] = {}
    exons: dict[str, list[Exon]] = {}
    gene_order: list[str] = []

    with _open_text(path, "r") as fh:
        for raw in fh:
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) != 9:
                raise ValueError(f"malformed GTF line: {line!r}")
            contig, _source, feature, start, end, _score, strand, _frame, attr_text = fields
            attrs = dict(_ATTR_RE.findall(attr_text))
            start0 = int(start) - 1
            end0 = int(end)
            if feature == "gene":
                gid = attrs["gene_id"]
                gene_meta[gid] = {
                    "name": attrs.get("gene_name", gid),
                    "contig": contig,
                    "strand": Strand(strand),
                }
                gene_order.append(gid)
            elif feature == "transcript":
                tid = attrs["transcript_id"]
                transcript_meta[tid] = {
                    "gene_id": attrs["gene_id"],
                    "contig": contig,
                    "strand": Strand(strand),
                }
                exons.setdefault(tid, [])
            elif feature == "exon":
                tid = attrs["transcript_id"]
                number = int(attrs.get("exon_number", len(exons.get(tid, [])) + 1))
                exons.setdefault(tid, []).append(
                    Exon(SequenceRegion(contig, start0, end0), number)
                )

    transcripts_by_gene: dict[str, list[Transcript]] = {}
    for tid, meta in transcript_meta.items():
        transcript = Transcript(
            transcript_id=tid,
            gene_id=meta["gene_id"],
            contig=meta["contig"],
            strand=meta["strand"],
            exons=exons.get(tid, []),
        )
        transcripts_by_gene.setdefault(meta["gene_id"], []).append(transcript)

    genes: list[Gene] = []
    for gid in gene_order:
        meta = gene_meta[gid]
        genes.append(
            Gene(
                gene_id=gid,
                name=meta["name"],
                contig=meta["contig"],
                strand=meta["strand"],
                transcripts=sorted(
                    transcripts_by_gene.get(gid, []), key=lambda t: t.transcript_id
                ),
            )
        )
    return Annotation(genes=genes)
