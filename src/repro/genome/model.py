"""Assembly model: contigs, assembly levels, and whole-assembly views.

Mirrors the Ensembl vocabulary the paper relies on:

* ``CHROMOSOME`` — placed, assembled chromosomes;
* ``UNLOCALIZED`` — scaffolds known to belong to a chromosome but without a
  fixed position (``*_random`` in UCSC naming);
* ``UNPLACED`` — scaffolds not assigned to any chromosome (``chrUn_*``);
* ``ALT`` — alternate loci, present in *toplevel* but not *primary_assembly*.

The *toplevel* genome type = all of the above; *primary_assembly* drops the
ALT contigs.  Between releases 109 and 110 Ensembl assigned many
unlocalized/unplaced scaffolds to chromosome sites, which is exactly the
transformation :mod:`repro.genome.ensembl` simulates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.genome.alphabet import decode, gc_content


class AssemblyLevel(enum.Enum):
    """Placement status of a contig within the assembly."""

    CHROMOSOME = "chromosome"
    UNLOCALIZED = "unlocalized"
    UNPLACED = "unplaced"
    ALT = "alt"

    @property
    def is_scaffold(self) -> bool:
        """True for contigs that are not full chromosomes."""
        return self is not AssemblyLevel.CHROMOSOME


@dataclass(frozen=True)
class SequenceRegion:
    """A half-open interval ``[start, end)`` on a named contig."""

    contig: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid region {self.contig}:{self.start}-{self.end}")

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "SequenceRegion") -> bool:
        """True when the two regions share at least one base on one contig."""
        return (
            self.contig == other.contig
            and self.start < other.end
            and other.start < self.end
        )

    def contains(self, other: "SequenceRegion") -> bool:
        """True when ``other`` lies fully inside this region."""
        return (
            self.contig == other.contig
            and self.start <= other.start
            and other.end <= self.end
        )


@dataclass
class Contig:
    """One named sequence of the assembly with its placement level."""

    name: str
    sequence: np.ndarray
    level: AssemblyLevel = AssemblyLevel.CHROMOSOME

    def __post_init__(self) -> None:
        self.sequence = np.asarray(self.sequence, dtype=np.uint8)
        if self.sequence.ndim != 1:
            raise ValueError("contig sequence must be one-dimensional")
        if not self.name:
            raise ValueError("contig name must be non-empty")

    @property
    def length(self) -> int:
        return int(self.sequence.size)

    @property
    def gc(self) -> float:
        return gc_content(self.sequence)

    def subsequence(self, start: int, end: int) -> np.ndarray:
        """Return bases of ``[start, end)`` (bounds-checked view)."""
        if not 0 <= start <= end <= self.length:
            raise IndexError(
                f"[{start}, {end}) out of bounds for contig {self.name} of length {self.length}"
            )
        return self.sequence[start:end]

    def to_string(self) -> str:
        """Decode the full contig sequence (test/debug helper)."""
        return decode(self.sequence)


@dataclass
class Assembly:
    """An ordered collection of contigs — one Ensembl genome FASTA's worth.

    ``name`` follows Ensembl conventions (e.g. ``GRCh38.r108.toplevel``);
    ``contigs`` preserve file order, which the aligner's index relies on
    for stable genome coordinates.
    """

    name: str
    contigs: list[Contig] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.contigs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate contig names in assembly {self.name}")

    def __len__(self) -> int:
        return len(self.contigs)

    def __iter__(self):
        return iter(self.contigs)

    @property
    def total_length(self) -> int:
        """Total bases across all contigs (the 'FASTA size' of the paper)."""
        return sum(c.length for c in self.contigs)

    @property
    def contig_names(self) -> list[str]:
        return [c.name for c in self.contigs]

    def contig(self, name: str) -> Contig:
        """Look up a contig by name; raises ``KeyError`` when absent."""
        for c in self.contigs:
            if c.name == name:
                return c
        raise KeyError(f"no contig named {name!r} in assembly {self.name}")

    def add(self, contig: Contig) -> None:
        """Append a contig, enforcing name uniqueness."""
        if any(c.name == contig.name for c in self.contigs):
            raise ValueError(f"contig {contig.name!r} already present")
        self.contigs.append(contig)

    def count_by_level(self) -> dict[AssemblyLevel, int]:
        """Number of contigs at each assembly level."""
        counts = {level: 0 for level in AssemblyLevel}
        for c in self.contigs:
            counts[c.level] += 1
        return counts

    def length_by_level(self) -> dict[AssemblyLevel, int]:
        """Total bases at each assembly level."""
        totals = {level: 0 for level in AssemblyLevel}
        for c in self.contigs:
            totals[c.level] += c.length
        return totals

    def toplevel(self) -> "Assembly":
        """The *toplevel* genome type: every contig, including ALT loci."""
        return Assembly(name=f"{self.name}.toplevel", contigs=list(self.contigs))

    def primary_assembly(self) -> "Assembly":
        """The *primary_assembly* genome type: toplevel minus ALT contigs."""
        kept = [c for c in self.contigs if c.level is not AssemblyLevel.ALT]
        return Assembly(name=f"{self.name}.primary_assembly", contigs=kept)

    def fetch(self, region: SequenceRegion) -> np.ndarray:
        """Extract the bases of ``region`` from the owning contig."""
        return self.contig(region.contig).subsequence(region.start, region.end)

    def concatenate(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Concatenate all contigs into one array for indexing.

        Returns ``(sequence, offsets, names)`` where ``offsets`` has
        ``len(contigs) + 1`` entries and contig ``i`` occupies
        ``sequence[offsets[i]:offsets[i+1]]``.
        """
        if not self.contigs:
            return (
                np.empty(0, dtype=np.uint8),
                np.zeros(1, dtype=np.int64),
                [],
            )
        arrays = [c.sequence for c in self.contigs]
        lengths = np.array([a.size for a in arrays], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        return np.concatenate(arrays), offsets, self.contig_names
