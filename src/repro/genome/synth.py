"""Synthetic genome and annotation generation.

Builds laptop-scale assemblies whose *structure* matches the mechanism the
paper's §III-A optimization exploits: early Ensembl releases carry many
unlocalized/unplaced scaffolds whose sequence duplicates chromosome
segments (they are the same DNA, just not yet assigned a site), inflating
the toplevel FASTA and the aligner index and producing spurious
multi-mapping seed hits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome.alphabet import BASE_N, random_sequence
from repro.genome.annotation import Annotation, Exon, Gene, Strand, Transcript
from repro.genome.model import Assembly, AssemblyLevel, Contig, SequenceRegion
from repro.util.rng import derive_rng, ensure_rng


@dataclass(frozen=True)
class GenomeUniverseSpec:
    """Parameters of the invariant part of the synthetic genome.

    The "universe" is the chromosome set plus annotation — identical across
    releases.  Releases differ only in which duplicated scaffolds they still
    carry (see :func:`make_scaffolds`).
    """

    n_chromosomes: int = 4
    chromosome_length: int = 30_000
    genes_per_chromosome: int = 6
    exons_per_transcript: int = 3
    exon_length: int = 180
    intron_length: int = 300
    gc: float = 0.41

    def __post_init__(self) -> None:
        if self.n_chromosomes < 1:
            raise ValueError("need at least one chromosome")
        gene_span = (
            self.exons_per_transcript * self.exon_length
            + (self.exons_per_transcript - 1) * self.intron_length
        )
        needed = self.genes_per_chromosome * (gene_span + 200)
        if self.chromosome_length < needed:
            raise ValueError(
                f"chromosome_length {self.chromosome_length} too short for "
                f"{self.genes_per_chromosome} genes of span {gene_span}"
            )


@dataclass
class GenomeUniverse:
    """The release-invariant genome: chromosomes + annotation."""

    chromosomes: list[Contig]
    annotation: Annotation

    @property
    def chromosome_bases(self) -> int:
        return sum(c.length for c in self.chromosomes)


def make_universe(
    spec: GenomeUniverseSpec, rng: np.random.Generator | int | None = None
) -> GenomeUniverse:
    """Generate chromosomes and a gene annotation deterministically from ``rng``."""
    rng = ensure_rng(rng)
    seq_rng = derive_rng(rng, "chromosome-sequences")
    chromosomes = [
        Contig(
            name=str(i + 1),
            sequence=random_sequence(spec.chromosome_length, seq_rng, gc=spec.gc),
            level=AssemblyLevel.CHROMOSOME,
        )
        for i in range(spec.n_chromosomes)
    ]
    annotation = _make_annotation(spec, chromosomes, derive_rng(rng, "annotation"))
    return GenomeUniverse(chromosomes=chromosomes, annotation=annotation)


def _make_annotation(
    spec: GenomeUniverseSpec,
    chromosomes: list[Contig],
    rng: np.random.Generator,
) -> Annotation:
    """Lay genes end-to-end with random gaps; one transcript per gene.

    Deterministic layout (not rejection sampling) so annotation generation
    never fails for valid specs.
    """
    gene_span = (
        spec.exons_per_transcript * spec.exon_length
        + (spec.exons_per_transcript - 1) * spec.intron_length
    )
    genes: list[Gene] = []
    for chrom in chromosomes:
        slack = chrom.length - spec.genes_per_chromosome * gene_span
        max_gap = max(1, slack // (spec.genes_per_chromosome + 1))
        cursor = int(rng.integers(0, max_gap))
        for g in range(spec.genes_per_chromosome):
            gene_id = f"ENSG{chrom.name}_{g:03d}"
            strand = Strand.FORWARD if rng.random() < 0.5 else Strand.REVERSE
            exons = []
            pos = cursor
            for e in range(spec.exons_per_transcript):
                exons.append(
                    Exon(
                        SequenceRegion(chrom.name, pos, pos + spec.exon_length),
                        number=e + 1,
                    )
                )
                pos += spec.exon_length + spec.intron_length
            transcript = Transcript(
                transcript_id=f"ENST{chrom.name}_{g:03d}",
                gene_id=gene_id,
                contig=chrom.name,
                strand=strand,
                exons=exons,
            )
            genes.append(
                Gene(
                    gene_id=gene_id,
                    name=f"GENE{chrom.name}_{g:03d}",
                    contig=chrom.name,
                    strand=strand,
                    transcripts=[transcript],
                )
            )
            cursor += gene_span + int(rng.integers(1, max_gap + 1))
    return Annotation(genes=genes)


def make_scaffolds(
    universe: GenomeUniverse,
    *,
    n_scaffolds: int,
    total_bases: int,
    level: AssemblyLevel,
    divergence: float = 0.005,
    rng: np.random.Generator | int | None = None,
    name_prefix: str = "KI",
) -> list[Contig]:
    """Create scaffolds that *duplicate* chromosome segments.

    Each scaffold copies a random chromosome window and applies point
    divergence — modelling sequences that a later release will recognise as
    already-placed chromosome DNA.  This is what makes the old-release index
    both bigger and slower (extra multi-mapping seed hits) while barely
    changing the mapping rate, exactly the paper's observation.
    """
    if n_scaffolds <= 0:
        return []
    if total_bases <= 0:
        raise ValueError("total_bases must be positive for n_scaffolds > 0")
    rng = ensure_rng(rng)
    # Split total_bases into n_scaffolds lognormal-ish chunks, min 200 bases.
    weights = rng.lognormal(mean=0.0, sigma=0.8, size=n_scaffolds)
    lengths = np.maximum((weights / weights.sum() * total_bases).astype(int), 200)
    scaffolds: list[Contig] = []
    for i, length in enumerate(lengths):
        chrom = universe.chromosomes[int(rng.integers(0, len(universe.chromosomes)))]
        length = min(int(length), chrom.length)
        start = int(rng.integers(0, chrom.length - length + 1))
        seq = chrom.sequence[start : start + length].copy()
        if divergence > 0:
            mask = rng.random(seq.size) < divergence
            # substitute with a uniformly different base; leave Ns alone
            subs = rng.integers(0, 4, size=int(mask.sum())).astype(np.uint8)
            target = seq[mask]
            collide = (subs == target) & (target != BASE_N)
            subs[collide] = (subs[collide] + 1) % 4
            keep_n = target == BASE_N
            subs[keep_n] = BASE_N
            seq[mask] = subs
        scaffolds.append(
            Contig(
                name=f"{name_prefix}{270700 + i}.1",
                sequence=seq,
                level=level,
            )
        )
    return scaffolds


def assemble_release(
    universe: GenomeUniverse,
    *,
    name: str,
    n_unlocalized: int,
    n_unplaced: int,
    unlocalized_bases: int,
    unplaced_bases: int,
    rng: np.random.Generator | int | None = None,
) -> Assembly:
    """Compose a release view: invariant chromosomes + release-specific scaffolds."""
    rng = ensure_rng(rng)
    contigs: list[Contig] = list(universe.chromosomes)
    contigs += make_scaffolds(
        universe,
        n_scaffolds=n_unlocalized,
        total_bases=unlocalized_bases,
        level=AssemblyLevel.UNLOCALIZED,
        rng=derive_rng(rng, "unlocalized"),
        name_prefix="GL",
    )
    contigs += make_scaffolds(
        universe,
        n_scaffolds=n_unplaced,
        total_bases=unplaced_bases,
        level=AssemblyLevel.UNPLACED,
        rng=derive_rng(rng, "unplaced"),
        name_prefix="KI",
    )
    return Assembly(name=name, contigs=contigs)
