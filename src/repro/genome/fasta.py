"""FASTA reading and writing for :class:`~repro.genome.model.Assembly`.

Writes Ensembl-style headers carrying the assembly level in the
description field (``>1 dna:chromosome ...``), and parses them back, so a
round-trip preserves the level information the release model depends on.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path

import numpy as np

from repro.genome.alphabet import decode, encode
from repro.genome.model import Assembly, AssemblyLevel, Contig

_LEVEL_TOKEN = {
    AssemblyLevel.CHROMOSOME: "chromosome",
    AssemblyLevel.UNLOCALIZED: "unlocalized",
    AssemblyLevel.UNPLACED: "unplaced",
    AssemblyLevel.ALT: "alt",
}
_TOKEN_LEVEL = {v: k for k, v in _LEVEL_TOKEN.items()}

_LINE_WIDTH = 60  # Ensembl FASTA wraps at 60 columns


def _open_text(path: Path | str, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_fasta(assembly: Assembly, path: Path | str) -> None:
    """Write an assembly as (optionally gzipped) Ensembl-style FASTA."""
    with _open_text(path, "w") as fh:
        _write_fasta_stream(assembly, fh)


def fasta_bytes(assembly: Assembly) -> bytes:
    """Render an assembly to in-memory FASTA bytes (used by the mock S3)."""
    buf = io.StringIO()
    _write_fasta_stream(assembly, buf)
    return buf.getvalue().encode("ascii")


def _write_fasta_stream(assembly: Assembly, fh) -> None:
    for contig in assembly:
        token = _LEVEL_TOKEN[contig.level]
        fh.write(f">{contig.name} dna:{token} {assembly.name}:{contig.name}:1:{contig.length}:1\n")
        text = decode(contig.sequence)
        for start in range(0, len(text), _LINE_WIDTH):
            fh.write(text[start : start + _LINE_WIDTH])
            fh.write("\n")


def read_fasta(path: Path | str, *, name: str | None = None) -> Assembly:
    """Parse a FASTA file into an :class:`Assembly`.

    Headers without a ``dna:<level>`` token default to CHROMOSOME; this
    accepts both our own output and plain third-party FASTA.
    """
    path = Path(path)
    contigs: list[Contig] = []
    current_name: str | None = None
    current_level = AssemblyLevel.CHROMOSOME
    chunks: list[str] = []

    def flush() -> None:
        if current_name is None:
            return
        sequence = encode("".join(chunks))
        contigs.append(Contig(current_name, sequence, current_level))

    with _open_text(path, "r") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                flush()
                chunks = []
                header = line[1:].split()
                current_name = header[0]
                current_level = AssemblyLevel.CHROMOSOME
                for token in header[1:]:
                    if token.startswith("dna:"):
                        current_level = _TOKEN_LEVEL.get(
                            token[4:], AssemblyLevel.CHROMOSOME
                        )
            else:
                if current_name is None:
                    raise ValueError(f"{path}: sequence data before first header")
                chunks.append(line)
    flush()
    return Assembly(name=name or path.stem, contigs=contigs)


def read_fasta_bytes(data: bytes, *, name: str = "assembly") -> Assembly:
    """Parse in-memory FASTA bytes (counterpart of :func:`fasta_bytes`)."""
    contigs: list[Contig] = []
    current_name: str | None = None
    current_level = AssemblyLevel.CHROMOSOME
    chunks: list[str] = []

    def flush() -> None:
        if current_name is None:
            return
        contigs.append(Contig(current_name, encode("".join(chunks)), current_level))

    for raw in data.decode("ascii").splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            chunks = []
            header = line[1:].split()
            current_name = header[0]
            current_level = AssemblyLevel.CHROMOSOME
            for token in header[1:]:
                if token.startswith("dna:"):
                    current_level = _TOKEN_LEVEL.get(token[4:], AssemblyLevel.CHROMOSOME)
        else:
            chunks.append(line)
    flush()
    return Assembly(name=name, contigs=contigs)
