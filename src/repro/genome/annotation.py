"""Gene annotation model: genes, transcripts, exons, strand.

This is the minimum structure STAR's ``--quantMode GeneCounts`` needs:
gene extents for read-to-gene assignment and exon chains for the read
simulator and the splice-junction database (``sjdb``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.genome.alphabet import reverse_complement
from repro.genome.model import Assembly, SequenceRegion


class Strand(enum.Enum):
    """Genomic strand of a feature."""

    FORWARD = "+"
    REVERSE = "-"

    @property
    def sign(self) -> int:
        return 1 if self is Strand.FORWARD else -1


@dataclass(frozen=True)
class Exon:
    """One exon: a region plus its ordinal within the transcript."""

    region: SequenceRegion
    number: int

    @property
    def length(self) -> int:
        return self.region.length


@dataclass
class Transcript:
    """An ordered exon chain on one contig and strand.

    Exons are stored in genomic coordinate order regardless of strand;
    ``spliced_length`` and sequence extraction handle orientation.
    """

    transcript_id: str
    gene_id: str
    contig: str
    strand: Strand
    exons: list[Exon] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.exons:
            raise ValueError(f"transcript {self.transcript_id} has no exons")
        for exon in self.exons:
            if exon.region.contig != self.contig:
                raise ValueError(
                    f"exon on {exon.region.contig} in transcript on {self.contig}"
                )
        ordered = sorted(self.exons, key=lambda e: e.region.start)
        for a, b in zip(ordered, ordered[1:]):
            if a.region.end > b.region.start:
                raise ValueError(
                    f"overlapping exons in transcript {self.transcript_id}"
                )
        self.exons = ordered

    @property
    def start(self) -> int:
        return self.exons[0].region.start

    @property
    def end(self) -> int:
        return self.exons[-1].region.end

    @property
    def spliced_length(self) -> int:
        """Length of the mature (intron-less) transcript."""
        return sum(e.length for e in self.exons)

    @property
    def introns(self) -> list[SequenceRegion]:
        """Intron intervals between consecutive exons (genomic order)."""
        out: list[SequenceRegion] = []
        for a, b in zip(self.exons, self.exons[1:]):
            out.append(SequenceRegion(self.contig, a.region.end, b.region.start))
        return out

    @property
    def junctions(self) -> list[tuple[int, int]]:
        """Splice junctions as (donor_end, acceptor_start) genomic pairs."""
        return [(i.start, i.end) for i in self.introns]

    def spliced_sequence(self, assembly: Assembly) -> np.ndarray:
        """Extract the mature transcript sequence in 5'→3' orientation."""
        parts = [assembly.fetch(e.region) for e in self.exons]
        seq = np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)
        if self.strand is Strand.REVERSE:
            seq = reverse_complement(seq)
        return seq

    def genomic_position(self, transcript_offset: int) -> int:
        """Map a 0-based offset on the mature transcript to a genomic position.

        Accounts for strand: offset 0 is the transcript's 5' end.
        """
        if not 0 <= transcript_offset < self.spliced_length:
            raise IndexError(
                f"offset {transcript_offset} outside transcript of length "
                f"{self.spliced_length}"
            )
        if self.strand is Strand.FORWARD:
            remaining = transcript_offset
            for exon in self.exons:
                if remaining < exon.length:
                    return exon.region.start + remaining
                remaining -= exon.length
        else:
            remaining = transcript_offset
            for exon in reversed(self.exons):
                if remaining < exon.length:
                    return exon.region.end - 1 - remaining
                remaining -= exon.length
        raise AssertionError("unreachable: offset validated above")


@dataclass
class Gene:
    """A gene: named extent plus its transcripts."""

    gene_id: str
    name: str
    contig: str
    strand: Strand
    transcripts: list[Transcript] = field(default_factory=list)

    def __post_init__(self) -> None:
        for t in self.transcripts:
            if t.gene_id != self.gene_id:
                raise ValueError(
                    f"transcript {t.transcript_id} belongs to {t.gene_id}, "
                    f"not {self.gene_id}"
                )

    @property
    def start(self) -> int:
        return min(t.start for t in self.transcripts)

    @property
    def end(self) -> int:
        return max(t.end for t in self.transcripts)

    @property
    def region(self) -> SequenceRegion:
        return SequenceRegion(self.contig, self.start, self.end)


@dataclass
class Annotation:
    """All genes of an assembly, with index structures for assignment."""

    genes: list[Gene] = field(default_factory=list)

    def __post_init__(self) -> None:
        ids = [g.gene_id for g in self.genes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate gene ids in annotation")

    def __len__(self) -> int:
        return len(self.genes)

    def __iter__(self):
        return iter(self.genes)

    @property
    def gene_ids(self) -> list[str]:
        return [g.gene_id for g in self.genes]

    @property
    def transcripts(self) -> list[Transcript]:
        return [t for g in self.genes for t in g.transcripts]

    def gene(self, gene_id: str) -> Gene:
        for g in self.genes:
            if g.gene_id == gene_id:
                return g
        raise KeyError(f"no gene {gene_id!r}")

    def genes_on(self, contig: str) -> list[Gene]:
        """Genes on one contig, sorted by start coordinate."""
        return sorted(
            (g for g in self.genes if g.contig == contig), key=lambda g: g.start
        )

    def assign_position(self, contig: str, position: int) -> Gene | None:
        """Return the gene whose extent covers (contig, position), if any.

        Where gene extents overlap, the first (lowest-start) match wins —
        matching STAR's "ambiguous counts to neither" is handled one level
        up in :mod:`repro.align.counts`, which needs *all* hits.
        """
        for g in self.genes_on(contig):
            if g.start <= position < g.end:
                return g
        return None

    def overlapping_genes(self, region: SequenceRegion) -> list[Gene]:
        """All genes whose extent overlaps ``region``."""
        return [
            g
            for g in self.genes
            if g.contig == region.contig and g.region.overlaps(region)
        ]

    def splice_junctions(self) -> list[tuple[str, int, int]]:
        """The annotated junction database: (contig, donor_end, acceptor_start).

        Deduplicated and sorted — this is what STAR calls the ``sjdb``.
        """
        seen: set[tuple[str, int, int]] = set()
        for t in self.transcripts:
            for start, end in t.junctions:
                seen.add((t.contig, start, end))
        return sorted(seen)
