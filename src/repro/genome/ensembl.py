"""Ensembl release catalog and release-view assembly builder.

Two layers:

* :data:`RELEASE_CATALOG` — full-scale facts per release used by the
  analytical performance model (:mod:`repro.perf`): toplevel FASTA bases,
  scaffold counts, release dates.  Numbers are a *synthetic but shaped*
  model (documented in DESIGN.md): they are chosen so the derived
  quantities match what the paper reports — a r108 STAR index of ~85 GiB,
  a r111 index of ~29.5 GiB, and the large scaffold consolidation landing
  between releases 109 and 110 (released 2023-04, as §III-A notes).

* :func:`build_release_assembly` — laptop-scale synthetic assembly for a
  release, sharing one :class:`~repro.genome.synth.GenomeUniverse` across
  releases so that the *same reads* can be aligned against both (the
  mini-Fig. 3 experiment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.genome.model import Assembly
from repro.genome.synth import GenomeUniverse, assemble_release
from repro.util.rng import derive_rng, ensure_rng


class EnsemblRelease(enum.IntEnum):
    """Ensembl human genome releases covered by the catalog."""

    R106 = 106
    R107 = 107
    R108 = 108
    R109 = 109
    R110 = 110
    R111 = 111
    R112 = 112


@dataclass(frozen=True)
class ReleaseSpec:
    """Full-scale description of one Ensembl release's *toplevel* genome.

    ``toplevel_bases`` is the total sequence in the toplevel FASTA; for
    pre-110 releases it is dominated by unlocalized/unplaced scaffolds that
    duplicate chromosome DNA, which is why it far exceeds the ~3.1 Gb of
    placed chromosomes.
    """

    release: int
    date: str  # first day of the release month, ISO
    chromosome_bases: int
    n_unlocalized: int
    n_unplaced: int
    unlocalized_bases: int
    unplaced_bases: int

    @property
    def toplevel_bases(self) -> int:
        """Total toplevel FASTA bases (chromosomes + all scaffolds)."""
        return self.chromosome_bases + self.unlocalized_bases + self.unplaced_bases

    @property
    def scaffold_fraction(self) -> float:
        """Fraction of toplevel bases contributed by scaffolds."""
        return (self.unlocalized_bases + self.unplaced_bases) / self.toplevel_bases

    @property
    def duplication_factor(self) -> float:
        """toplevel bases / chromosome bases — drives multi-mapping overhead."""
        return self.toplevel_bases / self.chromosome_bases


_CHROMOSOME_BASES = 3_050_000_000  # GRCh38 placed chromosomes, constant across releases

# Scaffold-heavy era (≤109) vs consolidated era (≥110). Chosen so the index
# model (≈10.2 bytes/base, repro.perf.index_model) reproduces the paper's
# 85 GiB (r108) and 29.5 GiB (r111) index sizes.
RELEASE_CATALOG: dict[EnsemblRelease, ReleaseSpec] = {
    EnsemblRelease.R106: ReleaseSpec(
        106, "2022-04-01", _CHROMOSOME_BASES, 4_100, 37_500, 1_640_000_000, 4_310_000_000
    ),
    EnsemblRelease.R107: ReleaseSpec(
        107, "2022-07-01", _CHROMOSOME_BASES, 4_100, 37_400, 1_630_000_000, 4_280_000_000
    ),
    EnsemblRelease.R108: ReleaseSpec(
        108, "2022-10-01", _CHROMOSOME_BASES, 4_050, 37_200, 1_620_000_000, 4_250_000_000
    ),
    EnsemblRelease.R109: ReleaseSpec(
        109, "2023-02-01", _CHROMOSOME_BASES, 3_980, 36_900, 1_600_000_000, 4_200_000_000
    ),
    EnsemblRelease.R110: ReleaseSpec(
        110, "2023-04-01", _CHROMOSOME_BASES, 42, 127, 5_200_000, 39_000_000
    ),
    EnsemblRelease.R111: ReleaseSpec(
        111, "2024-01-01", _CHROMOSOME_BASES, 42, 127, 5_200_000, 38_000_000
    ),
    EnsemblRelease.R112: ReleaseSpec(
        112, "2024-05-01", _CHROMOSOME_BASES, 42, 127, 5_200_000, 38_000_000
    ),
}


def release_spec(release: EnsemblRelease | int) -> ReleaseSpec:
    """Look up the catalog entry for a release (int or enum)."""
    rel = EnsemblRelease(int(release))
    return RELEASE_CATALOG[rel]


def consolidation_boundary() -> tuple[EnsemblRelease, EnsemblRelease]:
    """The release pair across which the scaffold consolidation happened."""
    return (EnsemblRelease.R109, EnsemblRelease.R110)


def build_release_assembly(
    universe: GenomeUniverse,
    release: EnsemblRelease | int,
    *,
    scale: float = 1e-5,
    rng: np.random.Generator | int | None = None,
) -> Assembly:
    """Build a laptop-scale toplevel assembly for ``release``.

    The chromosome part comes verbatim from ``universe`` so it is bitwise
    identical across releases (as real placed chromosomes are).  Scaffold
    *bases* are scaled so the mini-assembly preserves the release's
    full-scale duplication factor (toplevel/chromosome base ratio) — the
    quantity that drives both index size and multi-mapping cost; ``scale``
    only thins the scaffold *count* so mini-assemblies don't carry tens of
    thousands of tiny contigs.  The same ``rng`` must be passed for
    different releases to get consistent scaffold sampling where specs
    coincide.
    """
    spec = release_spec(release)
    rng = ensure_rng(rng)
    chrom_bases = universe.chromosome_bases
    unloc_frac = spec.unlocalized_bases / spec.chromosome_bases
    unpl_frac = spec.unplaced_bases / spec.chromosome_bases
    n_unloc = max(1, int(round(spec.n_unlocalized * scale * 100))) if spec.unlocalized_bases else 0
    n_unpl = max(1, int(round(spec.n_unplaced * scale * 100))) if spec.unplaced_bases else 0
    unloc_bases = max(400, int(unloc_frac * chrom_bases))
    unpl_bases = max(400, int(unpl_frac * chrom_bases))
    return assemble_release(
        universe,
        name=f"GRCh38.r{spec.release}.toplevel",
        n_unlocalized=n_unloc,
        n_unplaced=n_unpl,
        unlocalized_bases=unloc_bases,
        unplaced_bases=unpl_bases,
        rng=derive_rng(rng, f"release-{spec.release}"),
    )
