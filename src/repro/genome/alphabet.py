"""Nucleotide alphabet: numeric encoding and vectorized sequence ops.

Sequences are stored as ``numpy.uint8`` arrays with A=0, C=1, G=2, T=3,
N=4.  The 0–3 codes are chosen so that complementation is ``3 - base``
(with N fixed), which keeps reverse-complement a two-op vectorized
expression — the aligner calls it per read.
"""

from __future__ import annotations

import numpy as np

BASE_A: int = 0
BASE_C: int = 1
BASE_G: int = 2
BASE_T: int = 3
BASE_N: int = 4

ALPHABET: str = "ACGTN"

# char code -> base code lookup (256 entries, invalid chars map to N)
_ENCODE_LUT = np.full(256, BASE_N, dtype=np.uint8)
for _i, _ch in enumerate(ALPHABET):
    _ENCODE_LUT[ord(_ch)] = _i
    _ENCODE_LUT[ord(_ch.lower())] = _i

_DECODE_LUT = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)

# base code -> complement base code (N stays N)
_COMPLEMENT_LUT = np.array([BASE_T, BASE_G, BASE_C, BASE_A, BASE_N], dtype=np.uint8)


def encode(sequence: str | bytes) -> np.ndarray:
    """Encode an ASCII nucleotide string to a uint8 code array.

    Lowercase (soft-masked) bases are accepted; any character outside
    ``ACGTacgt`` becomes ``N``.
    """
    if isinstance(sequence, str):
        raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    else:
        raw = np.frombuffer(bytes(sequence), dtype=np.uint8)
    return _ENCODE_LUT[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a uint8 code array back to an ``ACGTN`` string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) > BASE_N:
        raise ValueError("code array contains values outside the ACGTN alphabet")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Vectorized complement (A<->T, C<->G, N->N)."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Vectorized reverse complement of a code array."""
    return complement(codes)[::-1]


def gc_content(codes: np.ndarray) -> float:
    """Fraction of called (non-N) bases that are G or C.

    Returns 0.0 for empty or all-N input rather than dividing by zero.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    called = codes != BASE_N
    n_called = int(called.sum())
    if n_called == 0:
        return 0.0
    gc = int(((codes == BASE_G) | (codes == BASE_C)).sum())
    return gc / n_called


def random_sequence(
    length: int,
    rng: np.random.Generator,
    *,
    gc: float = 0.41,
    n_fraction: float = 0.0,
) -> np.ndarray:
    """Draw a random sequence with target GC fraction (human genome ≈ 0.41).

    ``n_fraction`` sprinkles uncalled bases, mimicking assembly gaps.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc <= 1.0:
        raise ValueError("gc must be within [0, 1]")
    at = (1.0 - gc) / 2.0
    probs = np.array([at, gc / 2.0, gc / 2.0, at])
    codes = rng.choice(4, size=length, p=probs).astype(np.uint8)
    if n_fraction > 0.0:
        mask = rng.random(length) < n_fraction
        codes[mask] = BASE_N
    return codes


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of mismatching positions between two equal-length code arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return int((a != b).sum())


def kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Pack every k-mer of a (N-free) sequence into an int64 rank.

    Used by the pseudo-aligner; windows containing N get rank -1.
    ``k`` must be ≤ 31 so the 2-bit packing fits an int64.
    """
    if not 1 <= k <= 31:
        raise ValueError("k must be in [1, 31]")
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    vals = codes.astype(np.int64)
    valid = codes != BASE_N
    # rolling polynomial in base 4 via a strided matmul-free scheme
    out = np.zeros(n, dtype=np.int64)
    ok = np.ones(n, dtype=bool)
    for j in range(k):
        out = out * 4 + np.clip(vals[j : j + n], 0, 3)
        ok &= valid[j : j + n]
    out[~ok] = -1
    return out
