"""Genome substrate: sequences, assemblies, Ensembl release model, FASTA, GTF.

This package models exactly the genome-side facts the paper's §III-A
optimization rests on:

* an assembly is a set of contigs at different *assembly levels*
  (chromosome / unlocalized scaffold / unplaced scaffold);
* Ensembl's *toplevel* genome type includes all of them, while
  *primary_assembly* drops alternates;
* between releases 109 and 110 a large number of unlocalized sequences
  were assigned to chromosome sites, shrinking the toplevel FASTA and
  simplifying the STAR index.
"""

from repro.genome.alphabet import (
    ALPHABET,
    BASE_A,
    BASE_C,
    BASE_G,
    BASE_N,
    BASE_T,
    decode,
    encode,
    gc_content,
    random_sequence,
    reverse_complement,
)
from repro.genome.annotation import Annotation, Exon, Gene, Strand, Transcript
from repro.genome.ensembl import (
    EnsemblRelease,
    ReleaseSpec,
    RELEASE_CATALOG,
    build_release_assembly,
    release_spec,
)
from repro.genome.fasta import read_fasta, write_fasta
from repro.genome.gtf import read_gtf, write_gtf
from repro.genome.model import Assembly, AssemblyLevel, Contig, SequenceRegion

__all__ = [
    "ALPHABET",
    "Annotation",
    "Assembly",
    "AssemblyLevel",
    "BASE_A",
    "BASE_C",
    "BASE_G",
    "BASE_N",
    "BASE_T",
    "Contig",
    "EnsemblRelease",
    "Exon",
    "Gene",
    "RELEASE_CATALOG",
    "ReleaseSpec",
    "SequenceRegion",
    "Strand",
    "Transcript",
    "build_release_assembly",
    "decode",
    "encode",
    "gc_content",
    "random_sequence",
    "read_fasta",
    "read_gtf",
    "release_spec",
    "reverse_complement",
    "write_fasta",
    "write_gtf",
]
