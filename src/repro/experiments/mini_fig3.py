"""Mini-Fig. 3: shape validation of the release experiment with the *real*
aligner.

Where :mod:`repro.experiments.fig3` uses the calibrated performance model
at paper scale, this experiment runs the actual suffix-array aligner on a
laptop-scale genome pair — release 108 (scaffold-heavy) vs release 111
(consolidated) built from the same chromosome universe — and measures
wall-clock time, index size, and mapping rate directly.  It validates the
three mechanisms the paper's optimization rests on:

1. the r108 index is ~2.9× larger (same ratio as 85/29.5 GiB);
2. alignment against it is slower (duplicate scaffolds multiply seed
   hits and extension work);
3. the mapping rate is nearly identical (<1% difference).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.align.cache import cached_genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table


@dataclass(frozen=True)
class MiniReleaseMeasurement:
    """One release's direct measurements."""

    release: int
    genome_bases: int
    index_bytes: int
    align_seconds: float
    mapped_fraction: float
    unique: int
    multimapped: int


@dataclass
class MiniFig3Result:
    """Direct r108-vs-r111 comparison from the real aligner."""

    r108: MiniReleaseMeasurement
    r111: MiniReleaseMeasurement
    n_reads: int

    @property
    def index_ratio(self) -> float:
        return self.r108.index_bytes / self.r111.index_bytes

    @property
    def time_ratio(self) -> float:
        return self.r108.align_seconds / self.r111.align_seconds

    @property
    def mapping_delta(self) -> float:
        return abs(self.r108.mapped_fraction - self.r111.mapped_fraction)

    def to_table(self) -> str:
        table = Table(
            ["release", "genome bases", "index bytes", "align s", "mapped %", "unique", "multi"],
            title="Mini-Fig. 3 — real aligner, release 108 vs 111 (laptop scale)",
        )
        for m in (self.r108, self.r111):
            table.add_row(
                [
                    m.release,
                    m.genome_bases,
                    m.index_bytes,
                    f"{m.align_seconds:.3f}",
                    f"{100 * m.mapped_fraction:.1f}",
                    m.unique,
                    m.multimapped,
                ]
            )
        return table.render() + (
            f"\nindex ratio={self.index_ratio:.2f} (paper 2.88)  "
            f"time ratio={self.time_ratio:.2f} (>1 expected)  "
            f"mapping delta={100 * self.mapping_delta:.2f}% (<1 expected)"
        )


def run_mini_fig3(
    *,
    n_reads: int = 400,
    read_length: int = 80,
    universe_spec: GenomeUniverseSpec | None = None,
    seed: int = 42,
    workers: int = 1,
    timing_repeats: int = 3,
    cache_dir=None,
) -> MiniFig3Result:
    """Run the laptop-scale comparison with the real aligner.

    ``workers > 1`` routes both alignments through the shared-memory
    :class:`~repro.align.engine.ParallelStarAligner`; results are
    identical to the serial runs by construction, only wall-clock
    changes.  Each release is timed ``timing_repeats`` times and the
    minimum reported — best-of-N rejects scheduler/throttle noise on
    these tens-of-milliseconds runs.  ``cache_dir`` routes index
    construction through the content-addressed
    :class:`~repro.align.cache.IndexCache`, so a repeated run
    mmap-loads both indexes instead of rebuilding them.
    """
    rng = ensure_rng(seed)
    universe = make_universe(universe_spec or GenomeUniverseSpec(), rng)
    build_rng = derive_rng(rng, "assemblies")
    measurements: dict[int, MiniReleaseMeasurement] = {}

    # Reads are simulated once, against the shared chromosome universe via
    # the r111 view — so both releases align the *same* reads, as Fig. 3's
    # protocol does with real FASTQ files.
    asm111 = build_release_assembly(universe, EnsemblRelease.R111, rng=build_rng)
    asm108 = build_release_assembly(universe, EnsemblRelease.R108, rng=build_rng)
    simulator = ReadSimulator(asm111, universe.annotation)
    sample = simulator.simulate(
        SampleProfile(
            library=LibraryType.BULK_POLYA,
            n_reads=n_reads,
            read_length=read_length,
        ),
        rng=derive_rng(rng, "reads"),
    )

    for release, assembly in (
        (EnsemblRelease.R108, asm108),
        (EnsemblRelease.R111, asm111),
    ):
        index = cached_genome_generate(
            assembly, universe.annotation, cache_dir=cache_dir
        )
        # The per-read reference path is pinned here deliberately: the
        # r108 slowdown this experiment validates comes from duplicate
        # scaffolds multiplying seed hits and extension work, and the
        # vectorized batch core amortizes exactly that overhead (the
        # measured ratio compresses from ~2.2 to ~1.1-1.3 at this scale,
        # within noise of the 1.2 threshold).  The paper's Fig. 3 ran
        # per-read STAR, so the mechanism is measured on the same terms.
        parameters = StarParameters(progress_every=200, batch_align=False)
        repeats = max(1, timing_repeats)
        elapsed = float("inf")
        if workers > 1:
            from repro.align.engine import ParallelStarAligner

            with ParallelStarAligner(
                index, parameters, workers=workers
            ) as engine:
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = engine.run(sample.records)
                    elapsed = min(elapsed, time.perf_counter() - started)
        else:
            aligner = StarAligner(index, parameters)
            for _ in range(repeats):
                started = time.perf_counter()
                result = aligner.run(sample.records)
                elapsed = min(elapsed, time.perf_counter() - started)
        measurements[int(release)] = MiniReleaseMeasurement(
            release=int(release),
            genome_bases=assembly.total_length,
            index_bytes=index.size_bytes(),
            align_seconds=elapsed,
            mapped_fraction=result.mapped_fraction,
            unique=result.final.mapped_unique,
            multimapped=result.final.mapped_multi,
        )

    return MiniFig3Result(
        r108=measurements[108], r111=measurements[111], n_reads=n_reads
    )
