"""Figures 1 and 2 — the paper's diagrams, regenerated as text.

Fig. 1 (pipeline) and Fig. 2 (cloud architecture) are structural figures,
not data plots; regenerating them means deriving the same structure from
the *implementation* so the diagram cannot drift from the code:

* :func:`pipeline_diagram` walks the actual step methods of
  :class:`~repro.core.pipeline.TranscriptomicsAtlasPipeline`;
* :func:`architecture_diagram` renders the services a real
  :func:`~repro.core.atlas.run_atlas` campaign wires together, labelled
  with live model numbers (index size, instance type) for the release in
  use.
"""

from __future__ import annotations

from repro.genome.ensembl import EnsemblRelease, release_spec
from repro.perf.index_model import IndexModel
from repro.util.units import GIB

#: the four steps of Fig. 1, with the tool each box names
PIPELINE_STEPS: tuple[tuple[str, str], ...] = (
    ("Download SRA file", "prefetch"),
    ("Convert to FASTQ", "fasterq-dump"),
    ("Alignment of reads", "STAR --quantMode GeneCounts"),
    ("Count normalization", "DESeq2"),
)


def pipeline_diagram(*, early_stopping: bool = True) -> str:
    """Fig. 1 — the Transcriptomics Atlas pipeline, as boxes and arrows."""
    lines: list[str] = ["Fig. 1 — Transcriptomics Atlas Pipeline", ""]
    width = max(len(f"{name}  [{tool}]") for name, tool in PIPELINE_STEPS) + 4
    for i, (name, tool) in enumerate(PIPELINE_STEPS):
        label = f"{i + 1}. {name}  [{tool}]"
        lines.append("+" + "-" * width + "+")
        lines.append("| " + label.ljust(width - 1) + "|")
        lines.append("+" + "-" * width + "+")
        if i < len(PIPELINE_STEPS) - 1:
            arrow = "        |"
            if early_stopping and tool.startswith("STAR"):
                arrow += "   <-- Log.progress.out --> early-stopping monitor"
            lines.append(arrow)
            lines.append("        v")
    return "\n".join(lines)


def architecture_diagram(
    release: EnsemblRelease | int = EnsemblRelease.R111,
    *,
    instance_name: str | None = None,
    index_model: IndexModel | None = None,
) -> str:
    """Fig. 2 — the AWS architecture, annotated with live model numbers."""
    from repro.cloud.ec2 import cheapest_fitting, instance_type

    model = index_model or IndexModel()
    spec = release_spec(release)
    index_gib = model.index_bytes(spec) / GIB
    if instance_name is not None:
        itype = instance_type(instance_name)
    else:
        itype = cheapest_fitting(
            model.memory_required_bytes(spec), family="r6a", min_vcpus=8
        )

    return "\n".join(
        [
            f"Fig. 2 — Cloud architecture (Ensembl release {spec.release})",
            "",
            "  SRA IDs                                    NCBI SRA",
            "     |                                          |",
            "     v                                          v  prefetch",
            "  [ SQS queue ] <----- poll ------ [ EC2 worker instances ]",
            "     |  visibility timeout          "
            f"{itype.name}: {itype.vcpus} vCPU / {itype.memory_gib:.0f} GiB",
            "     |  (at-least-once)             AutoScalingGroup, spot-capable",
            "     |                                          |",
            "     |                                          | init: download index",
            "     |                              [ S3: STAR index "
            f"{index_gib:.1f} GiB ] -> /dev/shm",
            "     |                                          |",
            "     |                                          | per message:",
            "     |                                          |   prefetch -> fasterq-dump",
            "     |                                          |   -> STAR (+ early-stop monitor)",
            "     |                                          |   -> DESeq2 normalization",
            "     |                                          v",
            "     +---- delete on success ---- [ S3: results bucket ]",
        ]
    )


def diagrams_report() -> str:
    """Both figures for both releases — what the CLI prints."""
    parts = [
        pipeline_diagram(),
        "",
        architecture_diagram(EnsemblRelease.R111),
        "",
        architecture_diagram(EnsemblRelease.R108, instance_name="r6a.4xlarge"),
    ]
    return "\n".join(parts)
