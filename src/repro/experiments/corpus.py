"""The 1000-run corpus behind the early-stopping analysis (§III-B).

The paper gives four anchors: 1000 runs, 38 terminated (all single-cell),
155.8 total STAR hours, and 30.4 hours saved by stopping at 10% of reads.
Jointly these pin down the workload shape: if terminated runs were
average-sized, stopping 3.8% of runs at 10% would save only ~3.4% — the
observed 19.5% is possible only because the single-cell runs are much
*larger* than the bulk ones.  :func:`calibrate_scan_means` solves the two
linear equations for the bulk and single-cell mean scan times:

    38 · 0.9 · scan_sc                      = saved_seconds
    962 · (setup + scan_b) + 38 · (setup + scan_sc) = total_seconds

giving scan_sc ≈ 3200 s and scan_b ≈ 415 s (a ~7.7× size ratio, consistent
with single-cell archives being far bigger than bulk ones).  The corpus
generator then draws per-run FASTQ sizes log-normally around those means
and attaches mapping-rate trajectories per library class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.atlas import AtlasJob
from repro.core.trajectory import MappingTrajectory
from repro.genome.ensembl import EnsemblRelease, release_spec
from repro.perf.star_model import StarPerfModel
from repro.perf.targets import PAPER, PaperTargets
from repro.reads.library import (
    LibraryType,
    MAPPING_RATE_PROFILES,
)
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ScanMeans:
    """Calibrated mean STAR scan seconds per library class."""

    bulk_seconds: float
    single_cell_seconds: float

    @property
    def size_ratio(self) -> float:
        return self.single_cell_seconds / self.bulk_seconds


def calibrate_scan_means(
    targets: PaperTargets = PAPER,
    star_model: StarPerfModel | None = None,
) -> ScanMeans:
    """Solve the two anchor equations for the class mean scan times."""
    model = star_model or StarPerfModel()
    setup = model.setup_seconds
    n = targets.early_stop_corpus_size
    n_sc = targets.early_stop_terminated
    n_bulk = n - n_sc
    stop_f = targets.early_stop_check_fraction
    saved = targets.early_stop_saved_hours * 3600.0
    total = targets.early_stop_total_hours * 3600.0

    scan_sc = saved / (n_sc * (1.0 - stop_f))
    scan_b = (total - n_sc * (setup + scan_sc) - n_bulk * setup) / n_bulk
    if scan_b <= 0 or scan_sc <= 0:
        raise ValueError("targets are inconsistent: negative scan time")
    return ScanMeans(bulk_seconds=scan_b, single_cell_seconds=scan_sc)


@dataclass(frozen=True)
class CorpusSpec:
    """Parameters of the synthetic 1000-run corpus."""

    n_runs: int = PAPER.early_stop_corpus_size
    single_cell_fraction: float = PAPER.terminated_fraction
    #: fraction of the *bulk* runs that are total-RNA libraries
    bulk_total_fraction: float = 0.15
    release: EnsemblRelease = EnsemblRelease.R111
    vcpus: int = PAPER.instance_vcpus
    read_length: int = 100
    #: log-normal sigma of FASTQ sizes within a class
    size_sigma: float = 0.45
    #: SRA archive bytes per FASTQ byte (compression ratio)
    sra_compression: float = 0.35
    #: FASTQ bytes per read (seq+qual+headers for ~100 bp reads)
    bytes_per_read: float = 250.0

    def __post_init__(self) -> None:
        check_positive("n_runs", self.n_runs)
        check_fraction("single_cell_fraction", self.single_cell_fraction)
        check_fraction("bulk_total_fraction", self.bulk_total_fraction)


def _terminal_rate(library: LibraryType, rng: np.random.Generator) -> float:
    """Draw a terminal mapping rate; clipped so the class split is clean.

    The paper's corpus separates cleanly (exactly the single-cell runs are
    below the bar), so single-cell rates are clipped below 0.28 and bulk
    rates above 0.35 — both margins wider than the trajectory wobble.
    """
    profile = MAPPING_RATE_PROFILES[library]
    rate = float(rng.normal(profile.mean, profile.spread))
    if library.is_single_cell:
        return float(np.clip(rate, 0.02, 0.28))
    return float(np.clip(rate, 0.35, 0.99))


def _trajectory(
    library: LibraryType, rng: np.random.Generator
) -> MappingTrajectory:
    terminal = _terminal_rate(library, rng)
    initial = float(
        np.clip(terminal + rng.normal(0.0, 0.05), 0.0, 1.0)
    )
    return MappingTrajectory(
        terminal_rate=terminal,
        initial_rate=initial,
        tau=float(rng.uniform(0.015, 0.05)),
        wobble=float(rng.uniform(0.001, 0.005)),
        phase=float(rng.uniform(0.0, 2.0 * np.pi)),
    )


def generate_corpus(
    spec: CorpusSpec | None = None,
    *,
    star_model: StarPerfModel | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[AtlasJob]:
    """Generate the corpus as :class:`~repro.core.atlas.AtlasJob` records."""
    spec = spec or CorpusSpec()
    model = star_model or StarPerfModel()
    rng = ensure_rng(rng)
    means = calibrate_scan_means(star_model=model)
    throughput = model.throughput(release_spec(spec.release), spec.vcpus)
    mean_bytes = {
        LibraryType.BULK_POLYA: means.bulk_seconds * throughput,
        LibraryType.BULK_TOTAL: means.bulk_seconds * throughput,
        LibraryType.SINGLE_CELL_3P: means.single_cell_seconds * throughput,
    }

    n_sc = int(round(spec.n_runs * spec.single_cell_fraction))
    n_bulk = spec.n_runs - n_sc
    n_bulk_total = int(round(n_bulk * spec.bulk_total_fraction))
    libraries = (
        [LibraryType.SINGLE_CELL_3P] * n_sc
        + [LibraryType.BULK_TOTAL] * n_bulk_total
        + [LibraryType.BULK_POLYA] * (n_bulk - n_bulk_total)
    )
    order_rng = derive_rng(rng, "order")
    order_rng.shuffle(libraries)

    size_rng = derive_rng(rng, "sizes")
    traj_rng = derive_rng(rng, "trajectories")
    jobs: list[AtlasJob] = []
    sigma = spec.size_sigma
    for i, library in enumerate(libraries):
        # lognormal with the class mean: E[X] = exp(mu + sigma^2/2)
        mu = np.log(mean_bytes[library]) - 0.5 * sigma**2
        fastq_bytes = float(size_rng.lognormal(mean=mu, sigma=sigma))
        jobs.append(
            AtlasJob(
                accession=f"SRR{9_000_000 + i}",
                sra_bytes=fastq_bytes * spec.sra_compression,
                fastq_bytes=fastq_bytes,
                n_reads=max(1000, int(fastq_bytes / spec.bytes_per_read)),
                library=library,
                trajectory=_trajectory(library, traj_rng),
            )
        )
    return jobs


def corpus_class_counts(jobs: list[AtlasJob]) -> dict[LibraryType, int]:
    """Tally of jobs per library class."""
    counts = {lib: 0 for lib in LibraryType}
    for job in jobs:
        counts[job.library] += 1
    return counts
