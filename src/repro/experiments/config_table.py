"""The §III-A "Test configuration" block, regenerated from the models.

Paper values:

* Instance Type: r6a.4xlarge (16 vCPU, 128 GB RAM)
* Input: 49 FASTQ files (15.9 GiB mean size, 777 GiB total)
* Index size: 85 GiB (release 108), 29.5 GiB (release 111)

plus, as a derived table, which r6a instance each release's index fits —
the "smaller and cheaper instances" claim quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.ec2 import INSTANCE_CATALOG, cheapest_fitting, instance_type
from repro.genome.ensembl import EnsemblRelease, RELEASE_CATALOG
from repro.perf.index_model import IndexModel
from repro.perf.targets import PAPER, PaperTargets
from repro.util.tables import Table
from repro.util.units import GIB


@dataclass(frozen=True)
class ReleaseIndexRow:
    """One release's index footprint and cheapest hosting instance."""

    release: int
    toplevel_gbases: float
    index_bytes: float
    smallest_instance: str
    hourly_usd: float


@dataclass
class ConfigTableResult:
    """Model-predicted configuration table across the release catalog."""

    rows: list[ReleaseIndexRow]
    targets: PaperTargets

    def row(self, release: int) -> ReleaseIndexRow:
        for r in self.rows:
            if r.release == release:
                return r
        raise KeyError(f"release {release} not in table")

    @property
    def predicted_r108_bytes(self) -> float:
        return self.row(108).index_bytes

    @property
    def predicted_r111_bytes(self) -> float:
        return self.row(111).index_bytes

    def to_table(self) -> str:
        t = self.targets
        table = Table(
            ["release", "toplevel Gb", "index GiB", "cheapest r6a", "$/h"],
            title="Test configuration — index size per Ensembl release",
        )
        for r in self.rows:
            table.add_row(
                [
                    r.release,
                    f"{r.toplevel_gbases:.2f}",
                    f"{r.index_bytes / GIB:.1f}",
                    r.smallest_instance,
                    f"{r.hourly_usd:.4f}",
                ]
            )
        itype = instance_type(t.instance_type)
        footer = (
            f"\npaper instance: {t.instance_type} "
            f"({itype.vcpus} vCPU, {itype.memory_gib:.0f} GiB, "
            f"${itype.on_demand_hourly_usd:.4f}/h)\n"
            f"input: {t.fig3_n_files} FASTQ files, "
            f"mean {t.fig3_mean_fastq_bytes / GIB:.1f} GiB, "
            f"total {t.fig3_total_fastq_bytes / GIB:.0f} GiB\n"
            f"paper index sizes: r108 {t.index_bytes_r108 / GIB:.1f} GiB, "
            f"r111 {t.index_bytes_r111 / GIB:.1f} GiB"
        )
        return table.render() + footer


def run_config_table(
    *,
    index_model: IndexModel | None = None,
    memory_overhead: float = 6e9,
    targets: PaperTargets = PAPER,
) -> ConfigTableResult:
    """Build the configuration table for every catalogued release."""
    model = index_model or IndexModel()
    rows: list[ReleaseIndexRow] = []
    for release in sorted(RELEASE_CATALOG):
        spec = RELEASE_CATALOG[release]
        index_bytes = model.index_bytes(spec)
        memory = model.memory_required_bytes(spec, overhead=memory_overhead)
        itype = cheapest_fitting(memory, family="r6a", min_vcpus=1)
        rows.append(
            ReleaseIndexRow(
                release=int(release),
                toplevel_gbases=spec.toplevel_bases / 1e9,
                index_bytes=index_bytes,
                smallest_instance=itype.name,
                hourly_usd=itype.on_demand_hourly_usd,
            )
        )
    return ConfigTableResult(rows=rows, targets=targets)


def memory_fit_matrix(
    *, index_model: IndexModel | None = None, memory_overhead: float = 6e9
) -> str:
    """Render which r6a sizes can host which release's index."""
    model = index_model or IndexModel()
    r6a = sorted(
        (t for t in INSTANCE_CATALOG.values() if t.family == "r6a"),
        key=lambda t: t.memory_bytes,
    )
    table = Table(
        ["instance", "RAM GiB"] + [f"r{int(r)}" for r in sorted(RELEASE_CATALOG)],
        title="Index fits in RAM?",
    )
    for itype in r6a:
        cells = [itype.name, f"{itype.memory_gib:.0f}"]
        for release in sorted(RELEASE_CATALOG):
            need = model.memory_required_bytes(
                RELEASE_CATALOG[release], overhead=memory_overhead
            )
            cells.append("yes" if need <= itype.memory_bytes else "-")
        table.add_row(cells)
    return table.render()
