"""Full-atlas projection: the paper's §II scope, end to end.

"We aim to process the subset consisting of at least 7216 files and 17TB
of SRA data."  This experiment runs that complete campaign through the
simulator — 7216 jobs, sizes rescaled so total SRA volume is exactly
17 TB (the corpus's class structure is preserved; the Fig. 3 sample and
the atlas average differ in the paper too, so a uniform rescale is the
faithful reconciliation) — and reports what the atlas actually costs
with and without each optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.autoscaling import ScalingPolicy
from repro.cloud.ec2 import InstanceMarket
from repro.core.atlas import AtlasConfig, AtlasJob, AtlasRunReport, run_atlas
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease
from repro.perf.targets import PAPER
from repro.util.tables import Table


def make_full_atlas_jobs(
    *,
    n_files: int = PAPER.atlas_min_files,
    total_sra_bytes: float = PAPER.atlas_total_sra_bytes,
    seed: int = 0,
) -> list[AtlasJob]:
    """The 7216-file / 17 TB workload, rescaled from the corpus model."""
    jobs = generate_corpus(CorpusSpec(n_runs=n_files), rng=seed)
    scale = total_sra_bytes / sum(j.sra_bytes for j in jobs)
    return [
        replace(
            job,
            sra_bytes=job.sra_bytes * scale,
            fastq_bytes=job.fastq_bytes * scale,
            n_reads=max(1000, int(job.n_reads * scale)),
        )
        for job in jobs
    ]


@dataclass
class FullAtlasResult:
    """Projection outcomes per configuration variant."""

    reports: dict[str, AtlasRunReport]
    n_files: int
    total_sra_tb: float

    def report(self, name: str) -> AtlasRunReport:
        return self.reports[name]

    def to_table(self) -> str:
        table = Table(
            ["variant", "days", "STAR h", "terminated", "dl GB saved",
             "fleet<=", "cost $", "$/file"],
            title=(
                f"Full atlas projection — {self.n_files} files, "
                f"{self.total_sra_tb:.0f} TB SRA"
            ),
        )
        for name, r in self.reports.items():
            table.add_row(
                [
                    name,
                    f"{r.makespan_seconds / 86400:.1f}",
                    f"{r.star_hours_actual:.0f}",
                    r.n_terminated,
                    f"{r.download_bytes_saved / 1e9:.1f}",
                    r.peak_fleet,
                    f"{r.cost.total_usd:,.0f}",
                    f"{r.cost.total_usd / r.n_jobs:.3f}",
                ]
            )
        baseline = self.reports["optimized (r111+ES, spot x32)"]
        worst = self.reports["unoptimized (r108, on-demand x32)"]
        footer = (
            f"\nboth optimizations + spot: "
            f"${worst.cost.total_usd:,.0f} -> ${baseline.cost.total_usd:,.0f} "
            f"({worst.cost.total_usd / baseline.cost.total_usd:.0f}x cheaper), "
            f"{worst.makespan_seconds / baseline.makespan_seconds:.1f}x faster"
        )
        return table.render() + footer


def run_full_atlas(
    *,
    n_files: int = PAPER.atlas_min_files,
    fleet: int = 32,
    seed: int = 0,
    total_sra_bytes: float | None = None,
) -> FullAtlasResult:
    """Project the complete atlas campaign under four configurations.

    ``total_sra_bytes`` defaults to the paper's 17 TB scaled by
    ``n_files``/7216, so reduced-size runs keep realistic per-file sizes.
    """
    if total_sra_bytes is None:
        total_sra_bytes = (
            PAPER.atlas_total_sra_bytes * n_files / PAPER.atlas_min_files
        )
    jobs = make_full_atlas_jobs(
        n_files=n_files, total_sra_bytes=total_sra_bytes, seed=seed
    )
    base = AtlasConfig(
        release=EnsemblRelease.R111,
        instance_name="r6a.2xlarge",
        market=InstanceMarket.SPOT,
        scaling=ScalingPolicy(max_size=fleet, messages_per_instance=4),
        seed=seed,
    )
    variants = {
        "optimized (r111+ES, spot x32)": base,
        "streamed (r111+ES+stream, spot x32)": replace(base, streaming=True),
        "no early stopping": replace(base, early_stopping=None),
        "on-demand": replace(base, market=InstanceMarket.ON_DEMAND),
        "unoptimized (r108, on-demand x32)": replace(
            base,
            release=EnsemblRelease.R108,
            instance_name="r6a.4xlarge",
            market=InstanceMarket.ON_DEMAND,
            early_stopping=None,
        ),
    }
    reports = {name: run_atlas(jobs, config) for name, config in variants.items()}
    return FullAtlasResult(
        reports=reports,
        n_files=n_files,
        total_sra_tb=sum(j.sra_bytes for j in jobs) / 1e12,
    )
