"""Chaos harness: the resilience layer under a scripted fault plan.

Runs a laptop-scale batch through the *real* four-step pipeline while a
:class:`~repro.core.resilience.FaultPlan` injects failures — transient
prefetch/dump faults that retries absorb, one permanent failure that
becomes a ``FAILED`` result, and (with ``workers > 1``) an engine-worker
SIGKILL mid-campaign — then verifies the central guarantee: every
accession that survived produced output identical to a fault-free serial
run, and the batch returned one result per accession in submission
order.

This is the executable form of the acceptance scenario in the README's
"Failure semantics & fault injection" section; ``python -m repro chaos``
prints its table.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.align.cache import cached_genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.journal import RunJournal
from repro.core.pipeline import (
    BatchOptions,
    PipelineConfig,
    PipelineResult,
    RunStatus,
    TranscriptomicsAtlasPipeline,
)
from repro.core.resilience import FaultPlan, RetryPolicy
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.reads.sra import SraArchive, SraRepository
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table


@dataclass(frozen=True)
class ChaosSpec:
    """Parameters of one chaos run."""

    n_accessions: int = 12
    n_reads: int = 120
    read_length: int = 80
    #: alignment worker processes (>1 also exercises engine recovery)
    workers: int = 2
    #: accessions run concurrently through ``run_batch``
    max_parallel: int = 4
    seed: int = 0
    #: fault plan text (``step:key:kind[*times]``, comma-separated);
    #: None → the default scripted scenario built by :func:`default_plan`
    fault_plan_text: str | None = None
    #: short wedge-detection window so the engine-kill scenario degrades
    #: (and recovers) within laptop-scale run times
    engine_stall_timeout: float = 1.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05
        )
    )
    #: route index construction through an IndexCache rooted here
    cache_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.n_accessions < 2:
            raise ValueError("n_accessions must be >= 2")

    @property
    def accessions(self) -> list[str]:
        return [f"SRR9100{i:03d}" for i in range(1, self.n_accessions + 1)]


def default_plan(accessions: list[str], *, workers: int) -> FaultPlan:
    """The canonical scripted scenario over a batch of accessions.

    Two transient prefetch faults on one accession (recovered by the
    third attempt), one transient fasterq-dump fault on another, one
    *permanent* prefetch failure (the batch's single FAILED result), and
    — when the engine is on — a worker SIGKILL right before a
    mid-campaign alignment.
    """
    text = (
        f"prefetch:{accessions[1]}:transient*2,"
        f"fasterq_dump:{accessions[3]}:transient*1,"
        f"prefetch:{accessions[-2]}:permanent"
    )
    if workers > 1:
        text += f",engine_worker:{accessions[5]}:transient*1"
    return FaultPlan.parse(text)


@dataclass
class ChaosResult:
    """Everything the chaos run observed."""

    results: list[PipelineResult]
    reference: list[PipelineResult]
    summary: dict[str, int]
    retries_by_step: dict[str, int]
    plan_description: str
    faults_injected: dict[str, int]
    #: submission order preserved in the returned result list
    order_preserved: bool
    #: every non-FAILED result identical to the fault-free serial run
    outputs_identical: bool

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if r.status is RunStatus.FAILED)

    @property
    def passed(self) -> bool:
        return self.order_preserved and self.outputs_identical

    def to_table(self) -> str:
        table = Table(
            ["accession", "status", "retries", "failed step", "mapped %"],
            title="Chaos run — scripted faults vs fault-free reference",
        )
        for r in self.results:
            table.add_row(
                [
                    r.accession,
                    r.status.value,
                    r.retries,
                    r.failure.step if r.failure is not None else "-",
                    f"{100 * r.mapped_fraction:.1f}"
                    if r.status is not RunStatus.FAILED
                    else "-",
                ]
            )
        lines = [
            table.render(),
            f"plan: {self.plan_description}",
            f"faults injected: {self.faults_injected}",
            f"retries by step: {self.retries_by_step}",
            f"summary: {self.summary}",
            f"order preserved: {self.order_preserved}  "
            f"outputs identical to fault-free serial run: "
            f"{self.outputs_identical}",
        ]
        return "\n".join(lines)


def _comparable(result: PipelineResult) -> tuple:
    """The output surface that must be identical across execution modes
    (wall-clock timings excluded — everything else must match)."""
    final = result.star_result.final if result.star_result else None
    counts = (
        result.star_result.gene_counts if result.star_result else None
    )
    return (
        result.accession,
        result.status,
        result.counts,
        result.paired,
        None
        if final is None
        else (
            final.reads_processed,
            final.mapped_unique,
            final.mapped_multi,
            final.unmapped,
            final.aborted,
        ),
        None if counts is None else counts.column_vector("unstranded"),
    )


def run_chaos(spec: ChaosSpec | None = None) -> ChaosResult:
    """Execute the chaos scenario and validate the resilience guarantees."""
    spec = spec or ChaosSpec()
    rng = ensure_rng(spec.seed)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    index = cached_genome_generate(
        assembly, universe.annotation, cache_dir=spec.cache_dir
    )
    aligner = StarAligner(index, StarParameters(progress_every=50))
    simulator = ReadSimulator(assembly, universe.annotation)

    accessions = spec.accessions
    repo = SraRepository()
    for i, acc in enumerate(accessions):
        # one single-cell library in the mix so the early-stopping path
        # (REJECTED_EARLY) is exercised alongside the fault paths
        library = (
            LibraryType.SINGLE_CELL_3P if i == 0 else LibraryType.BULK_POLYA
        )
        sample = simulator.simulate(
            SampleProfile(
                library=library,
                n_reads=spec.n_reads,
                read_length=spec.read_length,
            ),
            rng=900 + i,
            read_id_prefix=acc,
        )
        repo.deposit(SraArchive(acc, library, sample.records))

    plan = (
        FaultPlan.parse(spec.fault_plan_text)
        if spec.fault_plan_text is not None
        else default_plan(accessions, workers=spec.workers)
    )

    def make_config(**overrides) -> PipelineConfig:
        base = dict(
            early_stopping=EarlyStoppingPolicy(min_reads=20),
            write_outputs=False,
            retry=spec.retry,
            engine_stall_timeout=spec.engine_stall_timeout,
        )
        base.update(overrides)
        return PipelineConfig(**base)

    with TemporaryDirectory(prefix="chaos-") as tmp:
        tmp_path = Path(tmp)
        with TranscriptomicsAtlasPipeline(
            repo,
            aligner,
            tmp_path / "faulted",
            config=make_config(workers=spec.workers, fault_plan=plan),
        ) as pipeline:
            results = pipeline.run_batch(
                accessions, BatchOptions(max_parallel=spec.max_parallel)
            )
            # the engine pool must stay usable after worker kills: run one
            # more accession through the same pipeline before closing
            post = pipeline.run_accession(accessions[0])
            summary = pipeline.summary()
            retries_by_step = pipeline.retries_by_step()

        reference_pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "reference", config=make_config()
        )
        reference = reference_pipeline.run_batch(accessions)

    order_preserved = [r.accession for r in results] == accessions
    outputs_identical = all(
        _comparable(r) == _comparable(ref)
        for r, ref in zip(results, reference)
        if r.status is not RunStatus.FAILED
    ) and _comparable(post) == _comparable(reference[0])

    return ChaosResult(
        results=results,
        reference=reference,
        summary=summary,
        retries_by_step=retries_by_step,
        plan_description=plan.describe(),
        faults_injected=plan.injected,
        order_preserved=order_preserved,
        outputs_identical=outputs_identical,
    )


def build_demo_inputs(
    n_accessions: int,
    *,
    n_reads: int = 100,
    read_length: int = 80,
    seed: int = 0,
    prefix: str = "SRR9300",
    cache_dir: Path | None = None,
) -> tuple[StarAligner, SraRepository, list[str]]:
    """Deterministic laptop-scale aligner + SRA repository.

    Shared by ``python -m repro pipeline`` and tests that need a real
    four-step pipeline without inventing their own synthetic corpus.
    ``cache_dir`` makes repeated builds (e.g. the resume scenario's
    victim + resume + reference runs) mmap-load one cached index.
    """
    rng = ensure_rng(seed)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    index = cached_genome_generate(
        assembly, universe.annotation, cache_dir=cache_dir
    )
    aligner = StarAligner(index, StarParameters(progress_every=50))
    simulator = ReadSimulator(assembly, universe.annotation)
    accessions = [f"{prefix}{i:03d}" for i in range(1, n_accessions + 1)]
    repo = SraRepository()
    for i, acc in enumerate(accessions):
        sample = simulator.simulate(
            SampleProfile(
                library=LibraryType.BULK_POLYA,
                n_reads=n_reads,
                read_length=read_length,
            ),
            rng=2400 + i,
            read_id_prefix=acc,
        )
        repo.deposit(SraArchive(acc, LibraryType.BULK_POLYA, sample.records))
    return aligner, repo, accessions


# --------------------------------------------------------------------------
# kill-mid-batch → resume
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ResumeChaosSpec:
    """Parameters of the kill-mid-batch → resume scenario."""

    n_accessions: int = 5
    n_reads: int = 100
    read_length: int = 80
    seed: int = 0
    #: retry backoff injected on the second accession; this is the window
    #: in which the victim process is SIGKILLed, so it must comfortably
    #: exceed the parent's journal polling latency
    stall_seconds: float = 2.0
    #: give up if the victim never journals a terminal record (a completed
    #: first accession) within this wall-clock budget
    kill_timeout: float = 120.0
    #: journal location; None → inside the scenario's temp directory
    journal_path: Path | None = None
    #: route index construction through an IndexCache rooted here
    cache_dir: Path | None = None
    #: run the victim and the resumed batch through the streaming DAG;
    #: the reference stays sequential, so the scenario additionally
    #: proves kill-mid-stream safety and journal shape interchange
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.n_accessions < 2:
            raise ValueError("n_accessions must be >= 2")
        if self.stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")

    @property
    def accessions(self) -> list[str]:
        return [f"SRR9200{i:03d}" for i in range(1, self.n_accessions + 1)]


@dataclass
class ResumeChaosResult:
    """Everything the kill-and-resume scenario observed."""

    results: list[PipelineResult]
    reference: list[PipelineResult]
    #: accessions whose terminal record survived the SIGKILL
    completed_before_kill: list[str]
    #: accessions replayed from the journal (not re-run) on resume
    replayed: list[str]
    #: accessions the resumed batch actually re-executed
    reexecuted: list[str]
    #: the post-kill journal ended in a torn (partial) final line
    torn_tail: bool
    #: per-accession outcomes identical to the uninterrupted run
    outputs_identical: bool
    #: count matrix identical to the uninterrupted run
    matrix_identical: bool
    #: resume skipped exactly the accessions completed before the kill
    replay_exact: bool

    @property
    def passed(self) -> bool:
        return (
            bool(self.completed_before_kill)
            and self.outputs_identical
            and self.matrix_identical
            and self.replay_exact
        )

    def to_table(self) -> str:
        replayed = set(self.replayed)
        table = Table(
            ["accession", "status", "source", "mapped %"],
            title="Resume chaos — SIGKILL mid-batch, resumed from journal",
        )
        for r in self.results:
            table.add_row(
                [
                    r.accession,
                    r.status.value,
                    "journal" if r.accession in replayed else "re-run",
                    f"{100 * r.mapped_fraction:.1f}"
                    if r.status is not RunStatus.FAILED
                    else "-",
                ]
            )
        lines = [
            table.render(),
            f"completed before kill: {self.completed_before_kill}",
            f"torn tail after kill: {self.torn_tail}",
            f"replay exact: {self.replay_exact}  "
            f"outputs identical: {self.outputs_identical}  "
            f"count matrix identical: {self.matrix_identical}",
        ]
        return "\n".join(lines)


def _resume_comparable(result: PipelineResult) -> tuple:
    """Output surface comparable between live and journal-replayed results.

    Unlike :func:`_comparable` this omits the full ``GeneCounts`` object
    (the journal persists only the count *column* the matrix needs) — the
    per-gene counts are still covered via ``result.counts``.
    """
    final = result.star_result.final if result.star_result else None
    return (
        result.accession,
        result.status,
        result.counts,
        result.paired,
        None
        if final is None
        else (
            final.reads_processed,
            final.mapped_unique,
            final.mapped_multi,
            final.unmapped,
            final.aborted,
        ),
    )


def run_resume_chaos(spec: ResumeChaosSpec | None = None) -> ResumeChaosResult:
    """Kill a journaled batch mid-flight, resume it, compare to fault-free.

    A child process runs the batch with a journal; a scripted transient
    fault puts the *second* accession into retry backoff for
    ``stall_seconds``, giving the parent a deterministic window — after
    the first accession's ``completed`` record is durably on disk — to
    SIGKILL the child.  The parent then resumes the same batch from the
    journal in-process and checks the central guarantee: the resumed
    batch replays exactly the completed accessions, re-executes the
    rest, and its per-accession outcomes and count matrix are identical
    to an uninterrupted run.
    """
    spec = spec or ResumeChaosSpec()
    rng = ensure_rng(spec.seed)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    index = cached_genome_generate(
        assembly, universe.annotation, cache_dir=spec.cache_dir
    )
    aligner = StarAligner(index, StarParameters(progress_every=50))
    simulator = ReadSimulator(assembly, universe.annotation)

    accessions = spec.accessions
    repo = SraRepository()
    for i, acc in enumerate(accessions):
        sample = simulator.simulate(
            SampleProfile(
                library=LibraryType.BULK_POLYA,
                n_reads=spec.n_reads,
                read_length=spec.read_length,
            ),
            rng=1700 + i,
            read_id_prefix=acc,
        )
        repo.deposit(SraArchive(acc, LibraryType.BULK_POLYA, sample.records))

    # two transient faults on the second accession → two backoff sleeps of
    # stall_seconds each: the kill window.  The plan text is part of the
    # config fingerprint, so victim / resume / reference all share it.
    plan_text = f"prefetch:{accessions[1]}:transient*2"

    def make_config() -> PipelineConfig:
        return PipelineConfig(
            early_stopping=EarlyStoppingPolicy(min_reads=20),
            write_outputs=False,
            retry=RetryPolicy(
                max_attempts=3,
                base_delay=spec.stall_seconds,
                max_delay=spec.stall_seconds,
            ),
            fault_plan=FaultPlan.parse(plan_text),
        )

    with TemporaryDirectory(prefix="resume-chaos-") as tmp:
        tmp_path = Path(tmp)
        journal_path = spec.journal_path or (tmp_path / "batch.jsonl")
        # the journal is this scenario's artifact: start it fresh so a
        # re-run (e.g. `repro chaos --resume --journal X` twice) doesn't
        # replay a previous invocation's terminal records
        journal_path.unlink(missing_ok=True)

        pid = os.fork()
        if pid == 0:
            # victim child: run the journaled batch until SIGKILLed.
            # os._exit keeps pytest/atexit machinery from running twice.
            code = 1
            try:
                victim = TranscriptomicsAtlasPipeline(
                    repo,
                    aligner,
                    tmp_path / "victim",
                    config=make_config(),
                )
                victim.run_batch(
                    accessions,
                    BatchOptions(
                        streaming=spec.streaming, journal=journal_path
                    ),
                )
                code = 0
            finally:
                os._exit(code)

        try:
            completed_before: list[str] = []
            deadline = time.monotonic() + spec.kill_timeout
            while time.monotonic() < deadline:
                replay = RunJournal(journal_path).replay()
                if replay.terminal:
                    completed_before = sorted(replay.terminal)
                    break
                time.sleep(0.02)
        finally:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
        if not completed_before:
            raise RuntimeError(
                "victim never journaled a terminal record within "
                f"{spec.kill_timeout}s"
            )

        post_kill = RunJournal(journal_path).replay()

        resumed = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "resumed", config=make_config()
        )
        results = resumed.run_batch(
            accessions,
            BatchOptions(
                streaming=spec.streaming, journal=journal_path, resume=True
            ),
        )
        matrix = resumed.build_count_matrix()

        reference_pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "reference", config=make_config()
        )
        reference = reference_pipeline.run_batch(accessions, BatchOptions())
        ref_matrix = reference_pipeline.build_count_matrix()

    replayed = [r.accession for r in results if r.resumed]
    reexecuted = [r.accession for r in results if not r.resumed]
    outputs_identical = len(results) == len(reference) and all(
        _resume_comparable(r) == _resume_comparable(ref)
        for r, ref in zip(results, reference)
    )
    matrix_identical = (
        matrix.gene_ids == ref_matrix.gene_ids
        and matrix.sample_ids == ref_matrix.sample_ids
        and bool((matrix.counts == ref_matrix.counts).all())
    )
    return ResumeChaosResult(
        results=results,
        reference=reference,
        completed_before_kill=completed_before,
        replayed=replayed,
        reexecuted=reexecuted,
        torn_tail=post_kill.torn_tail,
        outputs_identical=outputs_identical,
        matrix_identical=matrix_identical,
        replay_exact=sorted(replayed) == completed_before,
    )


# --------------------------------------------------------------------------
# kill the whole instance → adopt via S3
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KillInstanceSpec:
    """Parameters of the kill-instance → S3 adoption scenario."""

    n_accessions: int = 2
    n_reads: int = 600
    read_length: int = 60
    #: engine worker processes (shard checkpointing needs the engine)
    workers: int = 2
    #: reads per engine shard (controls checkpoint granularity)
    align_batch_size: int = 64
    #: SIGKILL instance A after this many shard checkpoints of the
    #: victim accession have reached S3
    kill_after_shards: int = 3
    #: instance A's lease TTL; instance B waits it out before adopting
    lease_ttl: float = 1.0
    #: give up if instance A never dies within this wall-clock budget
    kill_timeout: float = 180.0
    seed: int = 0
    #: route index construction through an IndexCache rooted here
    cache_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.n_accessions < 2:
            raise ValueError("n_accessions must be >= 2")
        if self.kill_after_shards < 1:
            raise ValueError("kill_after_shards must be >= 1")

    @property
    def accessions(self) -> list[str]:
        return [f"SRR9400{i:03d}" for i in range(1, self.n_accessions + 1)]

    @property
    def victim_accession(self) -> str:
        """The accession instance A dies inside (the second one, so the
        first proves whole-accession replay alongside shard adoption)."""
        return self.accessions[1]


@dataclass
class KillInstanceResult:
    """Everything the kill-instance scenario observed."""

    results: list[PipelineResult]
    reference: list[PipelineResult]
    #: accessions whose terminal record was in S3 when instance A died
    completed_before_kill: list[str]
    #: accessions instance B replayed wholesale from the journal
    replayed: list[str]
    #: the accession instance B adopted mid-alignment
    adopted_accession: str
    #: victim-accession shards merged from S3 checkpoints / re-aligned
    shards_replayed: int
    shards_realigned: int
    #: fencing token instance B adopted with (A held token 1)
    adopter_token: int
    #: instance A's late, fenced-out publish raised FencedOut
    stale_publish_rejected: bool
    #: per-accession outcomes identical to the uninterrupted reference
    outputs_identical: bool
    #: count matrix identical to the uninterrupted reference
    matrix_identical: bool

    @property
    def total_shards(self) -> int:
        return self.shards_replayed + self.shards_realigned

    @property
    def rework_bounded(self) -> bool:
        """Instance B re-aligned strictly fewer shards than the accession
        has — the adoption recovered work instead of restarting."""
        return self.shards_replayed > 0 and (
            self.shards_realigned < self.total_shards
        )

    @property
    def passed(self) -> bool:
        return (
            self.rework_bounded
            and self.stale_publish_rejected
            and self.adopter_token > 1
            and self.outputs_identical
            and self.matrix_identical
        )

    def to_table(self) -> str:
        replayed = set(self.replayed)
        table = Table(
            ["accession", "status", "source", "mapped %"],
            title="Kill-instance chaos — instance A SIGKILLed, "
            "instance B adopted via S3",
        )
        for r in self.results:
            source = (
                "journal"
                if r.accession in replayed
                else (
                    f"adopted ({self.shards_replayed}/{self.total_shards} "
                    "shards from S3)"
                    if r.accession == self.adopted_accession
                    else "re-run"
                )
            )
            table.add_row(
                [
                    r.accession,
                    r.status.value,
                    source,
                    f"{100 * r.mapped_fraction:.1f}"
                    if r.status is not RunStatus.FAILED
                    else "-",
                ]
            )
        lines = [
            table.render(),
            f"completed before kill: {self.completed_before_kill}",
            f"adopted {self.adopted_accession} with fencing token "
            f"{self.adopter_token}; stale holder's publish rejected: "
            f"{self.stale_publish_rejected}",
            f"rework bounded: {self.rework_bounded} "
            f"({self.shards_realigned} of {self.total_shards} shards "
            "re-aligned)",
            f"outputs identical: {self.outputs_identical}  "
            f"count matrix identical: {self.matrix_identical}",
        ]
        return "\n".join(lines)


def run_kill_instance_chaos(
    spec: KillInstanceSpec | None = None,
) -> KillInstanceResult:
    """SIGKILL a worker *instance* mid-batch; a second instance adopts.

    Instance A (a forked child, standing in for a spot instance) runs a
    journaled batch with shard checkpoints, replicating every append to
    a durable-rooted S3 bucket under a fencing-token lease.  A hook on
    the shard-checkpoint path SIGKILLs the whole process — engine pool
    and all — after ``kill_after_shards`` checkpoints of the second
    accession, so the death lands mid-alignment, deterministically.

    Instance B (the parent, a different "instance": different process,
    different working directory, no access to A's local journal) waits
    out A's lease, adopts with a bumped fencing token, reconstructs the
    journal from S3 segments, and resumes: completed accessions replay
    wholesale, the victim accession re-dispatches only its unfinished
    shards.  The scenario then proves A's late publish is fenced out and
    the final results are byte-identical to an uninterrupted reference.
    """
    from repro.cloud.s3 import S3Service
    from repro.core.replication import (
        BatchLease,
        FencedOut,
        LeaseHeld,
        ReplicatedJournal,
        reconstruct_journal,
    )

    spec = spec or KillInstanceSpec()
    accessions = spec.accessions
    victim_acc = spec.victim_accession

    def make_config() -> PipelineConfig:
        return PipelineConfig(
            workers=spec.workers,
            align_batch_size=spec.align_batch_size,
            write_outputs=False,
        )

    with TemporaryDirectory(prefix="kill-instance-") as tmp:
        tmp_path = Path(tmp)
        aligner, repo, _ = build_demo_inputs(
            spec.n_accessions,
            n_reads=spec.n_reads,
            read_length=spec.read_length,
            seed=spec.seed,
            prefix="SRR9400",
            cache_dir=spec.cache_dir,
        )
        # the durable root IS the simulated S3's cross-instance storage:
        # both "instances" see it, neither survives without it
        s3_root = tmp_path / "s3"
        prefix = "batch"
        lease_key = f"{prefix}/lease"

        pid = os.fork()
        if pid == 0:
            # instance A: journaled + replicated batch, then die mid-shard
            code = 1
            try:
                bucket = S3Service(root=s3_root).create_bucket("atlas-journal")
                BatchLease.acquire(
                    bucket,
                    lease_key,
                    "instance-a",
                    now=time.time(),
                    ttl=spec.lease_ttl,
                )
                journal = ReplicatedJournal(
                    tmp_path / "a" / "journal.jsonl", bucket, prefix
                )
                pipeline = TranscriptomicsAtlasPipeline(
                    repo, aligner, tmp_path / "a", config=make_config()
                )
                seen = {"n": 0}

                def die_mid_shard(acc: str, start: int, end: int) -> None:
                    if acc != victim_acc:
                        return
                    seen["n"] += 1
                    if seen["n"] >= spec.kill_after_shards:
                        # the deterministic "spot kill": the whole
                        # instance — engine pool included — vanishes with
                        # the checkpoint durably in S3
                        import multiprocessing

                        for proc in multiprocessing.active_children():
                            if proc.pid is not None:
                                os.kill(proc.pid, signal.SIGKILL)
                        os.kill(os.getpid(), signal.SIGKILL)

                pipeline._shard_record_hook = die_mid_shard
                pipeline.run_batch(
                    accessions,
                    BatchOptions(journal=journal, shard_checkpoints=True),
                )
                code = 0
            finally:
                os._exit(code)

        deadline = time.monotonic() + spec.kill_timeout
        status = None
        while time.monotonic() < deadline:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                break
            time.sleep(0.02)
        else:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
            raise RuntimeError(
                f"instance A still alive after {spec.kill_timeout}s"
            )
        if not (os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL):
            raise RuntimeError(
                "instance A exited instead of dying mid-shard "
                f"(wait status {status}); the kill hook never fired"
            )

        # instance B: fresh process state, fresh bucket handle over the
        # same durable root — A's local journal file is NOT used
        bucket = S3Service(root=s3_root).create_bucket("atlas-journal")
        lease = None
        while lease is None:
            try:
                lease = BatchLease.acquire(
                    bucket,
                    lease_key,
                    "instance-b",
                    now=time.time(),
                    ttl=max(spec.lease_ttl, 60.0),
                )
            except LeaseHeld:
                time.sleep(0.05)  # A's lease has not expired yet

        journal_b_path = tmp_path / "b" / "journal.jsonl"
        reconstruct_journal(bucket, prefix, journal_b_path)
        pre_resume = RunJournal(journal_b_path).replay()
        completed_before = sorted(pre_resume.terminal)

        journal_b = ReplicatedJournal(journal_b_path, bucket, prefix)
        resumed = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "b", config=make_config()
        )
        results = resumed.run_batch(
            accessions,
            BatchOptions(
                journal=journal_b, resume=True, shard_checkpoints=True
            ),
        )
        matrix = resumed.build_count_matrix()
        by_acc = {c.accession: c for c in resumed._shard_ckpts}
        victim_ckpt = by_acc.get(victim_acc)
        shards_replayed = victim_ckpt.hits if victim_ckpt is not None else 0
        shards_realigned = (
            victim_ckpt.recorded if victim_ckpt is not None else 0
        )

        # instance A wakes up (simulated): its stale token-1 lease handle
        # must be fenced out at publish time
        results_bucket = S3Service(root=s3_root).create_bucket(
            "atlas-results"
        )
        stale = BatchLease(bucket, lease_key, "instance-a", 1, 0.0)
        try:
            stale.publish(
                results_bucket, "late/result", 1.0, now=time.time()
            )
            stale_publish_rejected = False
        except FencedOut:
            stale_publish_rejected = True
        # ... while the live adopter's token still publishes fine
        lease.publish(results_bucket, "adopted/result", 1.0, now=time.time())
        lease.release(now=time.time())

        reference_pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "reference", config=make_config()
        )
        reference = reference_pipeline.run_batch(accessions, BatchOptions())
        ref_matrix = reference_pipeline.build_count_matrix()

    replayed = [r.accession for r in results if r.resumed]
    outputs_identical = len(results) == len(reference) and all(
        _resume_comparable(r) == _resume_comparable(ref)
        for r, ref in zip(results, reference)
    )
    matrix_identical = (
        matrix.gene_ids == ref_matrix.gene_ids
        and matrix.sample_ids == ref_matrix.sample_ids
        and bool((matrix.counts == ref_matrix.counts).all())
    )
    return KillInstanceResult(
        results=results,
        reference=reference,
        completed_before_kill=completed_before,
        replayed=replayed,
        adopted_accession=victim_acc,
        shards_replayed=shards_replayed,
        shards_realigned=shards_realigned,
        adopter_token=lease.token,
        stale_publish_rejected=stale_publish_rejected,
        outputs_identical=outputs_identical,
        matrix_identical=matrix_identical,
    )


# --------------------------------------------------------------------------
# kill functions mid-shard → scatter-gather adoption
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaasChaosSpec:
    """Parameters of the serverless kill-functions-mid-shard scenario."""

    n_accessions: int = 2
    n_reads: int = 600
    read_length: int = 60
    #: reads per function invocation (controls checkpoint granularity)
    align_batch_size: int = 64
    #: SIGKILL the driver after this many shard checkpoints of the
    #: victim accession are durably journaled
    kill_after_shards: int = 3
    #: function crashes armed on the *adopting* run — live invocations
    #: die mid-shard and the backend's retries must absorb them
    function_failures: int = 2
    #: give up if the driver never dies within this wall-clock budget
    kill_timeout: float = 120.0
    seed: int = 0
    #: route index construction through an IndexCache rooted here
    cache_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.n_accessions < 2:
            raise ValueError("n_accessions must be >= 2")
        if self.kill_after_shards < 1:
            raise ValueError("kill_after_shards must be >= 1")

    @property
    def victim_accession(self) -> str:
        """The accession the driver dies inside (the second, so the
        first proves whole-accession replay alongside shard adoption)."""
        return f"SRR9500{2:03d}"


@dataclass
class FaasChaosResult:
    """Everything the serverless chaos scenario observed."""

    results: list[PipelineResult]
    reference: list[PipelineResult]
    #: accessions whose terminal record survived the driver kill
    completed_before_kill: list[str]
    #: accessions the resumed driver replayed wholesale from the journal
    replayed: list[str]
    #: the accession whose shards were adopted mid-scatter
    adopted_accession: str
    #: victim shards merged from checkpoints / re-invoked as functions
    shards_adopted: int
    shards_realigned: int
    #: function crashes injected into (and absorbed by) the adopting run
    function_kills_absorbed: int
    #: the adopting run's FaaS service counters (invocations, crashes…)
    faas_summary: dict
    #: per-accession outcomes identical to the uninterrupted reference
    outputs_identical: bool
    #: count matrix identical to the uninterrupted reference
    matrix_identical: bool

    @property
    def total_shards(self) -> int:
        return self.shards_adopted + self.shards_realigned

    @property
    def rework_bounded(self) -> bool:
        """The adoption re-invoked strictly fewer shards than the
        accession has — checkpointed scatter work was recovered."""
        return self.shards_adopted > 0 and (
            self.shards_realigned < self.total_shards
        )

    @property
    def passed(self) -> bool:
        return (
            bool(self.completed_before_kill)
            and self.rework_bounded
            and self.function_kills_absorbed > 0
            and self.outputs_identical
            and self.matrix_identical
        )

    def to_table(self) -> str:
        replayed = set(self.replayed)
        table = Table(
            ["accession", "status", "source", "mapped %"],
            title="FaaS chaos — driver killed mid-scatter, functions "
            "killed mid-shard on adoption",
        )
        for r in self.results:
            source = (
                "journal"
                if r.accession in replayed
                else (
                    f"adopted ({self.shards_adopted}/{self.total_shards} "
                    "shards from checkpoints)"
                    if r.accession == self.adopted_accession
                    else "re-run"
                )
            )
            table.add_row(
                [
                    r.accession,
                    r.status.value,
                    source,
                    f"{100 * r.mapped_fraction:.1f}"
                    if r.status is not RunStatus.FAILED
                    else "-",
                ]
            )
        lines = [
            table.render(),
            f"completed before driver kill: {self.completed_before_kill}",
            f"rework bounded: {self.rework_bounded} "
            f"({self.shards_realigned} of {self.total_shards} victim "
            "shards re-invoked)",
            f"function crashes absorbed on adoption: "
            f"{self.function_kills_absorbed}",
            f"faas: {self.faas_summary}",
            f"outputs identical: {self.outputs_identical}  "
            f"count matrix identical: {self.matrix_identical}",
        ]
        return "\n".join(lines)


def run_faas_chaos(spec: FaasChaosSpec | None = None) -> FaasChaosResult:
    """Kill the serverless driver mid-scatter, then kill live functions.

    A forked child drives a journaled ``backend="faas"`` batch with
    shard checkpoints and SIGKILLs itself after ``kill_after_shards``
    checkpoints of the second accession — mid-scatter, with the dead
    driver's partial work durable in the journal.  The parent resumes
    the batch on a fresh driver whose FaaS function is armed to crash
    the next ``function_failures`` invocations (functions killed
    mid-shard, live), and proves the central guarantee: adopted shards
    are merged byte-identically — results and count matrix match an
    uninterrupted serial reference exactly.
    """
    spec = spec or FaasChaosSpec()

    def make_config() -> PipelineConfig:
        return PipelineConfig(
            align_batch_size=spec.align_batch_size,
            write_outputs=False,
        )

    with TemporaryDirectory(prefix="faas-chaos-") as tmp:
        tmp_path = Path(tmp)
        aligner, repo, accessions = build_demo_inputs(
            spec.n_accessions,
            n_reads=spec.n_reads,
            read_length=spec.read_length,
            seed=spec.seed,
            prefix="SRR9500",
            cache_dir=spec.cache_dir,
        )
        victim_acc = spec.victim_accession
        journal_path = tmp_path / "batch.jsonl"

        pid = os.fork()
        if pid == 0:
            # the doomed driver: scatter until the kill hook fires
            code = 1
            try:
                pipeline = TranscriptomicsAtlasPipeline(
                    repo, aligner, tmp_path / "victim", config=make_config()
                )
                seen = {"n": 0}

                def die_mid_scatter(acc: str, start: int, end: int) -> None:
                    if acc != victim_acc:
                        return
                    seen["n"] += 1
                    if seen["n"] >= spec.kill_after_shards:
                        # no engine pool to reap: the faas driver is a
                        # single process and dies whole
                        os.kill(os.getpid(), signal.SIGKILL)

                pipeline._shard_record_hook = die_mid_scatter
                pipeline.run_batch(
                    accessions,
                    BatchOptions(
                        backend="faas",
                        journal=journal_path,
                        shard_checkpoints=True,
                    ),
                )
                code = 0
            finally:
                os._exit(code)

        deadline = time.monotonic() + spec.kill_timeout
        status = None
        while time.monotonic() < deadline:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                break
            time.sleep(0.02)
        else:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
            raise RuntimeError(
                f"faas driver still alive after {spec.kill_timeout}s"
            )
        if not (
            os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        ):
            raise RuntimeError(
                "faas driver exited instead of dying mid-scatter "
                f"(wait status {status}); the kill hook never fired"
            )

        pre_resume = RunJournal(journal_path).replay()
        completed_before = sorted(pre_resume.terminal)

        # the adopting driver: resume the scatter, with live function
        # kills armed so retries are exercised during the adoption too
        resumed = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "adopter", config=make_config()
        )
        backend = resumed._get_faas_backend()
        backend.function.fail_next(spec.function_failures)
        results = resumed.run_batch(
            accessions,
            BatchOptions(
                backend="faas",
                journal=journal_path,
                resume=True,
                shard_checkpoints=True,
            ),
        )
        matrix = resumed.build_count_matrix()
        by_acc = {c.accession: c for c in resumed._shard_ckpts}
        victim_ckpt = by_acc.get(victim_acc)
        shards_adopted = victim_ckpt.hits if victim_ckpt is not None else 0
        shards_realigned = (
            victim_ckpt.recorded if victim_ckpt is not None else 0
        )

        reference_pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "reference", config=make_config()
        )
        reference = reference_pipeline.run_batch(accessions, BatchOptions())
        ref_matrix = reference_pipeline.build_count_matrix()

    replayed = [r.accession for r in results if r.resumed]
    outputs_identical = len(results) == len(reference) and all(
        _resume_comparable(r) == _resume_comparable(ref)
        for r, ref in zip(results, reference)
    )
    matrix_identical = (
        matrix.gene_ids == ref_matrix.gene_ids
        and matrix.sample_ids == ref_matrix.sample_ids
        and bool((matrix.counts == ref_matrix.counts).all())
    )
    return FaasChaosResult(
        results=results,
        reference=reference,
        completed_before_kill=completed_before,
        replayed=replayed,
        adopted_accession=victim_acc,
        shards_adopted=shards_adopted,
        shards_realigned=shards_realigned,
        function_kills_absorbed=backend.crash_retries,
        faas_summary=backend.faas_summary(),
        outputs_identical=outputs_identical,
        matrix_identical=matrix_identical,
    )
