"""Chaos harness: the resilience layer under a scripted fault plan.

Runs a laptop-scale batch through the *real* four-step pipeline while a
:class:`~repro.core.resilience.FaultPlan` injects failures — transient
prefetch/dump faults that retries absorb, one permanent failure that
becomes a ``FAILED`` result, and (with ``workers > 1``) an engine-worker
SIGKILL mid-campaign — then verifies the central guarantee: every
accession that survived produced output identical to a fault-free serial
run, and the batch returned one result per accession in submission
order.

This is the executable form of the acceptance scenario in the README's
"Failure semantics & fault injection" section; ``python -m repro chaos``
prints its table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.align.index import genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.pipeline import (
    PipelineConfig,
    PipelineResult,
    RunStatus,
    TranscriptomicsAtlasPipeline,
)
from repro.core.resilience import FaultPlan, RetryPolicy
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.reads.sra import SraArchive, SraRepository
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table


@dataclass(frozen=True)
class ChaosSpec:
    """Parameters of one chaos run."""

    n_accessions: int = 12
    n_reads: int = 120
    read_length: int = 80
    #: alignment worker processes (>1 also exercises engine recovery)
    workers: int = 2
    #: accessions run concurrently through ``run_batch``
    max_parallel: int = 4
    seed: int = 0
    #: fault plan text (``step:key:kind[*times]``, comma-separated);
    #: None → the default scripted scenario built by :func:`default_plan`
    fault_plan_text: str | None = None
    #: short wedge-detection window so the engine-kill scenario degrades
    #: (and recovers) within laptop-scale run times
    engine_stall_timeout: float = 1.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.05
        )
    )

    def __post_init__(self) -> None:
        if self.n_accessions < 2:
            raise ValueError("n_accessions must be >= 2")

    @property
    def accessions(self) -> list[str]:
        return [f"SRR9100{i:03d}" for i in range(1, self.n_accessions + 1)]


def default_plan(accessions: list[str], *, workers: int) -> FaultPlan:
    """The canonical scripted scenario over a batch of accessions.

    Two transient prefetch faults on one accession (recovered by the
    third attempt), one transient fasterq-dump fault on another, one
    *permanent* prefetch failure (the batch's single FAILED result), and
    — when the engine is on — a worker SIGKILL right before a
    mid-campaign alignment.
    """
    text = (
        f"prefetch:{accessions[1]}:transient*2,"
        f"fasterq_dump:{accessions[3]}:transient*1,"
        f"prefetch:{accessions[-2]}:permanent"
    )
    if workers > 1:
        text += f",engine_worker:{accessions[5]}:transient*1"
    return FaultPlan.parse(text)


@dataclass
class ChaosResult:
    """Everything the chaos run observed."""

    results: list[PipelineResult]
    reference: list[PipelineResult]
    summary: dict[str, int]
    retries_by_step: dict[str, int]
    plan_description: str
    faults_injected: dict[str, int]
    #: submission order preserved in the returned result list
    order_preserved: bool
    #: every non-FAILED result identical to the fault-free serial run
    outputs_identical: bool

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if r.status is RunStatus.FAILED)

    @property
    def passed(self) -> bool:
        return self.order_preserved and self.outputs_identical

    def to_table(self) -> str:
        table = Table(
            ["accession", "status", "retries", "failed step", "mapped %"],
            title="Chaos run — scripted faults vs fault-free reference",
        )
        for r in self.results:
            table.add_row(
                [
                    r.accession,
                    r.status.value,
                    r.retries,
                    r.failure.step if r.failure is not None else "-",
                    f"{100 * r.mapped_fraction:.1f}"
                    if r.status is not RunStatus.FAILED
                    else "-",
                ]
            )
        lines = [
            table.render(),
            f"plan: {self.plan_description}",
            f"faults injected: {self.faults_injected}",
            f"retries by step: {self.retries_by_step}",
            f"summary: {self.summary}",
            f"order preserved: {self.order_preserved}  "
            f"outputs identical to fault-free serial run: "
            f"{self.outputs_identical}",
        ]
        return "\n".join(lines)


def _comparable(result: PipelineResult) -> tuple:
    """The output surface that must be identical across execution modes
    (wall-clock timings excluded — everything else must match)."""
    final = result.star_result.final if result.star_result else None
    counts = (
        result.star_result.gene_counts if result.star_result else None
    )
    return (
        result.accession,
        result.status,
        result.counts,
        result.paired,
        None
        if final is None
        else (
            final.reads_processed,
            final.mapped_unique,
            final.mapped_multi,
            final.unmapped,
            final.aborted,
        ),
        None if counts is None else counts.column_vector("unstranded"),
    )


def run_chaos(spec: ChaosSpec | None = None) -> ChaosResult:
    """Execute the chaos scenario and validate the resilience guarantees."""
    spec = spec or ChaosSpec()
    rng = ensure_rng(spec.seed)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    index = genome_generate(assembly, annotation=universe.annotation)
    aligner = StarAligner(index, StarParameters(progress_every=50))
    simulator = ReadSimulator(assembly, universe.annotation)

    accessions = spec.accessions
    repo = SraRepository()
    for i, acc in enumerate(accessions):
        # one single-cell library in the mix so the early-stopping path
        # (REJECTED_EARLY) is exercised alongside the fault paths
        library = (
            LibraryType.SINGLE_CELL_3P if i == 0 else LibraryType.BULK_POLYA
        )
        sample = simulator.simulate(
            SampleProfile(
                library=library,
                n_reads=spec.n_reads,
                read_length=spec.read_length,
            ),
            rng=900 + i,
            read_id_prefix=acc,
        )
        repo.deposit(SraArchive(acc, library, sample.records))

    plan = (
        FaultPlan.parse(spec.fault_plan_text)
        if spec.fault_plan_text is not None
        else default_plan(accessions, workers=spec.workers)
    )

    def make_config(**overrides) -> PipelineConfig:
        base = dict(
            early_stopping=EarlyStoppingPolicy(min_reads=20),
            write_outputs=False,
            retry=spec.retry,
            engine_stall_timeout=spec.engine_stall_timeout,
        )
        base.update(overrides)
        return PipelineConfig(**base)

    with TemporaryDirectory(prefix="chaos-") as tmp:
        tmp_path = Path(tmp)
        with TranscriptomicsAtlasPipeline(
            repo,
            aligner,
            tmp_path / "faulted",
            config=make_config(workers=spec.workers, fault_plan=plan),
        ) as pipeline:
            results = pipeline.run_batch(
                accessions, max_parallel=spec.max_parallel
            )
            # the engine pool must stay usable after worker kills: run one
            # more accession through the same pipeline before closing
            post = pipeline.run_accession(accessions[0])
            summary = pipeline.summary()
            retries_by_step = pipeline.retries_by_step()

        reference_pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "reference", config=make_config()
        )
        reference = reference_pipeline.run_batch(accessions)

    order_preserved = [r.accession for r in results] == accessions
    outputs_identical = all(
        _comparable(r) == _comparable(ref)
        for r, ref in zip(results, reference)
        if r.status is not RunStatus.FAILED
    ) and _comparable(post) == _comparable(reference[0])

    return ChaosResult(
        results=results,
        reference=reference,
        summary=summary,
        retries_by_step=retries_by_step,
        plan_description=plan.describe(),
        faults_injected=plan.injected,
        order_preserved=order_preserved,
        outputs_identical=outputs_identical,
    )
