"""Architecture experiment (§II, Fig. 2): end-to-end cloud campaign.

The paper evaluates its architecture qualitatively (scalability,
cost-efficiency, high utilization); this harness quantifies those claims
on the DES substrate:

* throughput scales ~linearly with the AutoScalingGroup ceiling until the
  queue drains faster than instances can start;
* spot cuts cost versus on-demand despite interruptions (SQS redelivery
  makes interruptions safe);
* the release-111 index lowers the per-instance init overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.autoscaling import ScalingPolicy
from repro.cloud.ec2 import InstanceMarket
from repro.core.atlas import AtlasConfig, AtlasJob, AtlasRunReport, run_atlas
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease
from repro.util.tables import Table


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's campaign summary."""

    label: str
    max_fleet: int
    market: str
    release: int
    makespan_hours: float
    jobs_per_hour: float
    cost_usd: float
    cost_per_job_usd: float
    mean_utilization: float
    n_interrupted: int
    init_overhead_seconds: float


@dataclass
class ArchitectureResult:
    """All sweep points plus access to the underlying reports."""

    points: list[SweepPoint]
    reports: dict[str, AtlasRunReport]

    def point(self, label: str) -> SweepPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    def to_table(self) -> str:
        table = Table(
            [
                "config",
                "fleet<=",
                "market",
                "rel",
                "makespan h",
                "jobs/h",
                "cost $",
                "$/job",
                "util",
                "intr",
            ],
            title="Architecture sweep — throughput and cost",
        )
        for p in self.points:
            table.add_row(
                [
                    p.label,
                    p.max_fleet,
                    p.market,
                    p.release,
                    f"{p.makespan_hours:.2f}",
                    f"{p.jobs_per_hour:.1f}",
                    f"{p.cost_usd:.2f}",
                    f"{p.cost_per_job_usd:.3f}",
                    f"{p.mean_utilization:.2f}",
                    p.n_interrupted,
                ]
            )
        return table.render()


def _summarize(label: str, config: AtlasConfig, report: AtlasRunReport) -> SweepPoint:
    return SweepPoint(
        label=label,
        max_fleet=config.scaling.max_size,
        market=config.market.value,
        release=int(config.release),
        makespan_hours=report.makespan_seconds / 3600.0,
        jobs_per_hour=report.throughput_jobs_per_hour,
        cost_usd=report.cost.total_usd,
        cost_per_job_usd=report.cost.total_usd / max(1, report.n_jobs),
        mean_utilization=report.mean_utilization,
        n_interrupted=report.cost.n_interrupted,
        init_overhead_seconds=report.init_overhead_seconds,
    )


def make_jobs(n_jobs: int = 120, *, seed: int = 0) -> list[AtlasJob]:
    """A scaled-down atlas workload with the corpus's class mix."""
    spec = CorpusSpec(n_runs=n_jobs)
    return generate_corpus(spec, rng=seed)


def run_architecture_sweep(
    *,
    n_jobs: int = 120,
    fleet_sizes: tuple[int, ...] = (2, 4, 8, 16),
    seed: int = 0,
) -> ArchitectureResult:
    """Fleet-size scaling sweep, plus spot and release-108 variants."""
    jobs = make_jobs(n_jobs, seed=seed)
    points: list[SweepPoint] = []
    reports: dict[str, AtlasRunReport] = {}

    base = AtlasConfig(
        release=EnsemblRelease.R111,
        instance_name="r6a.2xlarge",
        market=InstanceMarket.ON_DEMAND,
        scaling=ScalingPolicy(max_size=8, messages_per_instance=4),
        seed=seed,
    )

    for fleet in fleet_sizes:
        config = replace(
            base, scaling=ScalingPolicy(max_size=fleet, messages_per_instance=4)
        )
        label = f"ondemand-x{fleet}"
        report = run_atlas(jobs, config)
        reports[label] = report
        points.append(_summarize(label, config, report))

    spot_config = replace(base, market=InstanceMarket.SPOT)
    report = run_atlas(jobs, spot_config)
    reports["spot-x8"] = report
    points.append(_summarize("spot-x8", spot_config, report))

    # Release 108 variant: bigger index forces a bigger instance and a
    # longer init phase, and alignment is ~12x slower.
    r108_config = replace(base, release=EnsemblRelease.R108, instance_name="r6a.4xlarge")
    report = run_atlas(jobs, r108_config)
    reports["r108-x8"] = report
    points.append(_summarize("r108-x8", r108_config, report))

    return ArchitectureResult(points=points, reports=reports)
