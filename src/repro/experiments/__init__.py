"""Experiment harnesses: one module per paper figure/table plus ablations.

Each harness produces a result object with a ``to_table()``/``to_text()``
rendering of the same rows/series the paper reports; the benches in
``benchmarks/`` call these and assert the shape claims from DESIGN.md §6.
"""

from repro.experiments.ablation import AblationResult, run_ablation
from repro.experiments.architecture import ArchitectureResult, run_architecture_sweep
from repro.experiments.chaos import ChaosResult, ChaosSpec, run_chaos
from repro.experiments.config_table import ConfigTableResult, run_config_table
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.experiments.diagrams import architecture_diagram, pipeline_diagram
from repro.experiments.export import (
    atlas_report_to_dict,
    fig3_to_dict,
    fig4_to_dict,
    write_json,
)
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.full_atlas import FullAtlasResult, run_full_atlas
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.mini_fig3 import MiniFig3Result, run_mini_fig3
from repro.experiments.pseudo_comparison import (
    PseudoComparisonResult,
    run_pseudo_comparison,
    run_transferability,
)
from repro.experiments.reporting import ReportScale, generate_report
from repro.experiments.scaling_study import ScalingStudyResult, run_scaling_study

__all__ = [
    "AblationResult",
    "ArchitectureResult",
    "ChaosResult",
    "ChaosSpec",
    "ConfigTableResult",
    "CorpusSpec",
    "Fig3Result",
    "Fig4Result",
    "FullAtlasResult",
    "MiniFig3Result",
    "PseudoComparisonResult",
    "ReportScale",
    "ScalingStudyResult",
    "architecture_diagram",
    "atlas_report_to_dict",
    "fig3_to_dict",
    "fig4_to_dict",
    "generate_corpus",
    "generate_report",
    "pipeline_diagram",
    "run_ablation",
    "run_architecture_sweep",
    "run_chaos",
    "run_config_table",
    "run_fig3",
    "run_fig4",
    "run_full_atlas",
    "run_mini_fig3",
    "run_pseudo_comparison",
    "run_scaling_study",
    "run_transferability",
    "write_json",
]
