"""Ablation: the early-stopping operating point (threshold, check fraction).

The paper fixes (30% mapping rate, 10% of reads).  This harness sweeps
both knobs over the corpus and reports, per point:

* saving fraction (the Fig. 4 metric);
* terminated-run count;
* *false terminations* — runs the policy kills that would have finished
  above the acceptance bar (atlas data lost; the paper's operating point
  must have none);
* *missed terminations* — runs that finish below the bar anyway (compute
  wasted on data the atlas then discards).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.early_stopping import EarlyStoppingPolicy
from repro.experiments.corpus import CorpusSpec
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.util.tables import Table


@dataclass(frozen=True)
class AblationPoint:
    """One (threshold, check_fraction) operating point's outcome."""

    mapping_threshold: float
    check_fraction: float
    n_terminated: int
    false_terminations: int
    missed_terminations: int
    saving_fraction: float

    @property
    def is_safe(self) -> bool:
        """No accepted-quality run was killed."""
        return self.false_terminations == 0


@dataclass
class AblationResult:
    """The sweep grid."""

    points: list[AblationPoint]
    corpus_size: int

    def point(
        self, mapping_threshold: float, check_fraction: float
    ) -> AblationPoint:
        for p in self.points:
            if (
                abs(p.mapping_threshold - mapping_threshold) < 1e-9
                and abs(p.check_fraction - check_fraction) < 1e-9
            ):
                return p
        raise KeyError((mapping_threshold, check_fraction))

    def to_table(self) -> str:
        table = Table(
            ["thresh", "check@", "terminated", "false", "missed", "saved %", "safe"],
            title=f"Early-stopping ablation over {self.corpus_size} runs",
        )
        for p in self.points:
            table.add_row(
                [
                    f"{100 * p.mapping_threshold:.0f}%",
                    f"{100 * p.check_fraction:.0f}%",
                    p.n_terminated,
                    p.false_terminations,
                    p.missed_terminations,
                    f"{100 * p.saving_fraction:.1f}",
                    "yes" if p.is_safe else "NO",
                ]
            )
        return table.render()


def _evaluate(result: Fig4Result) -> AblationPoint:
    policy = result.policy
    missed = sum(
        1
        for r in result.rows
        if not r.terminated and r.terminal_rate < policy.mapping_threshold
    )
    savings = result.savings
    return AblationPoint(
        mapping_threshold=policy.mapping_threshold,
        check_fraction=policy.check_fraction,
        n_terminated=savings.n_terminated,
        false_terminations=result.false_terminations,
        missed_terminations=missed,
        saving_fraction=savings.saving_fraction,
    )


def run_ablation(
    *,
    thresholds: tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50),
    check_fractions: tuple[float, ...] = (0.05, 0.10, 0.20, 0.30),
    corpus_size: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """Sweep the policy grid over a fixed corpus (same seed every point)."""
    spec = CorpusSpec(n_runs=corpus_size)
    points: list[AblationPoint] = []
    for threshold in thresholds:
        for fraction in check_fractions:
            policy = EarlyStoppingPolicy(
                mapping_threshold=threshold, check_fraction=fraction
            )
            result = run_fig4(spec=spec, policy=policy, rng=seed)
            points.append(_evaluate(result))
    return AblationResult(points=points, corpus_size=corpus_size)
