"""Duplication sweep: the scaffold-duplication penalty, measured directly.

The calibrated performance model maps a release's *duplication factor*
(toplevel bases / chromosome bases) to alignment cost via difficulty =
dup^α.  This experiment validates the underlying mechanism with the real
aligner: build assemblies over one chromosome universe with increasing
amounts of duplicated scaffold sequence (dup 1.0 → ~6), and measure

* wall-clock alignment time (must increase with duplication),
* mean seed hits per read (the mechanism: more copies ⇒ more candidate
  loci per seed ⇒ more extension work),
* mapping rate (must stay flat — the paper's <1% observation).

Release 108 corresponds to dup ≈ 2.9 on this axis; release 111 to ≈ 1.01.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.align.cache import cached_genome_generate
from repro.align.star import StarAligner, StarParameters
from repro.genome.synth import GenomeUniverseSpec, assemble_release, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table


@dataclass(frozen=True)
class DuplicationPoint:
    """Measurements at one duplication factor."""

    duplication_factor: float
    genome_bases: int
    index_bytes: int
    align_seconds: float
    mapped_fraction: float
    mean_seed_hits: float


@dataclass
class ScalingStudyResult:
    """Alignment cost as a function of scaffold duplication."""

    points: list[DuplicationPoint]
    n_reads: int

    @property
    def baseline(self) -> DuplicationPoint:
        """The duplication-free point (release-111-like)."""
        return min(self.points, key=lambda p: p.duplication_factor)

    def time_ratio(self, point: DuplicationPoint) -> float:
        return point.align_seconds / self.baseline.align_seconds

    @property
    def time_ratios_increase(self) -> bool:
        ordered = sorted(self.points, key=lambda p: p.duplication_factor)
        times = [p.align_seconds for p in ordered]
        return all(b >= a * 0.95 for a, b in zip(times, times[1:])) and (
            times[-1] > 1.2 * times[0]
        )

    @property
    def seed_hits_track_duplication(self) -> bool:
        """Mean seed hits grow ~linearly with the duplication factor."""
        ordered = sorted(self.points, key=lambda p: p.duplication_factor)
        hits = [p.mean_seed_hits for p in ordered]
        return all(b > a for a, b in zip(hits, hits[1:]))

    @property
    def max_mapping_delta(self) -> float:
        rates = [p.mapped_fraction for p in self.points]
        return max(rates) - min(rates)

    def to_table(self) -> str:
        table = Table(
            ["dup factor", "genome bases", "index MB", "align s",
             "time ratio", "seed hits/read", "mapped %"],
            title="Duplication sweep — alignment cost vs scaffold duplication",
        )
        for p in sorted(self.points, key=lambda q: q.duplication_factor):
            table.add_row(
                [
                    f"{p.duplication_factor:.2f}",
                    p.genome_bases,
                    f"{p.index_bytes / 1e6:.1f}",
                    f"{p.align_seconds:.2f}",
                    f"{self.time_ratio(p):.2f}x",
                    f"{p.mean_seed_hits:.1f}",
                    f"{100 * p.mapped_fraction:.1f}",
                ]
            )
        return table.render() + (
            "\nrelease 111 sits at dup≈1.01, release 108 at dup≈2.92 on this "
            "axis;\nseed hits track duplication while the mapping rate stays "
            "flat — the paper's mechanism."
        )


def _mean_seed_hits(index, reads) -> float:
    from repro.align.seeds import maximal_mappable_prefix

    total = 0
    for record in reads:
        total += maximal_mappable_prefix(index, record.sequence).n_hits
    return total / max(1, len(reads))


def run_scaling_study(
    *,
    duplication_factors: tuple[float, ...] = (1.0, 2.0, 3.0, 6.0),
    n_reads: int = 200,
    read_length: int = 80,
    seed: int = 42,
    timing_repeats: int = 3,
    cache_dir=None,
) -> ScalingStudyResult:
    """Measure alignment cost at several scaffold-duplication levels.

    Each point is timed ``timing_repeats`` times and the minimum is
    reported — best-of-N rejects scheduler and thermal-throttle noise,
    which otherwise dominates the tens-of-milliseconds laptop-scale runs.
    ``cache_dir`` routes each point's index through the content-addressed
    :class:`~repro.align.cache.IndexCache` (repeat runs mmap-load).
    """
    if any(f < 1.0 for f in duplication_factors):
        raise ValueError("duplication factors must be >= 1.0")
    root = ensure_rng(seed)
    universe = make_universe(GenomeUniverseSpec(), derive_rng(root, "universe"))
    chrom_bases = universe.chromosome_bases

    # one read set, simulated against the clean chromosomes, shared by all
    # points — as Fig. 3 aligns the same FASTQ against both indexes
    clean = assemble_release(
        universe, name="dup1.0", n_unlocalized=0, n_unplaced=0,
        unlocalized_bases=0, unplaced_bases=0, rng=derive_rng(root, "clean"),
    )
    simulator = ReadSimulator(clean, universe.annotation)
    sample = simulator.simulate(
        SampleProfile(
            LibraryType.BULK_POLYA, n_reads=n_reads, read_length=read_length
        ),
        rng=derive_rng(root, "reads"),
    )

    points: list[DuplicationPoint] = []
    for factor in duplication_factors:
        extra = int((factor - 1.0) * chrom_bases)
        if extra <= 0:
            assembly = clean
        else:
            assembly = assemble_release(
                universe,
                name=f"dup{factor:.1f}",
                n_unlocalized=max(1, int(2 * factor)),
                n_unplaced=max(1, int(10 * factor)),
                unlocalized_bases=extra // 4,
                unplaced_bases=extra - extra // 4,
                rng=derive_rng(root, f"dup-{factor}"),
            )
        index = cached_genome_generate(
            assembly, universe.annotation, cache_dir=cache_dir
        )
        # Per-read reference path, for the same reason as mini_fig3: the
        # sweep isolates duplication-driven seed/extension overhead, which
        # the vectorized batch core amortizes into near-flat wall-clock.
        aligner = StarAligner(
            index, StarParameters(progress_every=10_000, batch_align=False)
        )
        elapsed = float("inf")
        for _ in range(max(1, timing_repeats)):
            started = time.perf_counter()
            result = aligner.run(sample.records)
            elapsed = min(elapsed, time.perf_counter() - started)
        points.append(
            DuplicationPoint(
                duplication_factor=assembly.total_length / chrom_bases,
                genome_bases=assembly.total_length,
                index_bytes=index.size_bytes(),
                align_seconds=elapsed,
                mapped_fraction=result.mapped_fraction,
                mean_seed_hits=_mean_seed_hits(index, sample.records),
            )
        )
    return ScalingStudyResult(points=points, n_reads=n_reads)
