"""EXT-PSEUDO: applicability of early stopping to other aligners.

The paper's conclusions: "other (pseudo)aligners should also provide the
current mapping rate value (e.g. Salmon does not)" and "further research
will measure applicability of those findings for other aligners".  This
experiment does that measurement on the reproduction, in two parts:

1. **Corpus level** (perf models): run the 1000-job corpus through four
   pipeline variants — STAR ± early stopping, pseudo-aligner as shipped
   (no progress stream ⇒ no early stopping), and a *hypothetical*
   progress-enabled pseudo-aligner.  Quantifies the compute the stock
   pseudo-aligner wastes on runs the atlas then rejects, and what adding
   a progress stream would recover.

2. **Mini level** (real tools): align the same bulk and single-cell
   samples with the real suffix-array aligner and the real k-mer
   pseudo-aligner; verify the *finding transfers* — the pseudo-aligner's
   final mapping rate separates the library classes just as STAR's does,
   so a progress stream would make the same early decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.align.pseudo import PseudoAligner, build_pseudo_index
from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import Decision, EarlyStoppingPolicy
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease, build_release_assembly, release_spec
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.perf.pseudo_model import PseudoPerfModel
from repro.perf.star_model import StarPerfModel
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table


@dataclass(frozen=True)
class VariantTotals:
    """One pipeline variant's corpus-level accounting."""

    name: str
    supports_early_stop: bool
    total_hours: float
    wasted_hours: float  # spent on runs the atlas ultimately rejects
    n_terminated: int

    @property
    def useful_hours(self) -> float:
        return self.total_hours - self.wasted_hours


@dataclass
class PseudoComparisonResult:
    """Corpus-level totals for the four variants."""

    variants: dict[str, VariantTotals]
    n_jobs: int
    policy: EarlyStoppingPolicy

    def variant(self, name: str) -> VariantTotals:
        return self.variants[name]

    @property
    def pseudo_waste_fraction(self) -> float:
        """Fraction of stock-pseudo compute spent on rejected runs."""
        stock = self.variant("pseudo-stock")
        return stock.wasted_hours / stock.total_hours

    @property
    def pseudo_recoverable_fraction(self) -> float:
        """Fraction of stock-pseudo time a progress stream would recover."""
        stock = self.variant("pseudo-stock")
        extended = self.variant("pseudo-with-progress")
        return (stock.total_hours - extended.total_hours) / stock.total_hours

    def to_table(self) -> str:
        table = Table(
            ["variant", "early stop", "total h", "wasted h", "terminated"],
            title=(
                f"Early stopping across aligners — {self.n_jobs} runs "
                f"(threshold {100 * self.policy.mapping_threshold:.0f}% "
                f"at {100 * self.policy.check_fraction:.0f}%)"
            ),
        )
        for v in self.variants.values():
            table.add_row(
                [
                    v.name,
                    "yes" if v.supports_early_stop else "NO",
                    f"{v.total_hours:.1f}",
                    f"{v.wasted_hours:.1f}",
                    v.n_terminated,
                ]
            )
        footer = (
            f"\nstock pseudo-aligner wastes "
            f"{100 * self.pseudo_waste_fraction:.1f}% of its compute on "
            f"runs the atlas rejects;\na progress stream would recover "
            f"{100 * self.pseudo_recoverable_fraction:.1f}% of its total time "
            "— the paper's conclusion, quantified."
        )
        return table.render() + footer


def run_pseudo_comparison(
    *,
    spec: CorpusSpec | None = None,
    policy: EarlyStoppingPolicy | None = None,
    rng: int | None = 0,
) -> PseudoComparisonResult:
    """Corpus-level comparison of the four pipeline variants."""
    spec = spec or CorpusSpec()
    policy = policy or EarlyStoppingPolicy()
    root = ensure_rng(rng)
    jobs = generate_corpus(spec, rng=derive_rng(root, "corpus"))
    star_model = StarPerfModel()
    pseudo_model = PseudoPerfModel(star_model=star_model)
    release = release_spec(spec.release)
    noise = derive_rng(root, "noise")

    n = 20  # progress snapshots per run
    totals = {
        "star-early-stop": [0.0, 0.0, 0],
        "star-no-early-stop": [0.0, 0.0, 0],
        "pseudo-stock": [0.0, 0.0, 0],
        "pseudo-with-progress": [0.0, 0.0, 0],
    }

    for job in jobs:
        # where would the policy stop this run, if it could see progress?
        stop_fraction: float | None = None
        for i in range(1, n + 1):
            f = i / n
            if policy.decide_rate(job.trajectory.rate_at(f), f) is Decision.ABORT:
                stop_fraction = f
                break
        accepted = policy.accepts_final(job.trajectory.rate_at(1.0))

        star_full = star_model.predict(job.fastq_bytes, release, spec.vcpus, rng=noise)
        pseudo_full = pseudo_model.predict(job.fastq_bytes, spec.vcpus, rng=noise)

        def account(key: str, seconds: float, *, rejected: bool, terminated: bool):
            totals[key][0] += seconds / 3600.0
            if rejected:
                totals[key][1] += seconds / 3600.0
            if terminated:
                totals[key][2] += 1

        # STAR with early stopping: terminated runs pay only the prefix
        if stop_fraction is not None:
            seconds = star_full.setup_seconds + stop_fraction * star_full.full_scan_seconds
            account("star-early-stop", seconds, rejected=True, terminated=True)
        else:
            account("star-early-stop", star_full.total_seconds, rejected=not accepted,
                    terminated=False)
        # STAR without: everything runs to completion
        account("star-no-early-stop", star_full.total_seconds,
                rejected=stop_fraction is not None or not accepted, terminated=False)
        # stock pseudo-aligner: fast, but no progress -> no early stop
        account("pseudo-stock", pseudo_full.total_seconds,
                rejected=stop_fraction is not None or not accepted, terminated=False)
        # hypothetical progress-enabled pseudo-aligner
        if stop_fraction is not None:
            seconds = (
                pseudo_full.setup_seconds
                + stop_fraction * pseudo_full.full_scan_seconds
            )
            account("pseudo-with-progress", seconds, rejected=True, terminated=True)
        else:
            account("pseudo-with-progress", pseudo_full.total_seconds,
                    rejected=not accepted, terminated=False)

    variants = {
        name: VariantTotals(
            name=name,
            supports_early_stop=name in ("star-early-stop", "pseudo-with-progress"),
            total_hours=vals[0],
            wasted_hours=vals[1],
            n_terminated=vals[2],
        )
        for name, vals in totals.items()
    }
    return PseudoComparisonResult(variants=variants, n_jobs=len(jobs), policy=policy)


@dataclass
class TransferabilityResult:
    """Mini-level check that the finding transfers to the real pseudo-aligner."""

    star_bulk_rate: float
    star_sc_rate: float
    pseudo_bulk_rate: float
    pseudo_sc_rate: float
    threshold: float

    @property
    def star_separates(self) -> bool:
        return self.star_sc_rate < self.threshold < self.star_bulk_rate

    @property
    def pseudo_separates(self) -> bool:
        return self.pseudo_sc_rate < self.threshold < self.pseudo_bulk_rate

    def to_table(self) -> str:
        table = Table(
            ["aligner", "bulk mapped %", "single-cell mapped %", "separates @30%?"],
            title="Transferability: final mapping rates, real aligners",
        )
        table.add_row(
            ["STAR-like", f"{100 * self.star_bulk_rate:.1f}",
             f"{100 * self.star_sc_rate:.1f}", "yes" if self.star_separates else "NO"]
        )
        table.add_row(
            ["pseudo (Salmon-like)", f"{100 * self.pseudo_bulk_rate:.1f}",
             f"{100 * self.pseudo_sc_rate:.1f}",
             "yes" if self.pseudo_separates else "NO"]
        )
        return table.render()


def run_transferability(
    *,
    n_reads: int = 300,
    seed: int = 11,
    threshold: float = 0.30,
    cache_dir=None,
) -> TransferabilityResult:
    """Real-tool check: does the pseudo-aligner's rate separate classes too?"""
    rng = ensure_rng(seed)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(universe, EnsemblRelease.R111, rng=1)
    simulator = ReadSimulator(assembly, universe.annotation)
    bulk = simulator.simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=n_reads, read_length=80),
        rng=derive_rng(rng, "bulk"),
    )
    sc = simulator.simulate(
        SampleProfile(LibraryType.SINGLE_CELL_3P, n_reads=n_reads, read_length=80),
        rng=derive_rng(rng, "sc"),
    )

    from repro.align.cache import cached_genome_generate

    star = StarAligner(
        cached_genome_generate(assembly, universe.annotation, cache_dir=cache_dir),
        StarParameters(progress_every=1000),
    )
    pseudo = PseudoAligner(build_pseudo_index(assembly, universe.annotation))

    return TransferabilityResult(
        star_bulk_rate=star.run(bulk.records).mapped_fraction,
        star_sc_rate=star.run(sc.records).mapped_fraction,
        pseudo_bulk_rate=pseudo.run(bulk.records).mapped_fraction,
        pseudo_sc_rate=pseudo.run(sc.records).mapped_fraction,
        threshold=threshold,
    )
