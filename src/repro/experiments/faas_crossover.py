"""Where does serverless win?  The cost-per-accession crossover.

The ASG architecture pays fixed per-instance overheads — boot, index
download, shared-memory load — that amortize beautifully over the
paper's multi-gigabyte archives and terribly over small runs.  The
scatter-gather FaaS architecture pays per-invocation overheads instead
(cold starts, per-request fees) and bills compute by the GB-second with
no idle tail.  Somewhere between "thousands of tiny amplicon runs" and
"105 GB single-cell archives" the cheaper architecture flips.

This experiment pins the flip point: the same corpus is rescaled to a
range of mean archive sizes and run through
:func:`~repro.core.faas_atlas.compare_architectures` at each scale; the
crossover is the largest scale at which pure FaaS is at most as
expensive per accession as the instance fleet.  ``repro faas-crossover``
prints the sweep; ``benchmarks/test_bench_faas.py`` records it to
``BENCH_faas.json`` with the cost-per-accession bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.atlas import AtlasConfig, AtlasJob
from repro.core.faas_atlas import FaasAtlasConfig, compare_architectures

__all__ = [
    "CrossoverPoint",
    "CrossoverResult",
    "run_faas_crossover",
    "scale_jobs",
]

#: sweep over mean archive size, as a fraction of the paper-calibrated corpus
DEFAULT_SCALES = (0.01, 0.03, 0.1, 0.3, 1.0)


def scale_jobs(jobs: list[AtlasJob], scale: float) -> list[AtlasJob]:
    """The same accession set with every archive rescaled by ``scale``.

    Trajectories (and therefore early-stop/acceptance decisions) are
    untouched: only the data volume moves, which is exactly the axis the
    crossover is about.
    """
    if scale <= 0:
        raise ValueError("scale must be > 0")
    return [
        AtlasJob(
            accession=j.accession,
            sra_bytes=j.sra_bytes * scale,
            fastq_bytes=j.fastq_bytes * scale,
            n_reads=max(100, int(j.n_reads * scale)),
            library=j.library,
            trajectory=j.trajectory,
        )
        for j in jobs
    ]


@dataclass(frozen=True)
class CrossoverPoint:
    """One scale's architecture comparison, condensed."""

    scale: float
    mean_fastq_mb: float
    asg_usd_per_accession: float
    faas_usd_per_accession: float
    hybrid_usd_per_accession: float
    asg_makespan_hours: float
    faas_makespan_hours: float
    faas_cold_start_share: float
    faas_cap_reshards: int

    @property
    def faas_wins(self) -> bool:
        return self.faas_usd_per_accession <= self.asg_usd_per_accession


@dataclass
class CrossoverResult:
    """The full sweep plus the flip point."""

    points: list[CrossoverPoint]
    n_jobs: int

    @property
    def crossover_scale(self) -> float | None:
        """Largest swept scale where pure FaaS is the cheaper architecture."""
        winning = [p.scale for p in self.points if p.faas_wins]
        return max(winning) if winning else None

    def point(self, scale: float) -> CrossoverPoint:
        for p in self.points:
            if p.scale == scale:
                return p
        raise KeyError(scale)

    def to_table(self) -> str:
        from repro.util.tables import Table

        table = Table(
            [
                "scale",
                "mean FASTQ (MB)",
                "asg $/acc",
                "faas $/acc",
                "hybrid $/acc",
                "asg h",
                "faas h",
                "cold share",
                "cap re-shards",
                "winner",
            ],
            title=f"FaaS cost crossover — {self.n_jobs} accessions per point",
        )
        for p in self.points:
            table.add_row(
                [
                    f"{p.scale:g}",
                    f"{p.mean_fastq_mb:.0f}",
                    f"{p.asg_usd_per_accession:.4f}",
                    f"{p.faas_usd_per_accession:.4f}",
                    f"{p.hybrid_usd_per_accession:.4f}",
                    f"{p.asg_makespan_hours:.2f}",
                    f"{p.faas_makespan_hours:.2f}",
                    f"{p.faas_cold_start_share:.3f}",
                    p.faas_cap_reshards,
                    "faas" if p.faas_wins else "asg",
                ]
            )
        return table.render()

    def to_json(self) -> dict:
        """The ``BENCH_faas.json`` payload (cost-per-accession bars)."""
        return {
            "n_jobs": self.n_jobs,
            "crossover_scale": self.crossover_scale,
            "cost_per_accession_bars": [
                {
                    "scale": p.scale,
                    "mean_fastq_mb": p.mean_fastq_mb,
                    "asg_usd": p.asg_usd_per_accession,
                    "faas_usd": p.faas_usd_per_accession,
                    "hybrid_usd": p.hybrid_usd_per_accession,
                    "winner": "faas" if p.faas_wins else "asg",
                }
                for p in self.points
            ],
            "points": [
                {
                    "scale": p.scale,
                    "asg_makespan_hours": p.asg_makespan_hours,
                    "faas_makespan_hours": p.faas_makespan_hours,
                    "faas_cold_start_share": p.faas_cold_start_share,
                    "faas_cap_reshards": p.faas_cap_reshards,
                }
                for p in self.points
            ],
        }


def run_faas_crossover(
    n_jobs: int = 60,
    *,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    seed: int = 0,
    config: AtlasConfig | None = None,
    faas: FaasAtlasConfig | None = None,
) -> CrossoverResult:
    """Sweep archive scale and compare architectures at each point."""
    from repro.experiments.corpus import CorpusSpec, generate_corpus

    base_jobs = generate_corpus(CorpusSpec(n_runs=n_jobs), rng=seed)
    config = config or AtlasConfig(seed=seed)
    points: list[CrossoverPoint] = []
    for scale in sorted(scales):
        jobs = scale_jobs(base_jobs, scale)
        comparison = compare_architectures(jobs, config, faas=faas)
        asg = comparison.point("asg")
        fp = comparison.point("faas")
        hybrid = comparison.point("hybrid")
        points.append(
            CrossoverPoint(
                scale=scale,
                mean_fastq_mb=sum(j.fastq_bytes for j in jobs)
                / len(jobs)
                / 1e6,
                asg_usd_per_accession=asg.cost_per_accession_usd,
                faas_usd_per_accession=fp.cost_per_accession_usd,
                hybrid_usd_per_accession=hybrid.cost_per_accession_usd,
                asg_makespan_hours=asg.makespan_hours,
                faas_makespan_hours=fp.makespan_hours,
                faas_cold_start_share=fp.cold_start_share,
                faas_cap_reshards=fp.cap_reshards,
            )
        )
    return CrossoverResult(points=points, n_jobs=n_jobs)
