"""JSON export of experiment results.

Downstream tooling (plotting notebooks, CI dashboards, regression
trackers) wants machine-readable results next to the human tables.  Each
exporter flattens one result object into plain-JSON types; a shared
envelope records what produced the numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.atlas import AtlasRunReport
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result


def _envelope(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    import repro

    return {
        "schema": f"repro/{kind}/v1",
        "library_version": repro.__version__,
        "paper": "Kica et al., CLUSTER 2024",
        **payload,
    }


def fig3_to_dict(result: Fig3Result) -> dict[str, Any]:
    """Flatten a Fig. 3 result (per-file rows + aggregates)."""
    return _envelope(
        "fig3",
        {
            "weighted_speedup": result.weighted_speedup,
            "min_speedup": result.min_speedup,
            "mean_mapping_delta": result.mean_mapping_delta,
            "total_hours_r108": result.total_hours_r108,
            "total_hours_r111": result.total_hours_r111,
            "files": [
                {
                    "file_id": r.file_id,
                    "fastq_bytes": r.fastq_bytes,
                    "seconds_r108": r.seconds_r108,
                    "seconds_r111": r.seconds_r111,
                    "speedup": r.speedup,
                    "mapping_rate_r108": r.mapping_rate_r108,
                    "mapping_rate_r111": r.mapping_rate_r111,
                }
                for r in result.rows
            ],
        },
    )


def fig4_to_dict(result: Fig4Result) -> dict[str, Any]:
    """Flatten a Fig. 4 replay (aggregates + terminated-run rows)."""
    savings = result.savings
    return _envelope(
        "fig4",
        {
            "policy": {
                "mapping_threshold": result.policy.mapping_threshold,
                "check_fraction": result.policy.check_fraction,
            },
            "n_runs": savings.n_runs,
            "n_terminated": savings.n_terminated,
            "total_hours_if_full": savings.total_hours_if_full,
            "total_hours_actual": savings.total_hours_actual,
            "hours_saved": savings.hours_saved,
            "saving_fraction": savings.saving_fraction,
            "false_terminations": result.false_terminations,
            "terminated_runs": [
                {
                    "accession": r.accession,
                    "library": r.library,
                    "fastq_bytes": r.fastq_bytes,
                    "terminal_rate": r.terminal_rate,
                    "stop_fraction": r.stop_fraction,
                    "seconds_saved": r.seconds_saved,
                }
                for r in result.terminated_rows
            ],
        },
    )


def atlas_report_to_dict(report: AtlasRunReport) -> dict[str, Any]:
    """Flatten a cloud campaign report (jobs + cost + metrics)."""
    return _envelope(
        "atlas",
        {
            "instance_type": report.instance.name,
            "n_jobs": report.n_jobs,
            "n_terminated": report.n_terminated,
            "makespan_seconds": report.makespan_seconds,
            "star_hours_actual": report.star_hours_actual,
            "star_hours_if_full": report.star_hours_if_full,
            "peak_fleet": report.peak_fleet,
            "mean_utilization": report.mean_utilization,
            "init_overhead_seconds": report.init_overhead_seconds,
            "queue_redeliveries": report.queue_redeliveries,
            "dead_lettered": report.dead_lettered,
            "cost": {
                "total_usd": report.cost.total_usd,
                "compute_usd": report.cost.compute_usd,
                "compute_seconds": report.cost.compute_seconds,
                "n_instances": report.cost.n_instances,
                "n_interrupted": report.cost.n_interrupted,
            },
            "jobs": [
                {
                    "accession": j.accession,
                    "status": j.status.value,
                    "library": j.library.value,
                    "started_at": j.started_at,
                    "finished_at": j.finished_at,
                    "star_seconds": j.star_seconds,
                    "star_seconds_if_full": j.star_seconds_if_full,
                    "stop_fraction": j.stop_fraction,
                    "instance_id": j.instance_id,
                }
                for j in report.jobs
            ],
            "metrics": {
                name: {"times": ts.times, "values": ts.values}
                for name, ts in report.metrics.items()
            },
        },
    )


def write_json(payload: dict[str, Any], path: Path | str) -> Path:
    """Write an exported payload as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
