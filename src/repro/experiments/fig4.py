"""Figure 4: time savings due to early stopping.

Follows the paper's methodology exactly: take the corpus's 1000 runs,
*replay* the early-stopping policy over each run's ``Log.progress.out``
stream (synthesized from its mapping trajectory), and tally where
termination would have happened and how much compute it makes unnecessary
(the figure's yellow bars).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.progress import ProgressRecord
from repro.core.analytics import EarlyStopSavings, RunTiming, compute_savings
from repro.core.atlas import AtlasJob
from repro.core.early_stopping import EarlyStoppingPolicy, replay_policy
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import release_spec
from repro.perf.star_model import StarPerfModel
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table
from repro.util.units import GIB


@dataclass(frozen=True)
class Fig4Row:
    """One run's replay outcome."""

    accession: str
    library: str
    fastq_bytes: float
    terminal_rate: float
    terminated: bool
    stop_fraction: float | None
    star_seconds_full: float
    star_seconds_actual: float

    @property
    def seconds_saved(self) -> float:
        """The yellow bar: compute that early stopping makes unnecessary."""
        return self.star_seconds_full - self.star_seconds_actual


@dataclass
class Fig4Result:
    """Replay results plus the aggregates §III-B quotes."""

    rows: list[Fig4Row]
    policy: EarlyStoppingPolicy

    @property
    def savings(self) -> EarlyStopSavings:
        from repro.reads.library import LibraryType

        timings = [
            RunTiming(
                accession=r.accession,
                library=LibraryType(r.library),
                star_seconds_actual=r.star_seconds_actual,
                star_seconds_if_full=r.star_seconds_full,
                terminated=r.terminated,
            )
            for r in self.rows
        ]
        return compute_savings(timings)

    @property
    def terminated_rows(self) -> list["Fig4Row"]:
        return [r for r in self.rows if r.terminated]

    @property
    def false_terminations(self) -> int:
        """Terminated runs that would actually have passed the final bar."""
        return sum(
            1
            for r in self.terminated_rows
            if r.terminal_rate >= self.policy.mapping_threshold
        )

    def to_table(self, *, max_rows: int = 40) -> str:
        table = Table(
            ["run", "library", "GiB", "final map%", "stopped at", "saved h"],
            title=(
                "Fig. 4 — early-stopping replay "
                f"(threshold {100 * self.policy.mapping_threshold:.0f}% "
                f"at {100 * self.policy.check_fraction:.0f}% of reads)"
            ),
        )
        for r in self.terminated_rows[:max_rows]:
            table.add_row(
                [
                    r.accession,
                    r.library,
                    f"{r.fastq_bytes / GIB:.0f}",
                    f"{100 * r.terminal_rate:.1f}",
                    f"{100 * (r.stop_fraction or 0):.0f}%",
                    f"{r.seconds_saved / 3600:.2f}",
                ]
            )
        return table.render() + "\n\n" + self.savings.to_text()


def run_fig4(
    *,
    spec: CorpusSpec | None = None,
    policy: EarlyStoppingPolicy | None = None,
    star_model: StarPerfModel | None = None,
    rng: int | None = 0,
) -> Fig4Result:
    """Regenerate Figure 4: corpus → progress replay → savings."""
    spec = spec or CorpusSpec()
    policy = policy or EarlyStoppingPolicy()
    model = star_model or StarPerfModel()
    root = ensure_rng(rng)
    jobs = generate_corpus(spec, star_model=model, rng=derive_rng(root, "corpus"))
    noise = derive_rng(root, "runtime-noise")
    release = release_spec(spec.release)

    rows: list[Fig4Row] = []
    for job in jobs:
        records: list[ProgressRecord] = job.trajectory.to_progress_records(
            total_reads=job.n_reads
        )
        terminated, at = replay_policy(policy, records)
        full = model.predict(
            job.fastq_bytes, release, spec.vcpus, rng=noise
        )
        if terminated and at is not None:
            stop_fraction = at.processed_fraction
            actual = full.setup_seconds + stop_fraction * full.full_scan_seconds
        else:
            stop_fraction = None
            actual = full.total_seconds
        rows.append(
            Fig4Row(
                accession=job.accession,
                library=job.library.value,
                fastq_bytes=job.fastq_bytes,
                terminal_rate=job.trajectory.terminal_rate,
                terminated=terminated,
                stop_fraction=stop_fraction,
                star_seconds_full=full.total_seconds,
                star_seconds_actual=actual,
            )
        )
    return Fig4Result(rows=rows, policy=policy)
