"""Figure 3: STAR execution time with indexes from releases 108 vs 111.

Regenerates the per-file bar series and the headline aggregate: 49 FASTQ
files (mean 15.9 GiB, 777 GiB total) aligned on r6a.4xlarge against both
indexes; release 111 is >12× faster on the FASTQ-size-weighted mean with a
<1% mean mapping-rate difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome.ensembl import EnsemblRelease
from repro.perf.star_model import StarPerfModel
from repro.perf.targets import PAPER, PaperTargets
from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import Table
from repro.util.units import GIB


@dataclass(frozen=True)
class Fig3Row:
    """One file's measurements — one pair of bars in the figure."""

    file_id: str
    fastq_bytes: float
    seconds_r108: float
    seconds_r111: float
    mapping_rate_r108: float
    mapping_rate_r111: float

    @property
    def speedup(self) -> float:
        return self.seconds_r108 / self.seconds_r111

    @property
    def mapping_delta(self) -> float:
        return abs(self.mapping_rate_r108 - self.mapping_rate_r111)


@dataclass
class Fig3Result:
    """The full figure: per-file rows plus the aggregates the text quotes."""

    rows: list[Fig3Row]

    @property
    def total_fastq_bytes(self) -> float:
        return sum(r.fastq_bytes for r in self.rows)

    @property
    def mean_fastq_bytes(self) -> float:
        return self.total_fastq_bytes / len(self.rows)

    @property
    def weighted_speedup(self) -> float:
        """Per-file speedup weighted by FASTQ size (the paper's metric)."""
        weights = np.array([r.fastq_bytes for r in self.rows])
        speedups = np.array([r.speedup for r in self.rows])
        return float((weights * speedups).sum() / weights.sum())

    @property
    def min_speedup(self) -> float:
        return min(r.speedup for r in self.rows)

    @property
    def mean_mapping_delta(self) -> float:
        return float(np.mean([r.mapping_delta for r in self.rows]))

    @property
    def total_hours_r108(self) -> float:
        return sum(r.seconds_r108 for r in self.rows) / 3600.0

    @property
    def total_hours_r111(self) -> float:
        return sum(r.seconds_r111 for r in self.rows) / 3600.0

    def to_table(self, *, max_rows: int | None = None) -> str:
        table = Table(
            ["file", "FASTQ GiB", "r108 min", "r111 min", "speedup", "Δmap%"],
            title="Fig. 3 — STAR execution time, index r108 vs r111",
        )
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        for r in rows:
            table.add_row(
                [
                    r.file_id,
                    f"{r.fastq_bytes / GIB:.1f}",
                    f"{r.seconds_r108 / 60:.1f}",
                    f"{r.seconds_r111 / 60:.1f}",
                    f"{r.speedup:.1f}x",
                    f"{100 * r.mapping_delta:.2f}",
                ]
            )
        summary = (
            f"\nfiles={len(self.rows)}  mean={self.mean_fastq_bytes / GIB:.1f} GiB  "
            f"total={self.total_fastq_bytes / GIB:.0f} GiB\n"
            f"total r108={self.total_hours_r108:.1f} h  "
            f"total r111={self.total_hours_r111:.1f} h\n"
            f"weighted mean speedup={self.weighted_speedup:.1f}x  "
            f"mean mapping-rate delta={100 * self.mean_mapping_delta:.2f}%"
        )
        return table.render() + summary


def sample_fig3_file_sizes(
    targets: PaperTargets = PAPER,
    *,
    sigma: float = 0.6,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw the 49 file sizes and rescale to hit the reported mean/total."""
    rng = ensure_rng(rng)
    n = targets.fig3_n_files
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    sizes = raw / raw.mean() * targets.fig3_mean_fastq_bytes
    # match the reported total exactly (mean then deviates <1%)
    return sizes * (targets.fig3_total_fastq_bytes / sizes.sum())


def run_fig3(
    *,
    star_model: StarPerfModel | None = None,
    targets: PaperTargets = PAPER,
    rng: np.random.Generator | int | None = 0,
) -> Fig3Result:
    """Regenerate Figure 3 with the calibrated performance model.

    Mapping rates per release differ by an independent per-file draw below
    1% (the consolidation moves reads between equivalent loci; it barely
    changes how many map — validated at small scale by
    :mod:`repro.experiments.mini_fig3`).
    """
    model = star_model or StarPerfModel()
    rng = ensure_rng(rng)
    sizes = sample_fig3_file_sizes(targets, rng=derive_rng(rng, "sizes"))
    noise_rng = derive_rng(rng, "noise")
    map_rng = derive_rng(rng, "mapping")
    rows: list[Fig3Row] = []
    for i, size in enumerate(sizes):
        t108 = model.predict(
            size, EnsemblRelease.R108, targets.instance_vcpus, rng=noise_rng
        ).total_seconds
        t111 = model.predict(
            size, EnsemblRelease.R111, targets.instance_vcpus, rng=noise_rng
        ).total_seconds
        rate111 = float(np.clip(map_rng.normal(0.88, 0.05), 0.5, 0.99))
        delta = float(map_rng.normal(0.0, 0.003))
        rate108 = float(np.clip(rate111 + delta, 0.5, 0.99))
        rows.append(
            Fig3Row(
                file_id=f"F{i + 1:02d}",
                fastq_bytes=float(size),
                seconds_r108=t108,
                seconds_r111=t111,
                mapping_rate_r108=rate108,
                mapping_rate_r111=rate111,
            )
        )
    return Fig3Result(rows=rows)
