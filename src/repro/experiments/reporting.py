"""One-shot report: every experiment's tables in a single document.

``generate_report`` runs all harnesses (optionally at reduced scale) and
renders a markdown-ish text document mirroring EXPERIMENTS.md's
structure — the artifact a reviewer regenerates to check the repo against
the paper.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass


@dataclass(frozen=True)
class ReportScale:
    """How big the workloads in the report are."""

    corpus_size: int = 1000
    architecture_jobs: int = 120
    ablation_corpus: int = 1000
    mini_reads: int = 400
    hpc_jobs: int = 120

    @classmethod
    def quick(cls) -> "ReportScale":
        """Reduced scale for smoke runs (seconds instead of ~a minute)."""
        return cls(
            corpus_size=200,
            architecture_jobs=40,
            ablation_corpus=200,
            mini_reads=150,
            hpc_jobs=40,
        )


def generate_report(*, seed: int = 0, scale: ReportScale | None = None) -> str:
    """Run every harness and render the consolidated report."""
    from repro.core.hpc import HpcConfig, run_hpc
    from repro.experiments.ablation import run_ablation
    from repro.experiments.architecture import run_architecture_sweep
    from repro.experiments.config_table import memory_fit_matrix, run_config_table
    from repro.experiments.corpus import CorpusSpec, generate_corpus
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig4 import run_fig4
    from repro.experiments.mini_fig3 import run_mini_fig3
    from repro.experiments.pseudo_comparison import (
        run_pseudo_comparison,
        run_transferability,
    )
    from repro.perf.calibration import calibrate
    from repro.perf.targets import summarize

    scale = scale or ReportScale()
    out = io.StringIO()

    def section(title: str) -> None:
        out.write(f"\n\n## {title}\n\n")

    out.write("# Reproduction report — STAR aligner HTC in the cloud "
              "(CLUSTER 2024)\n\n")
    out.write(f"seed={seed}; scales: corpus={scale.corpus_size}, "
              f"architecture={scale.architecture_jobs} jobs\n\n")
    out.write(summarize())
    out.write("\n\n")
    out.write(calibrate().to_text())

    section("Fig. 3 — genome release 108 vs 111")
    out.write(run_fig3(rng=seed).to_table(max_rows=10))

    section("Fig. 4 — early stopping")
    fig4 = run_fig4(spec=CorpusSpec(n_runs=scale.corpus_size), rng=seed)
    out.write(fig4.to_table(max_rows=15))

    section("Test configuration — index sizes per release")
    out.write(run_config_table().to_table())
    out.write("\n\n")
    out.write(memory_fit_matrix())

    section("Mini-Fig. 3 — real-aligner validation")
    out.write(run_mini_fig3(n_reads=scale.mini_reads, seed=42).to_table())

    section("Architecture sweep")
    out.write(
        run_architecture_sweep(
            n_jobs=scale.architecture_jobs, seed=seed
        ).to_table()
    )

    section("Ablation — early-stopping operating point")
    out.write(
        run_ablation(corpus_size=scale.ablation_corpus, seed=seed).to_table()
    )

    section("EXT-PSEUDO — applicability to other aligners")
    out.write(
        run_pseudo_comparison(
            spec=CorpusSpec(n_runs=scale.corpus_size), rng=seed
        ).to_table()
    )
    out.write("\n\n")
    out.write(run_transferability(n_reads=scale.mini_reads, seed=11).to_table())

    section("EXT-HPC — fixed-cluster mode")
    jobs = generate_corpus(CorpusSpec(n_runs=scale.hpc_jobs), rng=seed)
    report = run_hpc(jobs, HpcConfig(n_nodes=8, seed=seed))
    out.write(
        f"jobs={report.n_jobs} terminated={report.n_terminated} "
        f"makespan={report.makespan_seconds / 3600:.2f}h "
        f"node-hours={report.node_hours:.1f} "
        f"STAR-hours={report.star_hours_actual:.1f}\n"
    )

    section("FULL-ATLAS — the §II scope (7216 files / 17 TB), projected")
    from repro.experiments.full_atlas import run_full_atlas

    out.write(
        run_full_atlas(
            n_files=scale.architecture_jobs * 10, fleet=16, seed=seed
        ).to_table()
    )

    out.write("\n")
    return out.getvalue()
