"""Discrete-event simulation engine.

A minimal, deterministic, simpy-flavoured kernel: *processes* are Python
generators that yield awaitables —

* ``Timeout(delay)`` — resume after simulated seconds;
* ``SimEvent`` — resume when someone calls :meth:`SimEvent.succeed`;
* another ``Process`` — resume when it finishes (its return value is sent
  back in).

Determinism: events at equal times fire in schedule order (a monotonically
increasing sequence number breaks ties), so runs are bit-reproducible for
fixed seeds — which the benches rely on.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Timeout:
    """Yield inside a process to sleep ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


class SimEvent:
    """A one-shot event processes can wait on.

    ``succeed(value)`` wakes every waiter with ``value``; succeeding twice
    is an error.  Waiting on an already-succeeded event resumes immediately.
    """

    __slots__ = ("triggered", "value", "_callbacks")

    def __init__(self) -> None:
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def _add_callback(self, cb: Callable[[Any], None]) -> None:
        self._callbacks.append(cb)

    def _add_waiter(self, proc: "Process") -> None:
        sim = proc._sim
        self._callbacks.append(lambda value: sim._schedule_now(proc._resume, value))


class AnyOf:
    """Yield inside a process to wait for the FIRST of several events.

    The process resumes with ``(event, value)`` identifying which fired.
    Used by the worker agent to race a work step against instance
    termination (spot interruption semantics).
    """

    __slots__ = ("events",)

    def __init__(self, *events: SimEvent) -> None:
        if not events:
            raise ValueError("AnyOf needs at least one event")
        self.events = events


class Process:
    """A running generator-process inside a :class:`Simulation`."""

    __slots__ = ("_sim", "_gen", "name", "finished", "result", "_completion")

    def __init__(self, sim: "Simulation", gen: Generator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._completion = SimEvent()

    def _resume(self, send_value: Any = None) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._sim._schedule_at(self._sim.now + yielded.delay, self._resume, None)
        elif isinstance(yielded, SimEvent):
            if yielded.triggered:
                self._sim._schedule_now(self._resume, yielded.value)
            else:
                yielded._add_waiter(self)
        elif isinstance(yielded, AnyOf):
            already = [ev for ev in yielded.events if ev.triggered]
            if already:
                winner = already[0]
                self._sim._schedule_now(self._resume, (winner, winner.value))
            else:
                state = {"fired": False}

                def make_callback(event: SimEvent):
                    def callback(value: Any) -> None:
                        if state["fired"]:
                            return
                        state["fired"] = True
                        self._sim._schedule_now(self._resume, (event, value))

                    return callback

                for ev in yielded.events:
                    ev._add_callback(make_callback(ev))
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._sim._schedule_now(self._resume, yielded.result)
            else:
                yielded._completion._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected Timeout, SimEvent, AnyOf, or Process"
            )

    @property
    def completion(self) -> SimEvent:
        """Event that fires (with the return value) when this process ends."""
        return self._completion


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[Any], None] = field(compare=False)
    arg: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Simulation.call_later`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        """Simulated time at which the event is scheduled to fire."""
        return self._event.time


class Simulation:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._seq = 0
        self._processes: list[Process] = []

    # -- scheduling primitives ------------------------------------------------

    def _schedule_at(self, time: float, callback: Callable, arg: Any = None) -> EventHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        ev = _ScheduledEvent(time=time, seq=self._seq, callback=callback, arg=arg)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return EventHandle(ev)

    def _schedule_now(self, callback: Callable, arg: Any = None) -> EventHandle:
        return self._schedule_at(self.now, callback, arg)

    def call_later(self, delay: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn()`` after ``delay`` simulated seconds (cancellable)."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._schedule_at(self.now + delay, lambda _arg: fn(), None)

    def event(self) -> SimEvent:
        """Create a fresh waitable event."""
        return SimEvent()

    def timeout_event(self, delay: float) -> SimEvent:
        """An event that succeeds after ``delay`` seconds (for AnyOf races)."""
        event = SimEvent()
        self.call_later(delay, lambda: event.succeed(self.now))
        return event

    # -- processes ----------------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register and start a generator as a process (first step runs at now)."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self._schedule_now(proc._resume, None)
        return proc

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; returns False when the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self.now:
                raise AssertionError("event time went backwards")
            self.now = ev.time
            ev.callback(ev.arg)
            return True
        return False

    def run(self, until: float | None = None, *, max_events: int = 10_000_000) -> None:
        """Run until the heap drains or simulated time reaches ``until``.

        ``max_events`` guards against accidental infinite self-scheduling.
        """
        executed = 0
        while self._heap:
            # purge cancelled events before consulting the time bound —
            # step() would otherwise skip past a cancelled head straight into
            # an event beyond `until`
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            if not self.step():
                break
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}; runaway simulation?")
        if until is not None and self.now < until:
            self.now = until

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: start a process, run to completion, return its result."""
        proc = self.process(gen, name)
        self.run()
        if not proc.finished:
            raise RuntimeError(f"process {proc.name!r} did not finish (deadlock?)")
        return proc.result
