"""Worker agent: the per-instance loop of the paper's architecture.

Each EC2 instance runs the same loop (Fig. 2): wait for boot → *init phase*
(download the pre-computed STAR index from S3 and load it into shared
memory) → poll the SQS queue → run the pipeline for each message → delete
the message → repeat; stop after the queue stays empty, or when a spot
interruption warning arrives (the undeleted message then returns to the
queue via its visibility timeout — at-least-once processing).

The actual *work* (init and per-message pipeline) is injected as generator
functions so this module stays genomics-free; :mod:`repro.core.atlas`
supplies the Transcriptomics Atlas behaviour.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cloud.ec2 import EC2Instance
from repro.cloud.events import AnyOf, SimEvent, Simulation, Timeout
from repro.cloud.sqs import Message, SqsQueue

if TYPE_CHECKING:
    from repro.core.resilience import RetryPolicy
    from repro.util.rng import RngStream

#: init hook: ``init_work(agent)`` → generator yielding sim waits
InitWork = Callable[["WorkerAgent"], Generator]
#: message hook: ``process_message(agent, message)`` → generator returning a result
MessageWork = Callable[["WorkerAgent", Message], Generator]


@dataclass(frozen=True)
class StageMark:
    """Yielded by agent work to label the simulated time that follows.

    All waits between this mark and the next one (or the work's end) are
    charged to ``stage`` in :attr:`AgentStats.stage_seconds`.  Yielding a
    mark costs no simulated time, so existing work generators that never
    mark stages are unaffected.
    """

    stage: str


@dataclass
class AgentStats:
    """Utilization accounting for one agent."""

    init_seconds: float = 0.0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    jobs_completed: int = 0
    jobs_interrupted: int = 0
    jobs_failed: int = 0
    jobs_retried: int = 0
    init_retries: int = 0
    #: interrupted jobs that were drained gracefully (released back to the
    #: queue inside the warning window, not lost to a hard kill)
    jobs_drained: int = 0
    #: busy seconds thrown away by interruptions (the aborted job restarts
    #: from scratch on another instance)
    work_lost_seconds: float = 0.0
    #: visibility-timeout seconds other workers did NOT have to wait
    #: because a drain released the message early
    work_saved_seconds: float = 0.0
    #: redelivered jobs this agent resumed from an S3-replicated journal
    #: checkpoint instead of restarting from scratch
    jobs_adopted: int = 0
    #: simulated STAR seconds the adopted checkpoints made redundant
    #: (work the dead holder completed that this agent did not redo)
    work_recovered_seconds: float = 0.0
    #: simulated seconds per work stage, fed by :class:`StageMark` yields
    #: (e.g. ``{"prefetch": ..., "star": ...}``); empty if the work never
    #: marks stages
    stage_seconds: dict[str, float] = field(default_factory=dict)
    stopped_at: float | None = None
    stop_reason: str = ""

    @property
    def utilization(self) -> float:
        """busy / (init + busy + idle); 0 for an agent that never worked."""
        denom = self.init_seconds + self.busy_seconds + self.idle_seconds
        return self.busy_seconds / denom if denom > 0 else 0.0


class WorkerAgent:
    """One instance's control loop, driven as a simulation process."""

    def __init__(
        self,
        sim: Simulation,
        instance: EC2Instance,
        queue: SqsQueue,
        *,
        init_work: InitWork,
        process_message: MessageWork,
        poll_interval: float = 20.0,
        max_idle_polls: int = 3,
        heartbeat: bool = True,
        on_stop: Callable[["WorkerAgent"], None] | None = None,
        retry: "RetryPolicy | None" = None,
        retry_rng: "RngStream | None" = None,
        on_failure: Callable[["WorkerAgent", Message, BaseException], None]
        | None = None,
        drain_on_warning: bool = True,
        on_drain: Callable[["WorkerAgent", Message], None] | None = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if max_idle_polls < 1:
            raise ValueError("max_idle_polls must be >= 1")
        self.sim = sim
        self.instance = instance
        self.queue = queue
        self.init_work = init_work
        self.process_message = process_message
        self.poll_interval = poll_interval
        self.max_idle_polls = max_idle_polls
        self.heartbeat = heartbeat
        self.on_stop = on_stop
        #: retry policy for exceptions raised by ``process_message``; the
        #: same :class:`~repro.core.resilience.RetryPolicy` type the local
        #: pipeline uses — backoff delays become simulated waits here
        self.retry = retry
        self.retry_rng = retry_rng
        self.on_failure = on_failure
        #: react to the 120 s spot notice: abort the in-flight job and
        #: release its message immediately instead of working until the
        #: kill and relying on the visibility timeout
        self.drain_on_warning = drain_on_warning
        self.on_drain = on_drain
        self.stats = AgentStats()
        self.results: list[Any] = []
        #: attempt number of the message currently being processed (1-based);
        #: ``process_message`` may read it to report retries in its records
        self.current_attempt = 0

    # -- helpers -----------------------------------------------------------

    def _interruptible(self, gen: Generator) -> Generator:
        """Drive ``gen``, aborting on instance death or a drain request.

        Every wait the work yields is raced against the instance's
        termination event (so a spot kill interrupts a long STAR run *at
        the kill time*, not at the run's natural end) and — when
        ``drain_on_warning`` is set — against the interruption warning,
        so the agent reacts within the 120 s notice instead of at the
        kill.

        Returns ``(status, value)`` where status is ``"done"``,
        ``"drained"`` (warning received, instance still alive — the
        caller can still make API calls like releasing the message), or
        ``"interrupted"`` (hard kill; the process is gone).
        """
        terminated = self.instance.terminated_event
        warning = self.instance.interruption_warning
        stage: str | None = None
        stage_started = self.sim.now

        def charge_stage() -> None:
            if stage is not None:
                seconds = self.sim.now - stage_started
                totals = self.stats.stage_seconds
                totals[stage] = totals.get(stage, 0.0) + seconds

        try:
            item = gen.send(None)
        except StopIteration as stop:
            return ("done", stop.value)
        while True:
            if isinstance(item, StageMark):
                # zero-cost label switch: close the running stage, open
                # the next, and ask the work for its first real wait
                charge_stage()
                stage = item.stage
                stage_started = self.sim.now
                try:
                    item = gen.send(None)
                except StopIteration as stop:
                    charge_stage()
                    return ("done", stop.value)
                continue
            if isinstance(item, Timeout):
                wait_event = self.sim.timeout_event(item.delay)
            elif isinstance(item, SimEvent):
                wait_event = item
            else:
                raise TypeError(
                    f"agent work yielded {type(item).__name__}; expected "
                    "StageMark, Timeout, or SimEvent"
                )
            race = [wait_event, terminated]
            if self.drain_on_warning and not warning.triggered:
                race.append(warning)
            winner, value = yield AnyOf(*race)
            if winner is terminated or not self.instance.is_running:
                gen.close()
                charge_stage()
                return ("interrupted", None)
            if self.interruption_pending:
                gen.close()
                charge_stage()
                return ("drained" if self.drain_on_warning else "interrupted", None)
            try:
                item = gen.send(value)
            except StopIteration as stop:
                charge_stage()
                return ("done", stop.value)

    @property
    def interruption_pending(self) -> bool:
        """A spot interruption warning has been received."""
        return self.instance.interruption_warning.triggered

    def _start_heartbeat(self, receipt: str) -> dict:
        """Keep the in-flight message invisible while we work on it.

        The standard long-job SQS pattern: extend the message's visibility
        every half-timeout so it is not redelivered while still being
        processed (e.g. a multi-hour STAR run against the r108 index).
        Implemented as a cancellable timer chain (not a process) so an
        armed-but-unneeded tick never extends the simulation.  Stop via
        :meth:`_stop_heartbeat`; a stale receipt stops it too.
        """
        state: dict = {"active": self.heartbeat, "handle": None}
        if not self.heartbeat:
            return state
        timeout = self.queue.visibility_timeout
        period = timeout / 2.0

        def tick() -> None:
            if not state["active"] or not self.instance.is_running:
                return
            if not self.queue.change_visibility(receipt, timeout):
                return  # receipt stale: job finished or was released
            state["handle"] = self.sim.call_later(period, tick)

        state["handle"] = self.sim.call_later(period, tick)
        return state

    @staticmethod
    def _stop_heartbeat(state: dict) -> None:
        state["active"] = False
        if state.get("handle") is not None:
            state["handle"].cancel()

    def _with_retry(
        self, make_work: Callable[[], Generator], *, counter: str
    ) -> Generator:
        """Drive fresh ``make_work()`` generators under the retry policy.

        Exceptions raised by the work are retried with the policy's
        backoff, spent as *simulated* waits (raced against termination
        like any other wait, so a spot kill during backoff still
        interrupts).  Permanent faults and exhausted budgets return
        ``("failed", exc)``; ``counter`` names the :class:`AgentStats`
        field that tallies retries.  The heartbeat (when one is running)
        survives retries because the receipt is unchanged.
        """
        terminated = self.instance.terminated_event
        attempt = 0
        while True:
            attempt += 1
            self.current_attempt = attempt
            try:
                return (yield from self._interruptible(make_work()))
            except Exception as exc:
                from repro.core.resilience import PermanentFault

                if (
                    self.retry is None
                    or isinstance(exc, PermanentFault)
                    or not self.retry.should_retry(attempt)
                ):
                    return ("failed", exc)
                setattr(
                    self.stats, counter, getattr(self.stats, counter) + 1
                )
                delay = self.retry.delay_for(attempt, self.retry_rng)
                if delay > 0:
                    warning = self.instance.interruption_warning
                    race = [self.sim.timeout_event(delay), terminated]
                    if self.drain_on_warning and not warning.triggered:
                        race.append(warning)
                    winner, _ = yield AnyOf(*race)
                    if winner is terminated or not self.instance.is_running:
                        return ("interrupted", None)
                    if self.interruption_pending:
                        return (
                            "drained" if self.drain_on_warning else "interrupted",
                            None,
                        )

    # -- the loop -------------------------------------------------------------

    def run(self) -> Generator:
        """The agent process (register with ``sim.process(agent.run())``)."""
        if not self.instance.running_event.triggered:
            yield self.instance.running_event
        if not self.instance.is_running:
            self._stopped("terminated before boot completed")
            return self.stats

        init_started = self.sim.now
        status, _ = yield from self._with_retry(
            lambda: self.init_work(self), counter="init_retries"
        )
        self.stats.init_seconds = self.sim.now - init_started
        if status in ("interrupted", "drained"):
            self._stopped("interrupted during init")
            return self.stats
        if status == "failed":
            # the instance can't become useful (e.g. the index download
            # keeps failing); stop it and let the ASG replace the capacity
            self._stopped("init failed")
            return self.stats

        idle_polls = 0
        while self.instance.is_running:
            if self.interruption_pending:
                self._stopped("spot interruption warning")
                return self.stats
            message = self.queue.receive()
            if message is None:
                idle_polls += 1
                if idle_polls >= self.max_idle_polls and self.queue.is_drained:
                    self._stopped("queue drained")
                    return self.stats
                idle_started = self.sim.now
                yield Timeout(self.poll_interval)
                self.stats.idle_seconds += self.sim.now - idle_started
                continue
            idle_polls = 0
            busy_started = self.sim.now
            receipt = message.receipt_handle
            heartbeat_state = self._start_heartbeat(receipt)
            status, result = yield from self._with_retry(
                lambda: self.process_message(self, message),
                counter="jobs_retried",
            )
            self._stop_heartbeat(heartbeat_state)
            self.stats.busy_seconds += self.sim.now - busy_started
            if status in ("interrupted", "drained"):
                # Either way the partial work restarts from scratch
                # elsewhere, so the busy time so far is lost...
                self.stats.work_lost_seconds += self.sim.now - busy_started
                if status == "drained" and receipt is not None:
                    # ...but a graceful drain releases the message NOW
                    # (ChangeMessageVisibility(0)), saving other workers
                    # the rest of the visibility timeout.  A hard kill
                    # cannot make that call — its message comes back only
                    # when the visibility timeout expires.
                    saved = self.queue.release(receipt)
                    if saved is not None:
                        self.stats.work_saved_seconds += saved
                    self.stats.jobs_drained += 1
                    if self.on_drain is not None:
                        self.on_drain(self, message)
                self.stats.jobs_interrupted += 1
                self._stopped("spot interruption mid-job")
                return self.stats
            if status == "failed":
                # Permanent fault or exhausted retry budget: this job will
                # fail identically anywhere, so delete it (don't let it
                # poison the queue via redelivery) and keep polling.
                self.queue.delete(receipt)
                self.stats.jobs_failed += 1
                if self.on_failure is not None:
                    self.on_failure(self, message, result)
                continue
            self.queue.delete(receipt)
            self.stats.jobs_completed += 1
            self.results.append(result)

        self._stopped("instance terminated")
        return self.stats

    def _stopped(self, reason: str) -> None:
        self.stats.stopped_at = self.sim.now
        self.stats.stop_reason = reason
        if self.on_stop is not None:
            self.on_stop(self)
