"""S3 model: buckets of byte-accounted objects.

Stores object metadata (and optional payloads for result inspection);
transfer *times* are computed by the caller from
:class:`repro.perf.transfer.TransferModel`, keeping this module a pure
data service.  Request/byte counters feed the cost model.

Two behaviours the durability layer (:mod:`repro.core.replication`)
relies on:

* **Preconditions** — ``put(..., if_none_match="*")`` models the real
  S3 ``If-None-Match`` conditional write: the put fails with
  :class:`PreconditionFailed` when the key already exists.  Lease
  creation uses this so two would-be holders cannot both "create" the
  lease object.

* **Durable roots** — a bucket created with ``root=`` persists every
  object (JSON-serializable payloads only) to that directory with an
  atomic tmp-file + ``os.replace`` publish, and a fresh process opening
  the same root sees the stored objects.  This stands in for S3's
  cross-instance durability: a SIGKILLed "instance" loses its memory
  and local filesystem, but objects it had put to the durable bucket
  survive for another instance to adopt.
"""

from __future__ import annotations

import json
import os
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.util.validation import check_non_negative


class PreconditionFailed(RuntimeError):
    """A conditional ``put`` lost: the key already holds an object."""

    def __init__(self, bucket: str, key: str) -> None:
        self.bucket = bucket
        self.key = key
        super().__init__(
            f"s3://{bucket}/{key} already exists (If-None-Match failed)"
        )


@dataclass(frozen=True)
class S3Object:
    """One stored object's metadata."""

    key: str
    size_bytes: float
    stored_at: float
    payload: Any = field(default=None, compare=False)


class S3Bucket:
    """A named bucket, optionally persisted under a durable root."""

    def __init__(self, name: str, *, root: Path | str | None = None) -> None:
        if not name:
            raise ValueError("bucket name must be non-empty")
        self.name = name
        self.root = Path(root) / name if root is not None else None
        self._objects: dict[str, S3Object] = {}
        self.put_count = 0
        self.get_count = 0
        #: puts that replaced an existing object (silent-overwrite audit)
        self.overwrites = 0
        self.bytes_in = 0.0
        self.bytes_out = 0.0
        #: open handles for direct-write (``atomic=False``) hot objects
        self._direct_handles: dict[str, Any] = {}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load_root()

    # -- durable-root plumbing ---------------------------------------------

    def _object_path(self, key: str) -> Path:
        """Filesystem-safe path for one key (quote defeats separators)."""
        assert self.root is not None
        return self.root / urllib.parse.quote(key, safe="")

    def _load_root(self) -> None:
        """Attach to objects a previous process persisted under the root."""
        assert self.root is not None
        for entry in self.root.iterdir():
            if not entry.is_file():
                continue
            try:
                stored = json.loads(entry.read_text(encoding="utf-8"))
            except ValueError:
                continue  # torn write from a killed process: never published
            self._objects[stored["key"]] = S3Object(
                key=stored["key"],
                size_bytes=stored["size_bytes"],
                stored_at=stored["stored_at"],
                payload=stored.get("payload"),
            )

    def _persist(self, obj: S3Object, *, atomic: bool = True) -> None:
        """Publish one object to the durable root.

        ``atomic=False`` skips the tmp-file + rename dance and writes the
        final path directly: a crash mid-write leaves a torn JSON file
        that :meth:`_load_root` discards, which callers opt into for
        high-churn objects whose loss is tolerated (a replicated
        journal's tail) in exchange for half the file operations.
        """
        path = self._object_path(obj.key)
        blob = json.dumps(
            {
                "key": obj.key,
                "size_bytes": obj.size_bytes,
                "stored_at": obj.stored_at,
                "payload": obj.payload,
            }
        )
        if not atomic:
            # these objects are overwritten constantly, so keep the file
            # open across puts — the open() per write would otherwise
            # dominate the replication cost
            fh = self._direct_handles.get(obj.key)
            if fh is None or fh.closed:
                fh = open(path, "w", encoding="utf-8")
                self._direct_handles[obj.key] = fh
            fh.seek(0)
            fh.write(blob)
            fh.truncate()
            fh.flush()
            return
        stale = self._direct_handles.pop(obj.key, None)
        if stale is not None:
            stale.close()  # the rename below orphans its inode
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)

    # -- object API --------------------------------------------------------

    def put(
        self,
        key: str,
        size_bytes: float,
        *,
        now: float,
        payload: Any = None,
        if_none_match: str | None = None,
        atomic: bool = True,
    ) -> S3Object:
        """Store (or overwrite) an object.

        ``if_none_match="*"`` makes the put conditional on the key not
        existing — the only If-None-Match form S3 supports — raising
        :class:`PreconditionFailed` instead of overwriting.  ``atomic``
        is forwarded to the durable-root persist (see :meth:`_persist`).
        """
        check_non_negative("size_bytes", size_bytes)
        if if_none_match is not None:
            if if_none_match != "*":
                raise ValueError('if_none_match only supports "*"')
            if key in self._objects:
                raise PreconditionFailed(self.name, key)
        if key in self._objects:
            self.overwrites += 1
        obj = S3Object(key=key, size_bytes=size_bytes, stored_at=now, payload=payload)
        self._objects[key] = obj
        if self.root is not None:
            self._persist(obj, atomic=atomic)
        self.put_count += 1
        self.bytes_in += size_bytes
        return obj

    def get(self, key: str) -> S3Object:
        """Fetch object metadata+payload; KeyError when missing."""
        if key not in self._objects:
            raise KeyError(f"s3://{self.name}/{key} does not exist")
        obj = self._objects[key]
        self.get_count += 1
        self.bytes_out += obj.size_bytes
        return obj

    def head(self, key: str) -> S3Object | None:
        """Metadata without transfer accounting (like HeadObject)."""
        return self._objects.get(key)

    def delete(self, key: str) -> bool:
        """Remove an object; False when it was absent (idempotent)."""
        existed = self._objects.pop(key, None) is not None
        fh = self._direct_handles.pop(key, None)
        if fh is not None:
            fh.close()
        if existed and self.root is not None:
            self._object_path(key).unlink(missing_ok=True)
        return existed

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def keys(self, prefix: str = "") -> list[str]:
        """List keys under a prefix, sorted (like ListObjectsV2)."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    @property
    def total_bytes(self) -> float:
        return sum(o.size_bytes for o in self._objects.values())

    @property
    def object_count(self) -> int:
        return len(self._objects)


class S3Service:
    """Bucket registry; ``root`` makes every bucket durable (see above)."""

    def __init__(self, *, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._buckets: dict[str, S3Bucket] = {}

    def create_bucket(self, name: str) -> S3Bucket:
        if name in self._buckets:
            raise ValueError(f"bucket {name!r} already exists")
        bucket = S3Bucket(name, root=self.root)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> S3Bucket:
        if name not in self._buckets:
            raise KeyError(f"bucket {name!r} does not exist")
        return self._buckets[name]

    def buckets(self) -> list[str]:
        return sorted(self._buckets)
