"""S3 model: buckets of byte-accounted objects.

Stores object metadata (and optional payloads for result inspection);
transfer *times* are computed by the caller from
:class:`repro.perf.transfer.TransferModel`, keeping this module a pure
data service.  Request/byte counters feed the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class S3Object:
    """One stored object's metadata."""

    key: str
    size_bytes: float
    stored_at: float
    payload: Any = field(default=None, compare=False)


class S3Bucket:
    """A named bucket."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("bucket name must be non-empty")
        self.name = name
        self._objects: dict[str, S3Object] = {}
        self.put_count = 0
        self.get_count = 0
        self.bytes_in = 0.0
        self.bytes_out = 0.0

    def put(self, key: str, size_bytes: float, *, now: float, payload: Any = None) -> S3Object:
        """Store (or overwrite) an object."""
        check_non_negative("size_bytes", size_bytes)
        obj = S3Object(key=key, size_bytes=size_bytes, stored_at=now, payload=payload)
        self._objects[key] = obj
        self.put_count += 1
        self.bytes_in += size_bytes
        return obj

    def get(self, key: str) -> S3Object:
        """Fetch object metadata+payload; KeyError when missing."""
        if key not in self._objects:
            raise KeyError(f"s3://{self.name}/{key} does not exist")
        obj = self._objects[key]
        self.get_count += 1
        self.bytes_out += obj.size_bytes
        return obj

    def head(self, key: str) -> S3Object | None:
        """Metadata without transfer accounting (like HeadObject)."""
        return self._objects.get(key)

    def delete(self, key: str) -> bool:
        """Remove an object; False when it was absent (idempotent)."""
        return self._objects.pop(key, None) is not None

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def keys(self, prefix: str = "") -> list[str]:
        """List keys under a prefix, sorted (like ListObjectsV2)."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    @property
    def total_bytes(self) -> float:
        return sum(o.size_bytes for o in self._objects.values())

    @property
    def object_count(self) -> int:
        return len(self._objects)


class S3Service:
    """Bucket registry."""

    def __init__(self) -> None:
        self._buckets: dict[str, S3Bucket] = {}

    def create_bucket(self, name: str) -> S3Bucket:
        if name in self._buckets:
            raise ValueError(f"bucket {name!r} already exists")
        bucket = S3Bucket(name)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> S3Bucket:
        if name not in self._buckets:
            raise KeyError(f"bucket {name!r} does not exist")
        return self._buckets[name]

    def buckets(self) -> list[str]:
        return sorted(self._buckets)
