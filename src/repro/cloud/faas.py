"""FaaS model: Lambda-style short-lived functions with real-world limits.

The authors' follow-up paper ("Serverless Approach to Running
Resource-Intensive STAR Aligner") replaces the long-lived EC2 workers of
the source paper with functions-as-a-service.  The economics of that
trade hinge on exactly the constraints this module simulates:

* **Cold vs. warm starts** — a function container that served an
  invocation stays warm for a keep-alive window; invoking with no warm
  container available pays ``cold_start_seconds`` of extra latency
  (loading a genome index into a fresh sandbox is the expensive part).
* **Memory-tiered pricing** — compute is billed in GB-seconds
  (``memory_mb / 1024 × billed seconds``) plus a flat per-request fee,
  mirroring Lambda's price sheet.  More memory also means more vCPU in
  real FaaS; the caller models that in its duration estimates.
* **Execution cap** — invocations running past
  ``max_execution_seconds`` (15 minutes by default) are killed; the
  wasted compute is still billed.  Work units must be sized to fit.
* **Payload limits** — request and response bodies are capped
  (~6 MB synchronous-invoke limit); oversized shards must be split.
* **Concurrency throttling** — in-flight invocations above
  ``max_concurrency`` are rejected with the retryable
  :class:`TooManyRequests`, the FaaS analogue of SQS redelivery.

Like :mod:`repro.cloud.s3`, this is a pure data/accounting service: the
caller supplies ``now`` timestamps and modeled durations, so the same
service drives both the discrete-event campaign and the in-process
:class:`~repro.align.backend.FaasAlignerBackend` deterministically.

Invocation is two-phase — :meth:`FaasFunction.invoke` admits the request
(payload + concurrency checks, warm-container assignment) and
:meth:`FaasFunction.complete` settles it (cap + response checks,
billing, container return) — because the caller computes the work
*between* the phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "ExecutionCapExceeded",
    "FAAS_USD_PER_GB_SECOND",
    "FAAS_USD_PER_REQUEST",
    "FaasBill",
    "FaasError",
    "FaasFunction",
    "FaasInvocation",
    "FaasLimits",
    "FaasService",
    "FunctionCrashed",
    "PayloadTooLarge",
    "TooManyRequests",
]

#: Lambda x86 compute price (USD per GB-second)
FAAS_USD_PER_GB_SECOND = 0.0000166667
#: Lambda request price (USD per invocation; $0.20 per million)
FAAS_USD_PER_REQUEST = 0.0000002


class FaasError(RuntimeError):
    """Base of FaaS service failures; carries the function name."""

    #: whether a retry (possibly after backoff) can clear the failure
    retryable = False

    def __init__(self, function: str, detail: str) -> None:
        self.function = function
        super().__init__(f"faas function {function!r}: {detail}")


class TooManyRequests(FaasError):
    """Concurrency limit hit — retry after backoff (throttling is
    transient by definition: in-flight invocations will drain)."""

    retryable = True

    def __init__(self, function: str, in_flight: int, limit: int) -> None:
        self.in_flight = in_flight
        self.limit = limit
        super().__init__(
            function, f"throttled at {in_flight}/{limit} concurrent invocations"
        )


class PayloadTooLarge(FaasError):
    """Request or response body exceeds the service limit.

    Not retryable as-is: the same payload will always be rejected.  The
    caller must split the work unit (see the backend's re-shard path).
    """

    def __init__(
        self, function: str, direction: str, size_bytes: int, limit: int
    ) -> None:
        self.direction = direction
        self.size_bytes = size_bytes
        self.limit = limit
        super().__init__(
            function,
            f"{direction} payload of {size_bytes} bytes exceeds the "
            f"{limit}-byte limit",
        )


class ExecutionCapExceeded(FaasError):
    """The invocation ran past the execution cap and was killed.

    The compute up to the cap is billed (real Lambda bills timeouts);
    retrying the same work unit will time out again, so the caller must
    split it.
    """

    def __init__(self, function: str, duration: float, cap: float) -> None:
        self.duration = duration
        self.cap = cap
        super().__init__(
            function,
            f"invocation needed {duration:.1f}s but the cap is {cap:.0f}s",
        )


class FunctionCrashed(FaasError):
    """The sandbox died mid-execution (chaos injection).

    Retryable: a fresh invocation of the same payload succeeds.  The
    wasted compute is billed, matching a real OOM-killed or
    infrastructure-failed invocation.
    """

    retryable = True

    def __init__(self, function: str, seq: int) -> None:
        self.seq = seq
        super().__init__(function, f"invocation #{seq} crashed mid-execution")


@dataclass(frozen=True)
class FaasLimits:
    """Service limits, defaulted to AWS Lambda's published values."""

    #: hard execution cap per invocation (Lambda: 15 minutes)
    max_execution_seconds: float = 900.0
    #: synchronous request payload cap (Lambda: 6 MB)
    max_request_bytes: int = 6 * 1024 * 1024
    #: synchronous response payload cap (Lambda: 6 MB)
    max_response_bytes: int = 6 * 1024 * 1024
    #: account-level concurrent-execution limit
    max_concurrency: int = 1000
    #: how long an idle container stays warm
    keep_alive_seconds: float = 600.0

    def __post_init__(self) -> None:
        check_positive("max_execution_seconds", self.max_execution_seconds)
        check_positive("max_request_bytes", self.max_request_bytes)
        check_positive("max_response_bytes", self.max_response_bytes)
        check_positive("max_concurrency", self.max_concurrency)
        check_non_negative("keep_alive_seconds", self.keep_alive_seconds)


@dataclass
class FaasInvocation:
    """One admitted invocation, open until :meth:`FaasFunction.complete`."""

    function: str
    seq: int
    started_at: float
    cold: bool
    request_bytes: int
    open: bool = True

    @property
    def cold_start_seconds(self) -> float:
        """Init latency this invocation pays (0 when warm)."""
        return 0.0 if not self.cold else self._cold_start

    _cold_start: float = field(default=0.0, repr=False)


@dataclass(frozen=True)
class FaasBill:
    """Roll-up of everything a service (or one function) charged."""

    requests: int
    gb_seconds: float
    request_usd: float
    compute_usd: float

    @property
    def total_usd(self) -> float:
        return self.request_usd + self.compute_usd


class FaasFunction:
    """One deployed function: a memory tier, a warm-container pool, and
    the accounting for every invocation it served."""

    def __init__(
        self,
        name: str,
        *,
        memory_mb: int,
        cold_start_seconds: float,
        limits: FaasLimits,
    ) -> None:
        if not name:
            raise ValueError("function name must be non-empty")
        check_positive("memory_mb", memory_mb)
        check_non_negative("cold_start_seconds", cold_start_seconds)
        self.name = name
        self.memory_mb = memory_mb
        self.cold_start_seconds = cold_start_seconds
        self.limits = limits
        #: expiry times of idle warm containers (a multiset, kept sorted)
        self._warm: list[float] = []
        self.in_flight = 0
        self._seq = 0
        self._armed_crashes = 0
        self._armed_throttles = 0
        # -- counters --------------------------------------------------
        self.invocations = 0
        self.cold_starts = 0
        self.warm_starts = 0
        self.throttles = 0
        self.crashes = 0
        self.cap_exceeded = 0
        self.billed_seconds = 0.0
        self.request_bytes_total = 0
        self.response_bytes_total = 0

    # -- chaos -------------------------------------------------------------

    def fail_next(self, times: int = 1) -> None:
        """Arm the next ``times`` completions to crash mid-execution."""
        if times < 1:
            raise ValueError("times must be >= 1")
        self._armed_crashes += times

    def throttle_next(self, times: int = 1) -> None:
        """Arm the next ``times`` invokes to throttle regardless of load.

        Chaos hook: real throttling needs genuinely concurrent traffic,
        which an in-process caller cannot generate — this lets tests
        exercise the retry-on-429 path deterministically.
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        self._armed_throttles += times

    # -- warm pool ---------------------------------------------------------

    def warm_count(self, now: float) -> int:
        """Idle containers still within their keep-alive window."""
        self._expire(now)
        return len(self._warm)

    def _expire(self, now: float) -> None:
        self._warm = [t for t in self._warm if t >= now]

    # -- invocation lifecycle ----------------------------------------------

    def invoke(self, request_bytes: int, *, now: float) -> FaasInvocation:
        """Admit one invocation (phase 1 of 2).

        Raises :class:`PayloadTooLarge` for an oversized request and
        :class:`TooManyRequests` at the concurrency limit; neither
        counts as an invocation (the service rejected it at the door,
        like a 413/429).
        """
        check_non_negative("request_bytes", request_bytes)
        if request_bytes > self.limits.max_request_bytes:
            raise PayloadTooLarge(
                self.name, "request", request_bytes, self.limits.max_request_bytes
            )
        if self._armed_throttles > 0 or self.in_flight >= self.limits.max_concurrency:
            if self._armed_throttles > 0:
                self._armed_throttles -= 1
            self.throttles += 1
            raise TooManyRequests(
                self.name, self.in_flight, self.limits.max_concurrency
            )
        self._expire(now)
        cold = not self._warm
        if cold:
            self.cold_starts += 1
        else:
            # warm routing reuses the container closest to expiry, which
            # maximizes the number of containers that stay warm
            self._warm.pop(0)
            self.warm_starts += 1
        self.in_flight += 1
        self._seq += 1
        self.invocations += 1
        self.request_bytes_total += request_bytes
        inv = FaasInvocation(
            function=self.name,
            seq=self._seq,
            started_at=now,
            cold=cold,
            request_bytes=request_bytes,
        )
        inv._cold_start = self.cold_start_seconds
        return inv

    def complete(
        self,
        invocation: FaasInvocation,
        duration_seconds: float,
        response_bytes: int,
        *,
        now: float,
    ) -> float:
        """Settle one invocation (phase 2 of 2); returns billed seconds.

        ``duration_seconds`` is the modeled execution time (excluding
        the cold start, which real FaaS does not bill for managed
        runtimes).  Raises, in precedence order:

        * :class:`FunctionCrashed` when a chaos crash is armed — the
          full duration is billed and the container is destroyed;
        * :class:`ExecutionCapExceeded` when the duration passes the
          cap — compute up to the cap is billed;
        * :class:`PayloadTooLarge` for an oversized response — the
          function did all its work (full bill) but the result never
          reached the caller.
        """
        if not invocation.open:
            raise ValueError(f"invocation #{invocation.seq} already completed")
        check_non_negative("duration_seconds", duration_seconds)
        check_non_negative("response_bytes", response_bytes)
        invocation.open = False
        self.in_flight -= 1
        if self._armed_crashes > 0:
            self._armed_crashes -= 1
            self.crashes += 1
            # the sandbox died partway through: bill what ran, no warm
            # container survives
            self.billed_seconds += duration_seconds
            raise FunctionCrashed(self.name, invocation.seq)
        if duration_seconds > self.limits.max_execution_seconds:
            self.cap_exceeded += 1
            self.billed_seconds += self.limits.max_execution_seconds
            # the runtime killed the handler but the container is reusable
            self._warm.append(now + self.limits.keep_alive_seconds)
            self._warm.sort()
            raise ExecutionCapExceeded(
                self.name, duration_seconds, self.limits.max_execution_seconds
            )
        self.billed_seconds += duration_seconds
        self._warm.append(now + self.limits.keep_alive_seconds)
        self._warm.sort()
        if response_bytes > self.limits.max_response_bytes:
            raise PayloadTooLarge(
                self.name,
                "response",
                response_bytes,
                self.limits.max_response_bytes,
            )
        self.response_bytes_total += response_bytes
        return duration_seconds

    # -- billing -----------------------------------------------------------

    @property
    def gb_seconds(self) -> float:
        return (self.memory_mb / 1024.0) * self.billed_seconds

    @property
    def cold_start_share(self) -> float:
        """Fraction of invocations that paid a cold start."""
        if self.invocations == 0:
            return 0.0
        return self.cold_starts / self.invocations

    def bill(self) -> FaasBill:
        return FaasBill(
            requests=self.invocations,
            gb_seconds=self.gb_seconds,
            request_usd=self.invocations * FAAS_USD_PER_REQUEST,
            compute_usd=self.gb_seconds * FAAS_USD_PER_GB_SECOND,
        )


class FaasService:
    """Function registry sharing one set of :class:`FaasLimits`."""

    def __init__(self, *, limits: FaasLimits | None = None) -> None:
        self.limits = limits if limits is not None else FaasLimits()
        self._functions: dict[str, FaasFunction] = {}

    def create_function(
        self,
        name: str,
        *,
        memory_mb: int = 3008,
        cold_start_seconds: float = 2.0,
    ) -> FaasFunction:
        if name in self._functions:
            raise ValueError(f"function {name!r} already exists")
        fn = FaasFunction(
            name,
            memory_mb=memory_mb,
            cold_start_seconds=cold_start_seconds,
            limits=self.limits,
        )
        self._functions[name] = fn
        return fn

    def function(self, name: str) -> FaasFunction:
        if name not in self._functions:
            raise KeyError(f"function {name!r} does not exist")
        return self._functions[name]

    def functions(self) -> list[str]:
        return sorted(self._functions)

    def bill(self) -> FaasBill:
        """Aggregate bill across every function."""
        requests = sum(f.invocations for f in self._functions.values())
        gb_seconds = sum(f.gb_seconds for f in self._functions.values())
        return FaasBill(
            requests=requests,
            gb_seconds=gb_seconds,
            request_usd=requests * FAAS_USD_PER_REQUEST,
            compute_usd=gb_seconds * FAAS_USD_PER_GB_SECOND,
        )
