"""EC2 model: instance types, markets, lifecycle, spot interruptions.

The catalog covers the memory-optimized r6a family the paper uses (the
test configuration is r6a.4xlarge) plus general-purpose m6a for the
right-sizing comparison.  Prices are on-demand us-east-1 Linux rates
(USD/hour, mid-2024); spot is modelled as a discounted rate with random
interruptions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.events import SimEvent, Simulation
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type's shape and price."""

    name: str
    vcpus: int
    memory_bytes: float
    on_demand_hourly_usd: float

    def __post_init__(self) -> None:
        check_positive("vcpus", self.vcpus)
        check_positive("memory_bytes", self.memory_bytes)
        check_positive("on_demand_hourly_usd", self.on_demand_hourly_usd)

    @property
    def family(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def memory_gib(self) -> float:
        return self.memory_bytes / 2**30


def _r6a(size: str, vcpus: int, mem_gib: int, price: float) -> InstanceType:
    return InstanceType(f"r6a.{size}", vcpus, mem_gib * 2**30, price)


def _m6a(size: str, vcpus: int, mem_gib: int, price: float) -> InstanceType:
    return InstanceType(f"m6a.{size}", vcpus, mem_gib * 2**30, price)


#: us-east-1 Linux on-demand rates (mid-2024).
INSTANCE_CATALOG: dict[str, InstanceType] = {
    t.name: t
    for t in [
        _r6a("large", 2, 16, 0.1134),
        _r6a("xlarge", 4, 32, 0.2268),
        _r6a("2xlarge", 8, 64, 0.4536),
        _r6a("4xlarge", 16, 128, 0.9072),
        _r6a("8xlarge", 32, 256, 1.8144),
        _r6a("12xlarge", 48, 384, 2.7216),
        _m6a("large", 2, 8, 0.0864),
        _m6a("xlarge", 4, 16, 0.1728),
        _m6a("2xlarge", 8, 32, 0.3456),
        _m6a("4xlarge", 16, 64, 0.6912),
        _m6a("8xlarge", 32, 128, 1.3824),
    ]
}


def instance_type(name: str) -> InstanceType:
    """Catalog lookup with a helpful error."""
    try:
        return INSTANCE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; known: {sorted(INSTANCE_CATALOG)}"
        ) from None


class InstanceMarket(enum.Enum):
    """Purchase option."""

    ON_DEMAND = "on_demand"
    SPOT = "spot"


class InstanceState(enum.Enum):
    """Lifecycle states (subset of EC2's)."""

    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"


@dataclass(frozen=True)
class SpotModel:
    """Spot market behaviour: discount and interruption process.

    Interruptions arrive as a Poisson process per instance with the given
    mean time between interruptions; AWS gives a 120 s warning, which the
    agent can use to stop cleanly (the SQS visibility timeout then returns
    its message to the queue).
    """

    discount: float = 0.34  # spot price ≈ 34% of on-demand for r6a
    mean_interruption_seconds: float = 6 * 3600.0
    warning_seconds: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 < self.discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        check_positive("mean_interruption_seconds", self.mean_interruption_seconds)

    def hourly_usd(self, itype: InstanceType) -> float:
        return itype.on_demand_hourly_usd * self.discount


@dataclass
class EC2Instance:
    """One launched instance."""

    instance_id: str
    itype: InstanceType
    market: InstanceMarket
    launch_time: float
    state: InstanceState = InstanceState.PENDING
    running_time: float | None = None
    terminate_time: float | None = None
    #: fires when the instance reaches RUNNING
    running_event: SimEvent = field(default_factory=SimEvent)
    #: fires with the warning when a spot interruption is imminent
    interruption_warning: SimEvent = field(default_factory=SimEvent)
    #: fires when the instance is terminated (any cause)
    terminated_event: SimEvent = field(default_factory=SimEvent)
    #: the spot market reclaimed (or warned it will reclaim) this capacity
    interrupted: bool = False
    #: pending warning/interruption timers, cancelled on termination so a
    #: scale-in-terminated instance can never be warned afterwards
    _spot_timers: list = field(default_factory=list, repr=False)

    @property
    def is_running(self) -> bool:
        return self.state is InstanceState.RUNNING

    def billed_seconds(self, now: float) -> float:
        """Billable seconds so far (AWS bills from RUNNING, 60 s minimum)."""
        if self.running_time is None:
            return 0.0
        end = self.terminate_time if self.terminate_time is not None else now
        return max(60.0, max(0.0, end - self.running_time))

    def hourly_rate(self, spot_model: SpotModel) -> float:
        if self.market is InstanceMarket.SPOT:
            return spot_model.hourly_usd(self.itype)
        return self.itype.on_demand_hourly_usd


class Ec2Service:
    """Launch/terminate instances inside a :class:`Simulation`."""

    def __init__(
        self,
        sim: Simulation,
        *,
        boot_seconds: float = 60.0,
        spot_model: SpotModel | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        check_positive("boot_seconds", boot_seconds)
        self.sim = sim
        self.boot_seconds = boot_seconds
        self.spot_model = spot_model or SpotModel()
        self.rng = ensure_rng(rng)
        self.instances: list[EC2Instance] = []
        self._ids = itertools.count()

    def launch(
        self, itype: InstanceType, market: InstanceMarket = InstanceMarket.ON_DEMAND
    ) -> EC2Instance:
        """Start an instance; it reaches RUNNING after the boot delay."""
        inst = EC2Instance(
            instance_id=f"i-{next(self._ids):08x}",
            itype=itype,
            market=market,
            launch_time=self.sim.now,
        )
        self.instances.append(inst)
        self.sim.call_later(self.boot_seconds, lambda: self._mark_running(inst))
        return inst

    def _mark_running(self, inst: EC2Instance) -> None:
        if inst.state is InstanceState.TERMINATED:
            return
        inst.state = InstanceState.RUNNING
        inst.running_time = self.sim.now
        if not inst.running_event.triggered:
            inst.running_event.succeed(self.sim.now)
        if inst.market is InstanceMarket.SPOT:
            self._schedule_interruption(inst)

    def _schedule_interruption(self, inst: EC2Instance) -> None:
        delay = float(
            self.rng.exponential(self.spot_model.mean_interruption_seconds)
        )
        warning_at = max(0.0, delay - self.spot_model.warning_seconds)
        inst._spot_timers = [
            self.sim.call_later(warning_at, lambda: self._warn(inst)),
            self.sim.call_later(delay, lambda: self._interrupt(inst)),
        ]

    def _warn(self, inst: EC2Instance) -> None:
        """Deliver the two-minute notice — only to a live instance.

        An instance terminated meanwhile (autoscaling scale-in, an agent
        stopping on a drained queue) must never be warned: its timers
        are cancelled in :meth:`terminate`, and this lifecycle guard
        covers the same-timestamp race where the warning and the
        termination are both already on the event heap.
        """
        if inst.state is not InstanceState.RUNNING:
            return
        if not inst.interruption_warning.triggered:
            # the reclaim is now unavoidable: this capacity counts as
            # interrupted even if the agent drains and self-terminates
            # before the kill lands
            inst.interrupted = True
            inst.interruption_warning.succeed(self.sim.now)

    def _interrupt(self, inst: EC2Instance) -> None:
        if inst.state is not InstanceState.RUNNING:
            return
        inst.interrupted = True
        self.terminate(inst)

    def terminate(self, inst: EC2Instance) -> None:
        """Terminate (idempotent)."""
        if inst.state is InstanceState.TERMINATED:
            return
        inst.state = InstanceState.TERMINATED
        inst.terminate_time = self.sim.now
        # a dead instance has no spot lifecycle left: cancel pending
        # warning/interruption timers so they neither fire against the
        # terminated instance nor keep the simulation clock running
        for timer in inst._spot_timers:
            timer.cancel()
        inst._spot_timers = []
        # release anyone still waiting for boot (they must re-check state)
        if not inst.running_event.triggered:
            inst.running_event.succeed(None)
        if not inst.terminated_event.triggered:
            inst.terminated_event.succeed(self.sim.now)

    # -- queries ---------------------------------------------------------------

    def running(self) -> list[EC2Instance]:
        return [i for i in self.instances if i.is_running]

    def alive(self) -> list[EC2Instance]:
        """Instances that are pending or running."""
        return [i for i in self.instances if i.state is not InstanceState.TERMINATED]


def cheapest_fitting(
    memory_required: float, *, family: str | None = "r6a", min_vcpus: int = 1
) -> InstanceType:
    """Cheapest catalog type with at least the given memory (and vCPUs).

    Used by the right-sizing advisor: the r111 index's smaller footprint
    lets this pick a smaller, cheaper instance than the r108 index does.
    """
    candidates = [
        t
        for t in INSTANCE_CATALOG.values()
        if t.memory_bytes >= memory_required
        and t.vcpus >= min_vcpus
        and (family is None or t.family == family)
    ]
    if not candidates:
        raise ValueError(
            f"no instance type with {memory_required / 2**30:.1f} GiB "
            f"in family {family!r}"
        )
    return min(candidates, key=lambda t: t.on_demand_hourly_usd)
