"""Cloud substrate: a deterministic discrete-event simulation of AWS.

Models exactly the services in the paper's Fig. 2 architecture:

* :mod:`repro.cloud.events` — the discrete-event engine (simpy-flavoured
  generator processes, deterministic given seeds);
* :mod:`repro.cloud.ec2` — instance-type catalog (r6a and friends),
  on-demand/spot markets, boot latency, spot interruptions;
* :mod:`repro.cloud.sqs` — at-least-once queue with visibility timeout;
* :mod:`repro.cloud.s3` — object store with byte accounting;
* :mod:`repro.cloud.autoscaling` — queue-depth-driven AutoScalingGroup;
* :mod:`repro.cloud.agent` — the per-instance worker loop (init: download
  and load the STAR index; poll SQS; run injected work; delete message);
* :mod:`repro.cloud.cost` — per-second billing and cost roll-ups.

The genomics pipeline itself is *injected* into agents by
:mod:`repro.core.atlas`; this package knows nothing about genomes.
"""

from repro.cloud.autoscaling import AutoScalingGroup, ScalingPolicy
from repro.cloud.cost import CostAccountant, CostReport
from repro.cloud.ec2 import (
    EC2Instance,
    Ec2Service,
    InstanceMarket,
    InstanceState,
    InstanceType,
    INSTANCE_CATALOG,
    SpotModel,
    instance_type,
)
from repro.cloud.events import Process, SimEvent, Simulation, Timeout
from repro.cloud.faas import (
    ExecutionCapExceeded,
    FaasBill,
    FaasError,
    FaasFunction,
    FaasInvocation,
    FaasLimits,
    FaasService,
    FunctionCrashed,
    PayloadTooLarge,
    TooManyRequests,
)
from repro.cloud.s3 import S3Bucket, S3Object, S3Service
from repro.cloud.sqs import Message, SqsQueue

__all__ = [
    "AutoScalingGroup",
    "CostAccountant",
    "CostReport",
    "EC2Instance",
    "Ec2Service",
    "ExecutionCapExceeded",
    "FaasBill",
    "FaasError",
    "FaasFunction",
    "FaasInvocation",
    "FaasLimits",
    "FaasService",
    "FunctionCrashed",
    "INSTANCE_CATALOG",
    "InstanceMarket",
    "InstanceState",
    "InstanceType",
    "Message",
    "PayloadTooLarge",
    "Process",
    "S3Bucket",
    "S3Object",
    "S3Service",
    "ScalingPolicy",
    "SimEvent",
    "Simulation",
    "SpotModel",
    "SqsQueue",
    "Timeout",
    "TooManyRequests",
    "instance_type",
]
