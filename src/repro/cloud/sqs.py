"""SQS model: at-least-once delivery with visibility timeout.

The paper's architecture feeds SRA accessions to instances through SQS.
The semantics that matter for correctness under spot interruptions are
modelled faithfully:

* a received message becomes *invisible* for ``visibility_timeout``
  seconds; if not deleted in time it returns to the queue (at-least-once,
  so a killed worker's accession is re-processed elsewhere);
* ``receive_count`` increments per delivery, and messages exceeding
  ``max_receive_count`` go to an optional dead-letter queue, as the real
  service does with a redrive policy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.events import EventHandle, Simulation
from repro.util.validation import check_positive


@dataclass
class Message:
    """One queue message; ``receipt_handle`` changes per delivery."""

    message_id: str
    body: Any
    enqueued_at: float
    receive_count: int = 0
    receipt_handle: str | None = None
    _visibility_event: EventHandle | None = field(default=None, repr=False)


class SqsQueue:
    """A single SQS queue inside a :class:`Simulation`."""

    def __init__(
        self,
        sim: Simulation,
        *,
        name: str = "queue",
        visibility_timeout: float = 3600.0,
        max_receive_count: int = 5,
        dead_letter: "SqsQueue | None" = None,
    ) -> None:
        check_positive("visibility_timeout", visibility_timeout)
        if max_receive_count < 1:
            raise ValueError("max_receive_count must be >= 1")
        self.sim = sim
        self.name = name
        self.visibility_timeout = visibility_timeout
        self.max_receive_count = max_receive_count
        self.dead_letter = dead_letter
        self._visible: list[Message] = []
        self._inflight: dict[str, Message] = {}
        self._ids = itertools.count()
        self._receipts = itertools.count()
        # service metrics
        self.total_sent = 0
        self.total_delivered = 0
        self.total_deleted = 0
        self.total_expired_visibility = 0
        self.total_dead_lettered = 0
        self.total_released = 0

    # -- producer side -----------------------------------------------------

    def send(self, body: Any) -> Message:
        """Enqueue one message."""
        msg = Message(
            message_id=f"{self.name}-{next(self._ids)}",
            body=body,
            enqueued_at=self.sim.now,
        )
        self._visible.append(msg)
        self.total_sent += 1
        return msg

    def send_batch(self, bodies: list[Any]) -> list[Message]:
        """Enqueue many messages (the pipeline seeds thousands of SRA IDs)."""
        return [self.send(b) for b in bodies]

    # -- consumer side -----------------------------------------------------

    def receive(self) -> Message | None:
        """Deliver the oldest visible message, or None when the queue is empty.

        Starts the visibility clock; the consumer must :meth:`delete`
        before it expires or the message becomes visible again.
        """
        if not self._visible:
            return None
        msg = self._visible.pop(0)
        msg.receive_count += 1
        msg.receipt_handle = f"r-{next(self._receipts)}"
        self._inflight[msg.receipt_handle] = msg
        self.total_delivered += 1
        handle = msg.receipt_handle
        msg._visibility_event = self.sim.call_later(
            self.visibility_timeout, lambda: self._expire_visibility(handle)
        )
        return msg

    def _expire_visibility(self, receipt_handle: str) -> None:
        msg = self._inflight.pop(receipt_handle, None)
        if msg is None:
            return  # already deleted
        self.total_expired_visibility += 1
        msg.receipt_handle = None
        if msg.receive_count >= self.max_receive_count:
            self.total_dead_lettered += 1
            if self.dead_letter is not None:
                self.dead_letter.send(msg.body)
            return
        self._visible.append(msg)

    def delete(self, receipt_handle: str) -> bool:
        """Acknowledge a delivered message; False if the receipt is stale."""
        msg = self._inflight.pop(receipt_handle, None)
        if msg is None:
            return False
        if msg._visibility_event is not None:
            msg._visibility_event.cancel()
        self.total_deleted += 1
        return True

    def release(self, receipt_handle: str) -> float | None:
        """Return an in-flight message to the queue immediately.

        The graceful-drain path: a worker holding the 120 s interruption
        notice gives its message back *now* instead of letting the
        visibility timeout expire hours later.  Returns the visibility
        seconds saved (time remaining until the message would have come
        back on its own), or None when the receipt is stale.  Redrive
        accounting matches :meth:`_expire_visibility`: a release still
        counts as a failed delivery attempt.
        """
        msg = self._inflight.pop(receipt_handle, None)
        if msg is None:
            return None
        remaining = 0.0
        if msg._visibility_event is not None:
            remaining = max(0.0, msg._visibility_event.when - self.sim.now)
            msg._visibility_event.cancel()
            msg._visibility_event = None
        self.total_released += 1
        msg.receipt_handle = None
        if msg.receive_count >= self.max_receive_count:
            self.total_dead_lettered += 1
            if self.dead_letter is not None:
                self.dead_letter.send(msg.body)
            return remaining
        self._visible.append(msg)
        return remaining

    def change_visibility(self, receipt_handle: str, timeout: float) -> bool:
        """Extend/shrink one in-flight message's visibility (heartbeating)."""
        check_positive("timeout", timeout)
        msg = self._inflight.get(receipt_handle)
        if msg is None:
            return False
        if msg._visibility_event is not None:
            msg._visibility_event.cancel()
        handle = receipt_handle
        msg._visibility_event = self.sim.call_later(
            timeout, lambda: self._expire_visibility(handle)
        )
        return True

    # -- metrics --------------------------------------------------------------

    @property
    def approximate_depth(self) -> int:
        """Visible message count (the ASG's scaling signal)."""
        return len(self._visible)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def is_drained(self) -> bool:
        """No visible and no in-flight messages."""
        return not self._visible and not self._inflight
