"""CloudWatch-style metrics: periodic sampling of simulation state.

The paper's architecture is operated through exactly these signals — SQS
queue depth (the scaling trigger), fleet size, and instance utilization.
:class:`MetricsCollector` samples named gauges on a fixed period inside
the DES, producing time series the experiments can assert on (e.g. "the
queue drains monotonically once the fleet saturates") and render as
compact text charts.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cloud.events import Simulation, Timeout
from repro.util.validation import check_positive

#: a gauge reads the current value of some simulation quantity
Gauge = Callable[[], float]

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


@dataclass
class TimeSeries:
    """One metric's samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("samples must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def value_at(self, t: float) -> float:
        """Last sample at or before ``t`` (0.0 before the first sample)."""
        result = 0.0
        for ts, v in zip(self.times, self.values):
            if ts > t:
                break
            result = v
        return result

    def integral(self) -> float:
        """Step-function time integral (e.g. instance-seconds from a
        fleet-size series)."""
        total = 0.0
        for i in range(1, len(self.times)):
            total += self.values[i - 1] * (self.times[i] - self.times[i - 1])
        return total

    def is_monotone_non_increasing(self, *, start: float = 0.0) -> bool:
        """True when the series never rises after ``start``."""
        prev: float | None = None
        for t, v in zip(self.times, self.values):
            if t < start:
                continue
            if prev is not None and v > prev:
                return False
            prev = v
        return True

    def sparkline(self, *, width: int = 60) -> str:
        """Render as a unicode sparkline (downsampled to ``width``)."""
        if not self.values:
            return ""
        values = self.values
        if len(values) > width:
            stride = len(values) / width
            values = [
                values[min(len(values) - 1, int(i * stride))] for i in range(width)
            ]
        peak = max(values)
        if peak <= 0:
            return _SPARK_LEVELS[0] * len(values)
        return "".join(
            _SPARK_LEVELS[min(8, int(round(8 * v / peak)))] for v in values
        )


class MetricsCollector:
    """Samples registered gauges every ``period`` simulated seconds.

    Register gauges, then start the collector as a process::

        collector = MetricsCollector(sim, period=60)
        collector.register("queue_depth", lambda: queue.approximate_depth)
        sim.process(collector.run())

    The collector stops sampling when ``stop()`` is called or, with
    ``until``, at a fixed horizon — otherwise it would keep the
    simulation alive forever.
    """

    def __init__(self, sim: Simulation, *, period: float = 60.0) -> None:
        check_positive("period", period)
        self.sim = sim
        self.period = period
        self.series: dict[str, TimeSeries] = {}
        self._gauges: dict[str, Gauge] = {}
        self._active = True

    def register(self, name: str, gauge: Gauge) -> None:
        """Add a named gauge; sampling starts at the collector's next tick."""
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = gauge
        self.series[name] = TimeSeries(name)

    def sample_now(self) -> None:
        """Take one sample of every gauge immediately."""
        for name, gauge in self._gauges.items():
            self.series[name].append(self.sim.now, float(gauge()))

    def run(self, *, until: float | None = None):
        """The sampling process (register with ``sim.process``)."""
        while self._active:
            self.sample_now()
            if until is not None and self.sim.now >= until:
                return
            yield Timeout(self.period)

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._active = False

    def report(self, *, width: int = 60) -> str:
        """All series as labelled sparklines with their peak values."""
        lines = []
        for name, ts in self.series.items():
            lines.append(
                f"{name:>16} peak={ts.max:<8.1f} {ts.sparkline(width=width)}"
            )
        return "\n".join(lines)
