"""AutoScalingGroup: queue-depth-driven dynamic virtual cluster.

The paper scales EC2 instances with an AutoScalingGroup fed by the SQS
backlog — the standard "backlog per instance" target-tracking pattern.
Scale-out launches instances (optionally spot); scale-in happens
naturally as agents self-terminate on a drained queue, and the ASG
replaces spot-interrupted instances while work remains.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.cloud.agent import WorkerAgent
from repro.cloud.ec2 import Ec2Service, InstanceMarket, InstanceType
from repro.cloud.events import Simulation, Timeout
from repro.cloud.sqs import SqsQueue
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ScalingPolicy:
    """Backlog-per-instance target tracking."""

    min_size: int = 0
    max_size: int = 16
    #: desired = ceil(backlog / messages_per_instance)
    messages_per_instance: int = 4
    evaluation_interval: float = 60.0

    def __post_init__(self) -> None:
        if self.min_size < 0 or self.max_size < self.min_size:
            raise ValueError("need 0 <= min_size <= max_size")
        check_positive("messages_per_instance", self.messages_per_instance)
        check_positive("evaluation_interval", self.evaluation_interval)

    def desired_capacity(self, backlog: int) -> int:
        """Clamped desired instance count for the given backlog."""
        import math

        desired = math.ceil(backlog / self.messages_per_instance)
        return max(self.min_size, min(self.max_size, desired))


#: builds the agent for a newly launched instance
AgentFactory = Callable[["AutoScalingGroup", "WorkerAgent"], None] | None


class AutoScalingGroup:
    """Manages a fleet of worker instances against one queue."""

    def __init__(
        self,
        sim: Simulation,
        ec2: Ec2Service,
        queue: SqsQueue,
        *,
        itype: InstanceType,
        market: InstanceMarket = InstanceMarket.ON_DEMAND,
        policy: ScalingPolicy | None = None,
        make_agent: Callable[["AutoScalingGroup", object], WorkerAgent] | None = None,
    ) -> None:
        if make_agent is None:
            raise ValueError("make_agent is required: it wires the pipeline work in")
        self.sim = sim
        self.ec2 = ec2
        self.queue = queue
        self.itype = itype
        self.market = market
        self.policy = policy or ScalingPolicy()
        self.make_agent = make_agent
        self.agents: list[WorkerAgent] = []
        self._active = True
        self.scale_events: list[tuple[float, int, int]] = []  # (t, alive, desired)

    # -- lifecycle --------------------------------------------------------

    def controller(self) -> Generator:
        """The ASG evaluation loop (register as a sim process).

        Runs until the queue drains and every agent has stopped, then
        deactivates — letting the simulation terminate.
        """
        while self._active:
            backlog = self.queue.approximate_depth + self.queue.inflight_count
            alive = len(self.ec2.alive())
            desired = self.policy.desired_capacity(backlog)
            self.scale_events.append((self.sim.now, alive, desired))
            for _ in range(desired - alive):
                self._launch_one()
            if self.queue.is_drained and not self.ec2.alive():
                self._active = False
                return
            yield Timeout(self.policy.evaluation_interval)

    def _launch_one(self) -> None:
        instance = self.ec2.launch(self.itype, self.market)
        agent = self.make_agent(self, instance)
        self.agents.append(agent)
        self.sim.process(agent.run(), name=f"agent-{instance.instance_id}")

    def stop(self) -> None:
        """Deactivate the controller (no further scale-out)."""
        self._active = False

    # -- reporting ----------------------------------------------------------

    @property
    def total_jobs_completed(self) -> int:
        return sum(a.stats.jobs_completed for a in self.agents)

    @property
    def total_jobs_interrupted(self) -> int:
        return sum(a.stats.jobs_interrupted for a in self.agents)

    def mean_utilization(self) -> float:
        """Fleet-mean busy fraction (0 when no agent ran)."""
        if not self.agents:
            return 0.0
        return sum(a.stats.utilization for a in self.agents) / len(self.agents)

    def peak_fleet_size(self) -> int:
        """Max simultaneously alive instances seen by the controller."""
        return max((alive for _, alive, _ in self.scale_events), default=0)
