"""Cost accounting: per-second EC2 billing plus S3 request/storage charges.

The paper's third stated goal is "minimization of cloud costs"; this module
turns a simulation into a bill so the benches can compare architecture
variants (spot vs on-demand, r6a.4xlarge vs right-sized instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.ec2 import EC2Instance, InstanceMarket, SpotModel
from repro.cloud.s3 import S3Bucket

#: us-east-1 S3 standard pricing (2024): per-GB-month storage and per-1k requests.
S3_STORAGE_USD_PER_GB_MONTH = 0.023
S3_PUT_USD_PER_1K = 0.005
S3_GET_USD_PER_1K = 0.0004


@dataclass
class CostReport:
    """Itemized bill for one simulated run."""

    compute_usd: float = 0.0
    compute_seconds: float = 0.0
    on_demand_usd: float = 0.0
    spot_usd: float = 0.0
    s3_request_usd: float = 0.0
    s3_storage_usd: float = 0.0
    n_instances: int = 0
    n_interrupted: int = 0
    per_instance: list[tuple[str, str, float, float]] = field(default_factory=list)

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.s3_request_usd + self.s3_storage_usd

    def to_text(self) -> str:
        lines = [
            f"Instances: {self.n_instances} ({self.n_interrupted} spot-interrupted)",
            f"Compute:   {self.compute_seconds / 3600:.1f} instance-hours, "
            f"${self.compute_usd:.2f} "
            f"(on-demand ${self.on_demand_usd:.2f}, spot ${self.spot_usd:.2f})",
            f"S3:        requests ${self.s3_request_usd:.4f}, "
            f"storage ${self.s3_storage_usd:.4f}",
            f"TOTAL:     ${self.total_usd:.2f}",
        ]
        return "\n".join(lines)


class CostAccountant:
    """Aggregates charges from simulated services."""

    def __init__(self, spot_model: SpotModel | None = None) -> None:
        self.spot_model = spot_model or SpotModel()

    def bill_instances(
        self, instances: list[EC2Instance], now: float
    ) -> CostReport:
        """Bill every instance for its billable seconds at its market rate."""
        report = CostReport()
        for inst in instances:
            seconds = inst.billed_seconds(now)
            rate = inst.hourly_rate(self.spot_model)
            usd = seconds / 3600.0 * rate
            report.compute_seconds += seconds
            report.compute_usd += usd
            if inst.market is InstanceMarket.SPOT:
                report.spot_usd += usd
            else:
                report.on_demand_usd += usd
            report.n_instances += 1
            if inst.interrupted:
                report.n_interrupted += 1
            report.per_instance.append(
                (inst.instance_id, inst.itype.name, seconds, usd)
            )
        return report

    def bill_s3(
        self, buckets: list[S3Bucket], *, storage_days: float = 30.0
    ) -> tuple[float, float]:
        """(request_usd, storage_usd) across buckets."""
        requests = 0.0
        storage = 0.0
        for b in buckets:
            requests += b.put_count / 1000.0 * S3_PUT_USD_PER_1K
            requests += b.get_count / 1000.0 * S3_GET_USD_PER_1K
            storage += (
                b.total_bytes / 1e9 * S3_STORAGE_USD_PER_GB_MONTH * storage_days / 30.0
            )
        return requests, storage

    def full_report(
        self,
        instances: list[EC2Instance],
        buckets: list[S3Bucket],
        now: float,
        *,
        storage_days: float = 30.0,
    ) -> CostReport:
        """Complete bill: compute + S3."""
        report = self.bill_instances(instances, now)
        report.s3_request_usd, report.s3_storage_usd = self.bill_s3(
            buckets, storage_days=storage_days
        )
        return report
