"""Small argument-validation helpers used across the library.

They exist so domain code can state its preconditions in one readable line
and so error messages are uniform (name, got-value, constraint).
"""

from __future__ import annotations


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0`` and return it."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1`` and return it (mapping rates, thresholds)."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value
