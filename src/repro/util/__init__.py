"""Shared utilities: unit handling, deterministic RNG plumbing, reporting.

These helpers are deliberately free of domain knowledge so every other
subpackage can depend on them without import cycles.
"""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    Bytes,
    Duration,
    Rate,
    format_bytes,
    format_duration,
    gib,
    hours,
    mib,
    minutes,
    parse_bytes,
    seconds,
)
from repro.util.rng import RngStream, derive_rng, ensure_rng
from repro.util.tables import Table, format_table
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    require,
)

__all__ = [
    "Bytes",
    "Duration",
    "GIB",
    "KIB",
    "MIB",
    "Rate",
    "RngStream",
    "TIB",
    "Table",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "derive_rng",
    "ensure_rng",
    "format_bytes",
    "format_duration",
    "format_table",
    "gib",
    "hours",
    "mib",
    "minutes",
    "parse_bytes",
    "require",
    "seconds",
]
