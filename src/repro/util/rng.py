"""Deterministic random-number plumbing.

Every stochastic component in the library (read simulator, spot-interruption
model, corpus generator, …) accepts an explicit ``numpy.random.Generator``.
This module provides the two conventions used throughout:

* ``ensure_rng`` — normalize ``None | int | Generator`` to a ``Generator``;
* ``derive_rng`` — derive an independent child stream from a parent and a
  string key, so that adding a new consumer never perturbs existing streams
  (the "named substream" pattern common in reproducible simulation codes).
"""

from __future__ import annotations

import hashlib

import numpy as np

RngStream = np.random.Generator


def ensure_rng(seed: RngStream | int | None) -> RngStream:
    """Return a ``numpy.random.Generator`` for any accepted seed spec.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a
    deterministic one; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: RngStream | int | None, key: str) -> RngStream:
    """Derive an independent, reproducible child stream named ``key``.

    The child is a function of the parent's *state* and the key, so two
    different keys give statistically independent streams and the same
    (seed, key) pair always gives the same stream.
    """
    parent_rng = ensure_rng(parent)
    # Draw a state-advancing word from the parent, then mix with the key.
    word = int(parent_rng.integers(0, 2**63 - 1))
    digest = hashlib.sha256(f"{word}:{key}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def spawn_streams(parent: RngStream | int | None, keys: list[str]) -> dict[str, RngStream]:
    """Derive one named stream per key (ordering of ``keys`` matters)."""
    parent_rng = ensure_rng(parent)
    return {key: derive_rng(parent_rng, key) for key in keys}
