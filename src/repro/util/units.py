"""Byte-size, duration and rate helpers.

The paper mixes GiB (index sizes, FASTQ sizes) and hours (STAR runtimes);
keeping conversions in one place avoids the classic GB/GiB off-by-7.4%
errors when reproducing its tables.

All quantities are plain ``float``/``int`` under the hood — sizes in bytes,
durations in seconds, rates in bytes/second — so they interoperate with
numpy without wrapper-type friction.  The ``Bytes``/``Duration``/``Rate``
aliases exist purely for signature readability.
"""

from __future__ import annotations

import math
import re

Bytes = float
Duration = float
Rate = float

KIB: int = 1024
MIB: int = 1024**2
GIB: int = 1024**3
TIB: int = 1024**4

_SUFFIXES: dict[str, int] = {
    "B": 1,
    "KIB": KIB,
    "MIB": MIB,
    "GIB": GIB,
    "TIB": TIB,
    "KB": 10**3,
    "MB": 10**6,
    "GB": 10**9,
    "TB": 10**12,
}

_BYTES_RE = re.compile(
    r"^\s*(?P<value>[0-9]*\.?[0-9]+)\s*(?P<suffix>[KMGT]?I?B)?\s*$",
    re.IGNORECASE,
)


def gib(value: float) -> Bytes:
    """Convert a GiB count to bytes (e.g. ``gib(29.5)`` for the r111 index)."""
    return float(value) * GIB


def mib(value: float) -> Bytes:
    """Convert a MiB count to bytes."""
    return float(value) * MIB


def seconds(value: float) -> Duration:
    """Identity helper for readability at call sites."""
    return float(value)


def minutes(value: float) -> Duration:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> Duration:
    """Convert hours to seconds (the paper reports STAR totals in hours)."""
    return float(value) * 3600.0


def to_gib(value: Bytes) -> float:
    """Convert bytes to GiB."""
    return float(value) / GIB


def to_hours(value: Duration) -> float:
    """Convert seconds to hours."""
    return float(value) / 3600.0


def parse_bytes(text: str) -> Bytes:
    """Parse a human byte size such as ``"29.5 GiB"`` or ``"85GB"``.

    Raises ``ValueError`` for malformed input.  A bare number is bytes.
    """
    match = _BYTES_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable byte size: {text!r}")
    value = float(match.group("value"))
    suffix = (match.group("suffix") or "B").upper()
    return value * _SUFFIXES[suffix]


def format_bytes(value: Bytes, *, precision: int = 1) -> str:
    """Render bytes with a binary suffix, e.g. ``format_bytes(gib(85))`` → ``"85.0 GiB"``."""
    if value < 0:
        return "-" + format_bytes(-value, precision=precision)
    for suffix, factor in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if value >= factor:
            return f"{value / factor:.{precision}f} {suffix}"
    return f"{value:.0f} B"


def format_duration(value: Duration) -> str:
    """Render seconds as a compact ``1h 23m 45s`` style string."""
    if value < 0:
        return "-" + format_duration(-value)
    if math.isinf(value):
        return "inf"
    total = int(round(value))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}h {m:02d}m {s:02d}s"
    if m:
        return f"{m}m {s:02d}s"
    return f"{value:.2f}s" if value < 10 else f"{s}s"


def transfer_time(size: Bytes, bandwidth: Rate) -> Duration:
    """Time to move ``size`` bytes at ``bandwidth`` bytes/second."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return float(size) / float(bandwidth)
