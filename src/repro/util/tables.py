"""Plain-text table rendering for benchmark and experiment reports.

Every bench in ``benchmarks/`` prints the rows/series the paper reports;
this module gives them one consistent, dependency-free renderer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


@dataclass
class Table:
    """A simple column-aligned text table.

    >>> t = Table(["release", "index"], title="Index sizes")
    >>> t.add_row(["108", "85.0 GiB"])
    >>> t.add_row(["111", "29.5 GiB"])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are stringified."""
        cells = [str(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(list(self.headers)))
        lines.append(fmt(["-" * w for w in widths]))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_table(
    headers: Sequence[str],
    rows: Iterable[Iterable[object]],
    *,
    title: str | None = None,
) -> str:
    """One-shot convenience wrapper around :class:`Table`."""
    table = Table(headers, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
