"""Suffix-array construction and interval search.

Construction uses prefix doubling fully vectorized in numpy:
O(n log n) argsorts over composite (rank, rank+k) keys.  This is the
index structure STAR's uncompressed-SA design is built on, and its
memory footprint (8 bytes/position) is what makes index size track
genome size — the fact behind the paper's §III-A optimization.

Search maintains an SA interval and narrows it one character at a time
(``extend_interval``), which gives both exact pattern search and the
sequential Maximal Mappable Prefix scan in :mod:`repro.align.seeds`.
"""

from __future__ import annotations

import numpy as np


def build_suffix_array(sequence: np.ndarray) -> np.ndarray:
    """Suffix array (int64 start positions, lexicographic suffix order).

    Shorter suffixes that are prefixes of longer ones sort first, i.e. the
    implicit sentinel is smaller than every symbol.
    """
    seq = np.asarray(sequence, dtype=np.uint8)
    n = int(seq.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Compact initial ranks to dense values < n: the composite key below
    # multiplies by (n + 2), which is only collision-free when every rank is
    # < n and every second key is <= n.  (Raw symbol codes are NOT dense —
    # e.g. "TN" has codes [3, 4] with n = 2 — so compaction is required for
    # correctness, not just hygiene.)
    order = np.argsort(seq, kind="stable")
    sorted_vals = seq[order].astype(np.int64)
    dense = np.empty(n, dtype=np.int64)
    dense[0] = 0
    np.cumsum(sorted_vals[1:] != sorted_vals[:-1], out=dense[1:])
    rank = np.empty(n, dtype=np.int64)
    rank[order] = dense

    k = 1
    while True:
        second = np.zeros(n, dtype=np.int64)
        if k < n:
            second[: n - k] = rank[k:] + 1
        # Composite key; rank < n and second <= n so this fits int64 for any
        # genome that fits in memory.
        key = rank * (n + 2) + second
        sa = np.argsort(key, kind="stable")
        sorted_key = key[sa]
        boundaries = np.empty(n, dtype=np.int64)
        boundaries[0] = 0
        np.cumsum(sorted_key[1:] != sorted_key[:-1], out=boundaries[1:])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[sa] = boundaries
        rank = new_rank
        if boundaries[-1] == n - 1:
            return sa.astype(np.int64)
        k *= 2


class SearchContext:
    """Precomputed state for fast repeated SA searches.

    Profiling (see benchmarks) showed numpy scalar indexing dominating the
    MMP binary search; this context converts the genome to ``bytes`` and
    the suffix array to a plain list (both O(1) C-speed element access)
    and precomputes the depth-0 symbol boundaries — the first characters
    of suffixes in SA order are sorted, so the first narrowing step is a
    table lookup instead of a binary search.
    """

    __slots__ = ("genome_bytes", "sa_list", "n", "first_bounds")

    def __init__(self, genome: np.ndarray, sa: np.ndarray) -> None:
        self.genome_bytes = np.asarray(genome, dtype=np.uint8).tobytes()
        self.sa_list = sa.tolist()
        self.n = int(sa.size)
        firsts = np.asarray(genome, dtype=np.uint8)[sa] if sa.size else np.empty(
            0, dtype=np.uint8
        )
        # boundaries: first_bounds[s] = first SA index whose suffix starts
        # with a symbol >= s (6 entries cover symbols 0..4 plus the end)
        self.first_bounds = [
            int(np.searchsorted(firsts, s, side="left")) for s in range(5)
        ] + [self.n]

    def extend(self, lo: int, hi: int, depth: int, symbol: int) -> tuple[int, int]:
        """Narrow ``[lo, hi)`` of depth-``depth`` matches by one symbol."""
        if depth == 0 and lo == 0 and hi == self.n:
            return self.first_bounds[symbol], self.first_bounds[symbol + 1]
        genome = self.genome_bytes
        sa = self.sa_list
        n = self.n

        # lower bound: first index with char >= symbol (short suffixes = -1)
        a, b = lo, hi
        while a < b:
            mid = (a + b) >> 1
            pos = sa[mid] + depth
            ch = genome[pos] if pos < n else -1
            if ch < symbol:
                a = mid + 1
            else:
                b = mid
        new_lo = a
        a, b = new_lo, hi
        while a < b:
            mid = (a + b) >> 1
            pos = sa[mid] + depth
            ch = genome[pos] if pos < n else -1
            if ch <= symbol:
                a = mid + 1
            else:
                b = mid
        return new_lo, a


def _char_after(genome: np.ndarray, sa: np.ndarray, index: int, depth: int) -> int:
    """Symbol at offset ``depth`` of suffix ``sa[index]``; -1 past the end."""
    pos = int(sa[index]) + depth
    if pos >= genome.size:
        return -1
    return int(genome[pos])


def extend_interval(
    genome: np.ndarray,
    sa: np.ndarray,
    lo: int,
    hi: int,
    depth: int,
    symbol: int,
) -> tuple[int, int]:
    """Narrow SA interval ``[lo, hi)`` of depth-``depth`` matches by one symbol.

    Precondition: all suffixes in ``[lo, hi)`` share the same first ``depth``
    symbols.  Returns the (possibly empty) sub-interval whose suffixes also
    have ``symbol`` at offset ``depth``.  Two binary searches, O(log(hi-lo)).
    """
    # lower bound: first index with char >= symbol
    a, b = lo, hi
    while a < b:
        mid = (a + b) // 2
        if _char_after(genome, sa, mid, depth) < symbol:
            a = mid + 1
        else:
            b = mid
    new_lo = a
    # upper bound: first index with char > symbol
    a, b = new_lo, hi
    while a < b:
        mid = (a + b) // 2
        if _char_after(genome, sa, mid, depth) <= symbol:
            a = mid + 1
        else:
            b = mid
    return new_lo, a


def sa_search(
    genome: np.ndarray, sa: np.ndarray, pattern: np.ndarray
) -> tuple[int, int]:
    """Exact-match SA interval of ``pattern``; empty interval when absent."""
    pattern = np.asarray(pattern, dtype=np.uint8)
    lo, hi = 0, int(sa.size)
    for depth in range(pattern.size):
        lo, hi = extend_interval(genome, sa, lo, hi, depth, int(pattern[depth]))
        if lo >= hi:
            return lo, lo
    return lo, hi


def occurrences(
    genome: np.ndarray, sa: np.ndarray, pattern: np.ndarray
) -> np.ndarray:
    """Sorted genome positions where ``pattern`` occurs exactly."""
    lo, hi = sa_search(genome, sa, pattern)
    return np.sort(sa[lo:hi])


def verify_suffix_array(genome: np.ndarray, sa: np.ndarray) -> bool:
    """Check that ``sa`` is a permutation in strict lexicographic suffix order.

    O(n²) in the worst case — a test/debug utility, not for hot paths.
    """
    n = genome.size
    if sa.size != n or n == 0:
        return sa.size == n
    if not np.array_equal(np.sort(sa), np.arange(n)):
        return False
    for i in range(n - 1):
        a = genome[sa[i] :].tobytes()
        b = genome[sa[i + 1] :].tobytes()
        if a >= b:
            return False
    return True
