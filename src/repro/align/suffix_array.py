"""Suffix-array construction, prefix jump table, and interval search.

Construction uses prefix doubling fully vectorized in numpy:
O(n log n) argsorts over composite (rank, rank+k) keys.  This is the
index structure STAR's uncompressed-SA design is built on, and its
memory footprint (8 bytes/position) is what makes index size track
genome size — the fact behind the paper's §III-A optimization.

Search maintains an SA interval and narrows it one character at a time
(``extend_interval``), which gives both exact pattern search and the
sequential Maximal Mappable Prefix scan in :mod:`repro.align.seeds`.
The :class:`PrefixJumpTable` is the analogue of STAR's SA prefix index
(``--genomeSAindexNbases``): the SA interval of every k-mer up to an
auto-sized length L is precomputed at ``genomeGenerate`` time, so the
first L symbols of each MMP query resolve with O(1) table lookups
instead of 2·L binary searches.
"""

from __future__ import annotations

import numpy as np

#: alphabet size (ACGTN) plus one code for the implicit end-of-suffix
#: sentinel, which sorts before every real symbol
_CODE_BASE = 6


def build_suffix_array(sequence: np.ndarray) -> np.ndarray:
    """Suffix array (int64 start positions, lexicographic suffix order).

    Shorter suffixes that are prefixes of longer ones sort first, i.e. the
    implicit sentinel is smaller than every symbol.
    """
    seq = np.asarray(sequence, dtype=np.uint8)
    n = int(seq.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Compact initial ranks to dense values < n: the composite key below
    # multiplies by (n + 2), which is only collision-free when every rank is
    # < n and every second key is <= n.  (Raw symbol codes are NOT dense —
    # e.g. "TN" has codes [3, 4] with n = 2 — so compaction is required for
    # correctness, not just hygiene.)
    order = np.argsort(seq, kind="stable")
    sorted_vals = seq[order].astype(np.int64)
    dense = np.empty(n, dtype=np.int64)
    dense[0] = 0
    np.cumsum(sorted_vals[1:] != sorted_vals[:-1], out=dense[1:])
    rank = np.empty(n, dtype=np.int64)
    rank[order] = dense

    k = 1
    while True:
        second = np.zeros(n, dtype=np.int64)
        if k < n:
            second[: n - k] = rank[k:] + 1
        # Composite key; rank < n and second <= n so this fits int64 for any
        # genome that fits in memory.
        key = rank * (n + 2) + second
        sa = np.argsort(key, kind="stable")
        sorted_key = key[sa]
        boundaries = np.empty(n, dtype=np.int64)
        boundaries[0] = 0
        np.cumsum(sorted_key[1:] != sorted_key[:-1], out=boundaries[1:])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[sa] = boundaries
        rank = new_rank
        if boundaries[-1] == n - 1:
            return sa.astype(np.int64)
        k *= 2


# --------------------------------------------------------------------------
# prefix jump table (STAR's --genomeSAindexNbases)
# --------------------------------------------------------------------------


def prefix_length(n_bases: int, *, cap: int = 14) -> int:
    """Auto-sized jump-table k-mer length for a genome of ``n_bases``.

    STAR sizes its SA prefix index to stay a small fraction of the suffix
    array itself (``--genomeSAindexNbases = min(14, log2(n)/2 - 1)``).
    Same rule here over the 6-code alphabet (ACGTN + sentinel): the
    largest L with ``6**(L+1) <= max(6, n/4)``, capped at ``cap`` — the
    table's 8-byte entries then cost at most ~2 bytes/base, a quarter of
    the 8-byte/base suffix array.
    """
    budget = max(_CODE_BASE, n_bases // 4)
    length = 1
    while length < cap and _CODE_BASE ** (length + 1) <= budget:
        length += 1
    return length


class PrefixJumpTable:
    """O(1) SA intervals for every prefix of length <= ``length``.

    A suffix's *code* packs its first L symbols base-6 as ``symbol + 1``,
    with the implicit end-of-suffix sentinel taking code 0 — so suffixes
    shorter than L pack (and sort) strictly below every longer suffix
    sharing their prefix, exactly matching suffix-array order.  Codes are
    therefore non-decreasing along the SA, and ``bounds[c]`` (the first
    SA index whose code is >= c, via one vectorized ``searchsorted``)
    turns the SA interval of any d-symbol prefix (d <= L) into two array
    lookups::

        stride = 6 ** (L - d)
        lo, hi = bounds[code * stride], bounds[(code + 1) * stride]

    — replacing the 2·d binary searches of the narrowing search, while
    returning *bit-identical* intervals (short suffixes carry sentinel
    codes below every real continuation, mirroring ``extend``'s
    ``ch = -1`` convention).
    """

    __slots__ = ("length", "bounds")

    def __init__(self, length: int, bounds: np.ndarray) -> None:
        self.length = int(length)
        self.bounds = np.asanyarray(bounds, dtype=np.int64)
        expected = _CODE_BASE**self.length + 1
        if self.bounds.size != expected:
            raise ValueError(
                f"bounds must have 6**{self.length} + 1 = {expected} entries, "
                f"got {self.bounds.size}"
            )

    @classmethod
    def build(
        cls,
        genome: np.ndarray,
        sa: np.ndarray,
        *,
        length: int | None = None,
    ) -> "PrefixJumpTable":
        """Vectorized table build from a genome and its suffix array."""
        genome = np.asarray(genome, dtype=np.uint8)
        sa = np.asarray(sa, dtype=np.int64)
        n = int(sa.size)
        L = prefix_length(n) if length is None else int(length)
        if L < 1:
            raise ValueError("jump-table length must be >= 1")
        codes = np.zeros(n, dtype=np.int64)
        for d in range(L):
            pos = sa + d
            valid = pos < n
            sym = np.zeros(n, dtype=np.int64)
            sym[valid] = genome[pos[valid]].astype(np.int64) + 1
            codes *= _CODE_BASE
            codes += sym
        bounds = np.searchsorted(
            codes, np.arange(_CODE_BASE**L + 1, dtype=np.int64), side="left"
        ).astype(np.int64)
        return cls(L, bounds)

    @property
    def nbytes(self) -> int:
        return int(self.bounds.nbytes)

    @staticmethod
    def predicted_nbytes(n_bases: int) -> int:
        """Table footprint for a genome of ``n_bases`` before building it."""
        return 8 * (_CODE_BASE ** prefix_length(n_bases) + 1)

    def interval(self, symbols) -> tuple[int, int]:
        """SA interval of the prefix ``symbols`` (len <= ``length``)."""
        d = len(symbols)
        if d > self.length:
            raise ValueError(f"prefix of {d} symbols exceeds table depth {self.length}")
        code = 0
        for s in symbols:
            code = code * _CODE_BASE + int(s) + 1
        stride = _CODE_BASE ** (self.length - d)
        base = code * stride
        return int(self.bounds[base]), int(self.bounds[base + stride])


# --------------------------------------------------------------------------
# seed-search instrumentation
# --------------------------------------------------------------------------


class SeedSearchStats:
    """Hot-path counters for the MMP seed search (cheap integer bumps).

    ``table_hits`` counts queries whose first ``min(L, remaining)``
    symbols fully resolved through the jump table; ``table_fallbacks``
    counts queries that died inside the table, with ``fallback_depths``
    histogramming the depth reached (how many symbols matched before the
    interval emptied).  ``binary_steps_saved`` is the number of binary
    searches the table lookups replaced (two per resolved symbol);
    ``extend_steps`` counts interval-narrowing calls past the table, and
    ``lce_skips`` counts symbols fast-forwarded by direct genome/read
    byte comparison once the interval narrowed to a single suffix.

    ``batch_queries`` is the batch-path counter: of all ``queries``, how
    many were resolved through the vectorized kernels in
    :mod:`repro.align.batch` rather than the per-read walk (the other
    counters accumulate identically on both paths).
    """

    _COUNTERS = (
        "queries",
        "batch_queries",
        "table_hits",
        "table_fallbacks",
        "binary_steps_saved",
        "extend_steps",
        "lce_skips",
    )

    __slots__ = _COUNTERS + ("fallback_depths",)

    def __init__(self) -> None:
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.fallback_depths: dict[int, int] = {}

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self._COUNTERS}
        out["fallback_depths"] = dict(self.fallback_depths)
        return out

    def snapshot(self) -> dict:
        """Point-in-time copy, for later :meth:`since` deltas."""
        return self.as_dict()

    def since(self, snapshot: dict) -> dict:
        """Delta of these stats relative to an earlier :meth:`snapshot`."""
        out = {name: getattr(self, name) - snapshot[name] for name in self._COUNTERS}
        base = snapshot["fallback_depths"]
        out["fallback_depths"] = {
            d: c - base.get(d, 0)
            for d, c in self.fallback_depths.items()
            if c - base.get(d, 0)
        }
        return out

    def merge(self, delta: dict) -> None:
        """Accumulate a :meth:`since` delta (or ``as_dict``) into these stats."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + delta[name])
        for d, c in delta["fallback_depths"].items():
            self.fallback_depths[d] = self.fallback_depths.get(d, 0) + c


# --------------------------------------------------------------------------
# search context
# --------------------------------------------------------------------------


class SearchContext:
    """Precomputed state for fast repeated SA searches.

    Profiling (see benchmarks) showed numpy scalar indexing dominating the
    MMP binary search; this context keeps the genome as ``bytes`` and the
    suffix array behind a C-contiguous int64 ``memoryview`` — O(1)
    C-speed element access with *no per-position int objects*, so the
    resident overhead beyond the index's own arrays is just the 1-byte/
    base genome copy (the old ``list`` held ~40 bytes/position).  It also
    precomputes the depth-0 symbol boundaries and carries the optional
    :class:`PrefixJumpTable` plus a :class:`SeedSearchStats` counter set
    updated by the seed search.

    The ``*_arr`` attributes (``genome_arr``, ``sa_arr``,
    ``jump_bounds_arr``) are zero-copy numpy views over the same buffers,
    exposed for the structure-of-arrays kernels in
    :mod:`repro.align.batch`, which resolve whole batches of MMP queries
    with fancy-indexed gathers instead of scalar element access.
    """

    __slots__ = (
        "genome_bytes",
        "genome_arr",
        "sa_view",
        "sa_arr",
        "n",
        "first_bounds",
        "jump_length",
        "jump_bounds",
        "jump_bounds_arr",
        "jump_strides",
        "stats",
        "_sa_copy_bytes",
    )

    def __init__(
        self,
        genome: np.ndarray,
        sa: np.ndarray,
        jump_table: PrefixJumpTable | None = None,
    ) -> None:
        genome_arr = np.asarray(genome, dtype=np.uint8)
        self.genome_bytes = genome_arr.tobytes()
        # zero-copy uint8 view over the same bytes buffer, for the batch
        # kernels' fancy-indexed gathers
        self.genome_arr = np.frombuffer(self.genome_bytes, dtype=np.uint8)
        sa_arr = np.asarray(sa)
        packed = np.ascontiguousarray(sa_arr, dtype=np.int64)
        # when the index's own SA is already contiguous int64 (the normal
        # case, incl. read-only mmap'd cache loads) the view is zero-copy
        self._sa_copy_bytes = 0 if packed is sa_arr else int(packed.nbytes)
        self.sa_view = memoryview(packed)
        self.sa_arr = packed
        self.n = int(packed.size)
        firsts = genome_arr[packed] if self.n else np.empty(0, dtype=np.uint8)
        # boundaries: first_bounds[s] = first SA index whose suffix starts
        # with a symbol >= s (6 entries cover symbols 0..4 plus the end)
        self.first_bounds = [
            int(np.searchsorted(firsts, s, side="left")) for s in range(5)
        ] + [self.n]
        if jump_table is None:
            self.jump_length = 0
            self.jump_bounds = None
            self.jump_bounds_arr = None
            self.jump_strides: tuple[int, ...] = ()
        else:
            self.jump_length = jump_table.length
            bounds_arr = np.ascontiguousarray(jump_table.bounds, dtype=np.int64)
            self.jump_bounds = memoryview(bounds_arr)
            self.jump_bounds_arr = bounds_arr
            self.jump_strides = tuple(
                _CODE_BASE ** (jump_table.length - d)
                for d in range(jump_table.length + 1)
            )
        self.stats = SeedSearchStats()

    def resident_extra_bytes(self) -> int:
        """Bytes this context keeps resident beyond the index's own arrays.

        The ``bytes`` genome copy, plus a packed SA copy only when the
        source array was not already C-contiguous int64 (the memoryview
        itself is zero-copy).  The jump table is accounted separately by
        the index, since it exists whether or not a context is built.
        """
        return len(self.genome_bytes) + self._sa_copy_bytes

    def extend(self, lo: int, hi: int, depth: int, symbol: int) -> tuple[int, int]:
        """Narrow ``[lo, hi)`` of depth-``depth`` matches by one symbol."""
        if depth == 0 and lo == 0 and hi == self.n:
            return self.first_bounds[symbol], self.first_bounds[symbol + 1]
        genome = self.genome_bytes
        sa = self.sa_view
        n = self.n

        # lower bound: first index with char >= symbol (short suffixes = -1)
        a, b = lo, hi
        while a < b:
            mid = (a + b) >> 1
            pos = sa[mid] + depth
            ch = genome[pos] if pos < n else -1
            if ch < symbol:
                a = mid + 1
            else:
                b = mid
        new_lo = a
        a, b = new_lo, hi
        while a < b:
            mid = (a + b) >> 1
            pos = sa[mid] + depth
            ch = genome[pos] if pos < n else -1
            if ch <= symbol:
                a = mid + 1
            else:
                b = mid
        return new_lo, a


def _char_after(genome: np.ndarray, sa: np.ndarray, index: int, depth: int) -> int:
    """Symbol at offset ``depth`` of suffix ``sa[index]``; -1 past the end."""
    pos = int(sa[index]) + depth
    if pos >= genome.size:
        return -1
    return int(genome[pos])


def extend_interval(
    genome: np.ndarray,
    sa: np.ndarray,
    lo: int,
    hi: int,
    depth: int,
    symbol: int,
) -> tuple[int, int]:
    """Narrow SA interval ``[lo, hi)`` of depth-``depth`` matches by one symbol.

    Precondition: all suffixes in ``[lo, hi)`` share the same first ``depth``
    symbols.  Returns the (possibly empty) sub-interval whose suffixes also
    have ``symbol`` at offset ``depth``.  Two binary searches, O(log(hi-lo)).
    """
    # lower bound: first index with char >= symbol
    a, b = lo, hi
    while a < b:
        mid = (a + b) // 2
        if _char_after(genome, sa, mid, depth) < symbol:
            a = mid + 1
        else:
            b = mid
    new_lo = a
    # upper bound: first index with char > symbol
    a, b = new_lo, hi
    while a < b:
        mid = (a + b) // 2
        if _char_after(genome, sa, mid, depth) <= symbol:
            a = mid + 1
        else:
            b = mid
    return new_lo, a


def sa_search(
    genome: np.ndarray, sa: np.ndarray, pattern: np.ndarray
) -> tuple[int, int]:
    """Exact-match SA interval of ``pattern``; empty interval when absent."""
    pattern = np.asarray(pattern, dtype=np.uint8)
    lo, hi = 0, int(sa.size)
    for depth in range(pattern.size):
        lo, hi = extend_interval(genome, sa, lo, hi, depth, int(pattern[depth]))
        if lo >= hi:
            return lo, lo
    return lo, hi


def occurrences(
    genome: np.ndarray, sa: np.ndarray, pattern: np.ndarray
) -> np.ndarray:
    """Sorted genome positions where ``pattern`` occurs exactly."""
    lo, hi = sa_search(genome, sa, pattern)
    return np.sort(sa[lo:hi])


def verify_suffix_array(genome: np.ndarray, sa: np.ndarray) -> bool:
    """Check that ``sa`` is the suffix array of ``genome``, in O(n log n).

    Permutation check plus the rank-reduction invariant (Burkhardt &
    Kärkkäinen's suffix-array checker): with ``rank`` the inverse
    permutation extended by ``rank[n] = -1`` for the implicit sentinel,
    ``sa`` is in strict lexicographic suffix order iff the key pairs
    ``(genome[sa[i]], rank[sa[i] + 1])`` strictly increase with ``i`` —
    comparing adjacent suffixes reduces to their first symbols plus the
    order of their one-shorter remainders.  Replaces the old O(n²)
    suffix-materializing check so tests can validate realistic genomes.
    """
    genome = np.asarray(genome, dtype=np.uint8)
    sa = np.asarray(sa)
    n = int(genome.size)
    if sa.size != n:
        return False
    if n == 0:
        return True
    sa = sa.astype(np.int64, copy=False)
    if int(sa.min()) < 0 or int(sa.max()) >= n:
        return False
    if not np.array_equal(np.sort(sa), np.arange(n)):
        return False
    rank = np.empty(n + 1, dtype=np.int64)
    rank[sa] = np.arange(n)
    rank[n] = -1
    first = genome[sa].astype(np.int64)
    nxt = rank[sa + 1]
    increasing = (first[:-1] < first[1:]) | (
        (first[:-1] == first[1:]) & (nxt[:-1] < nxt[1:])
    )
    return bool(increasing.all())
