"""Structure-of-arrays batch alignment core.

The per-read driver in :mod:`repro.align.star` walks one read at a time:
a Python loop per MMP symbol, one numpy round-trip per candidate
extension, a fresh remainder seed per spliced-stitch attempt.  Profiling
shows that loop — not process fan-out — dominates alignment time, the
same observation that led SNAP (Zaharia et al., arXiv 1111.5572) to
restructure seeding around O(1) hash lookups instead of per-symbol
narrowing.

This module drives whole *batches* of reads through the identical
decision procedure with the per-symbol work hoisted into numpy:

* :class:`PackedReadBatch` packs a batch (both orientations) into
  contiguous arrays — base codes, per-segment offsets and lengths — the
  structure-of-arrays layout every kernel below gathers from;
* :func:`batch_mmp` resolves all MMP queries level-by-level: one fused
  :class:`~repro.align.suffix_array.PrefixJumpTable` lookup per depth
  (vectorized base-6 encoding over the live queries), lock-step
  vectorized binary narrowing past the table, and a batched
  compare-and-argmax longest-common-extension scan once intervals hold
  a single suffix;
* :func:`repro.align.extend.batch_ungapped_extend` verifies every
  candidate placement of the batch in one fused comparison;
* spliced stitching reuses one batched remainder seed per (read,
  orientation) where the serial path re-derives it per candidate
  position — same deterministic result, computed once.

Every kernel is bit-identical to its per-read counterpart (the per-read
path is retained as the reference oracle; see
``tests/align/test_batch.py``): seed walks stop at the same depth,
extensions accept the same placements, stitching and the error bridge
pick the same candidates, and classification is shared code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.align.extend import batch_ungapped_extend
from repro.genome.alphabet import BASE_A, BASE_G, BASE_N, BASE_T, complement

if TYPE_CHECKING:
    from repro.align.star import ReadAlignment, StarAligner
    from repro.reads.fastq import FastqRecord

__all__ = ["PackedReadBatch", "align_read_batch", "batch_mmp"]

#: column width of one batched longest-common-extension gather
_LCE_CHUNK = 64

#: width of the first LCE gather; most rows of a multi-suffix interval
#: mismatch within a symbol or two, so the opening chunk stays narrow
_LCE_FIRST_CHUNK = 4

#: SA intervals at most this wide resolve by a closed-form per-suffix LCE
#: scan; wider ones narrow per level with a lock-step binary search first
_SCAN_WIDTH = 8

#: after this many lock-step narrowing levels the scan threshold relaxes
#: to ``_LATE_SCAN_WIDTH``: a low-complexity lane (think poly-A) can stay
#: hundreds of suffixes wide for dozens of symbols, and each extra level
#: costs the whole batch a full bisection pass, while the closed-form
#: scan handles any width at one LCE row per suffix
_NARROW_LEVELS = 4
_LATE_SCAN_WIDTH = 512


# --------------------------------------------------------------------------
# packing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PackedReadBatch:
    """One batch of reads packed into structure-of-arrays form.

    Segment ``i`` of ``n_reads`` forward reads lives at
    ``bases[offsets[i] : offsets[i] + lengths[i]]``; segment
    ``n_reads + i`` is the reverse complement of read ``i``.  Keeping
    both orientations in one pool lets every kernel run once over
    ``2 * n_reads`` queries instead of twice over ``n_reads``.
    """

    bases: np.ndarray  # uint8 base codes, all segments concatenated
    offsets: np.ndarray  # int64, n_segments + 1 segment boundaries
    lengths: np.ndarray  # int64, n_segments
    n_reads: int

    @property
    def n_segments(self) -> int:
        return int(self.lengths.size)

    @classmethod
    def pack(cls, sequences: list[np.ndarray]) -> "PackedReadBatch":
        """Pack forward sequences plus their reverse complements."""
        n_reads = len(sequences)
        fwd_lengths = np.array([s.size for s in sequences], dtype=np.int64)
        lengths = np.concatenate([fwd_lengths, fwd_lengths])
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if n_reads and int(fwd_lengths.sum()):
            fwd = np.concatenate(sequences).astype(np.uint8, copy=False)
            # reverse each segment in place of a per-read [::-1]: position j
            # of the pool maps to its segment-mirrored twin
            starts = np.repeat(offsets[:n_reads], fwd_lengths)
            lens = np.repeat(fwd_lengths, fwd_lengths)
            mirror = 2 * starts + lens - 1 - np.arange(fwd.size, dtype=np.int64)
            rev = complement(fwd)[mirror]
            bases = np.concatenate([fwd, rev])
        else:
            bases = np.zeros(0, dtype=np.uint8)
        return cls(bases=bases, offsets=offsets, lengths=lengths, n_reads=n_reads)


# --------------------------------------------------------------------------
# batched MMP search
# --------------------------------------------------------------------------


def batch_mmp(
    ctx,
    bases: np.ndarray,
    qoff: np.ndarray,
    qlen: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Maximal-mappable-prefix walk for a whole query set at once.

    Query ``i`` searches ``bases[qoff[i] : qoff[i] + qlen[i]]``; returns
    ``(depth, lo, hi)`` arrays matching what
    :func:`repro.align.seeds.maximal_mappable_prefix` computes per query
    — same final depth, same SA interval, same early-stop decisions —
    with the per-symbol Python loop replaced by one vectorized pass per
    depth level across all still-live queries.
    """
    qoff = np.asarray(qoff, dtype=np.int64)
    qlen = np.asarray(qlen, dtype=np.int64)
    n_queries = int(qoff.size)
    stats = ctx.stats
    stats.queries += n_queries
    stats.batch_queries += n_queries

    lo = np.zeros(n_queries, dtype=np.int64)
    hi = np.full(n_queries, ctx.n, dtype=np.int64)
    depth = np.zeros(n_queries, dtype=np.int64)
    if n_queries == 0:
        return depth, lo, hi
    dead = np.zeros(n_queries, dtype=bool)

    # -- regime 1: fused jump-table lookups ---------------------------------
    jump_length = ctx.jump_length
    if jump_length and ctx.n:
        bounds = ctx.jump_bounds_arr
        strides = ctx.jump_strides
        limit = np.minimum(qlen, jump_length)
        code = np.zeros(n_queries, dtype=np.int64)
        level = 0
        walking = limit > 0
        while True:
            live = np.nonzero(walking)[0]
            if live.size == 0:
                break
            sym = bases[qoff[live] + level].astype(np.int64)
            code[live] = code[live] * 6 + sym + 1
            stride = strides[level + 1]
            base = code[live] * stride
            nlo = bounds[base]
            nhi = bounds[base + stride]
            alive = nlo < nhi
            died = live[~alive]
            dead[died] = True
            walking[died] = False
            kept = live[alive]
            lo[kept] = nlo[alive]
            hi[kept] = nhi[alive]
            depth[kept] = level + 1
            level += 1
            walking &= level < limit
        stats.binary_steps_saved += 2 * int(depth.sum())
        n_dead = int(dead.sum())
        stats.table_fallbacks += n_dead
        stats.table_hits += n_queries - n_dead
        if n_dead:
            for d, count in enumerate(np.bincount(depth[dead])):
                if count:
                    stats.fallback_depths[d] = (
                        stats.fallback_depths.get(d, 0) + int(count)
                    )

    # -- regime 2: lock-step binary narrowing of wide intervals --------------
    genome = ctx.genome_arr
    sa = ctx.sa_arr
    n = ctx.n
    active = ~dead & (depth < qlen) & (hi > lo)
    lce_idx: list[np.ndarray] = []
    level_count = 0
    while True:
        single = active & (hi - lo == 1)
        if single.any():
            lce_idx.append(np.nonzero(single)[0])
            active &= ~single
        width_cap = _SCAN_WIDTH if level_count < _NARROW_LEVELS else _LATE_SCAN_WIDTH
        wide = np.nonzero(active & (hi - lo > width_cap))[0]
        if wide.size == 0:
            break
        level_count += 1
        d = depth[wide]
        sym = bases[qoff[wide] + d].astype(np.int64)
        # the depth-d symbols of an SA interval are sorted, so the lower
        # bound (first symbol >= sym, i.e. ch < sym sends the probe
        # right) and the upper bound (first symbol > sym, i.e.
        # ch < sym + 1) bisect the same [lo, hi) concurrently — one fused
        # loop instead of two sequential ones
        d2 = np.concatenate([d, d])
        sym2 = np.concatenate([sym, sym + 1])
        a = np.concatenate([lo[wide], lo[wide]])
        b = np.concatenate([hi[wide], hi[wide]])
        while True:
            open_ = a < b
            if not open_.any():
                break
            mid = (a + b) >> 1
            # mid and pos are never negative, so np.minimum (one ufunc)
            # keeps closed lanes indexable; gather as int64 before
            # substituting the -1 past-end sentinel
            pos = sa[np.minimum(mid, n - 1)] + d2
            ch = np.where(
                pos < n, genome[np.minimum(pos, n - 1)].astype(np.int64), -1
            )
            go_right = open_ & (ch < sym2)
            a = np.where(go_right, mid + 1, a)
            b = np.where(open_ & ~go_right, mid, b)
        new_lo = a[: wide.size]
        new_hi = a[wide.size :]
        stats.extend_steps += int(wide.size)
        emptied = new_lo >= new_hi
        active[wide[emptied]] = False
        kept = wide[~emptied]
        lo[kept] = new_lo[~emptied]
        hi[kept] = new_hi[~emptied]
        depth[kept] += 1
        active &= depth < qlen

    # -- regime 2b: closed-form narrowing of scan-width intervals -----------
    # For an interval of at most _SCAN_WIDTH suffixes, one per-suffix LCE
    # pass decides everything the per-symbol loop would: a suffix survives
    # narrowing to relative depth t iff its LCE with the query is >= t, so
    # the final depth is the maximum LCE M (suffixes achieving it stay a
    # contiguous SA run), and the serial counters fall out of M and the
    # second-largest LCE S: a tied maximum narrows (and counts an extend
    # step) per level until the interval empties at M, while a unique
    # maximum narrows to a single suffix at S+1 and fast-forwards the
    # remaining M-S-1 symbols through the LCE shortcut.
    scan = np.nonzero(active)[0]
    single_idx = (
        np.concatenate(lce_idx) if lce_idx else np.zeros(0, dtype=np.int64)
    )
    n_rows = 0
    m_all = np.zeros(0, dtype=np.int64)
    if scan.size or single_idx.size:
        # one fused LCE call covers both the scan rows and the narrowed
        # singles — the second call's fixed chunk-loop cost is pure waste
        lanes = np.concatenate([np.repeat(scan, hi[scan] - lo[scan]), single_idx])
        if scan.size:
            w = hi[scan] - lo[scan]
            n_rows = int(w.sum())
            within = np.arange(n_rows, dtype=np.int64) - np.repeat(
                np.cumsum(w) - w, w
            )
        else:
            within = np.zeros(0, dtype=np.int64)
        sa_at = np.concatenate([within, np.zeros(single_idx.size, dtype=np.int64)])
        pos = sa[lo[lanes] + sa_at] + depth[lanes]
        roff = qoff[lanes] + depth[lanes]
        limit = np.minimum(qlen[lanes] - depth[lanes], n - pos)
        m_all = _batched_lce(genome, bases, pos, roff, limit)
    if scan.size:
        w = hi[scan] - lo[scan]
        starts = np.zeros(scan.size, dtype=np.int64)
        np.cumsum(w[:-1], out=starts[1:])
        row_idx = np.arange(n_rows, dtype=np.int64)
        m = m_all[:n_rows]
        lane_max = np.maximum.reduceat(m, starts)
        # second-largest (with multiplicity): mask one argmax row out
        first_max = np.minimum.reduceat(
            np.where(m == lane_max[np.repeat(
                np.arange(scan.size), w)], row_idx, n_rows), starts,
        )
        masked = m.copy()
        masked[first_max] = -1
        lane_2nd = np.maximum.reduceat(masked, starts)
        remaining = qlen[scan] - depth[scan]
        tie = lane_2nd == lane_max
        stats.extend_steps += int(
            np.where(tie, lane_max + (lane_max < remaining), lane_2nd + 1).sum()
        )
        stats.lce_skips += int(
            np.where(tie, 0, lane_max - lane_2nd - 1).sum()
        )
        # surviving interval: the contiguous block of suffixes with LCE == M
        # (for M == 0 that is the whole interval, i.e. the failed first
        # narrowing step leaves lo/hi untouched, exactly like the serial
        # break)
        ge = m >= lane_max[np.repeat(np.arange(scan.size), w)]
        n_ge = np.add.reduceat(ge.astype(np.int64), starts)
        first_ge = (
            np.minimum.reduceat(np.where(ge, row_idx, n_rows), starts) - starts
        )
        lo[scan] += first_ge
        hi[scan] = lo[scan] + n_ge
        depth[scan] += lane_max

    # -- regime 3: batched longest-common-extension -------------------------
    if single_idx.size:
        matched = m_all[n_rows:]
        depth[single_idx] += matched
        stats.lce_skips += int(matched.sum())

    return depth, lo, hi


def _batched_lce(
    genome: np.ndarray,
    bases: np.ndarray,
    pos: np.ndarray,
    roff: np.ndarray,
    limit: np.ndarray,
) -> np.ndarray:
    """Longest common extension per (genome position, query position) row.

    Compares ``genome[pos[i]:]`` against ``bases[roff[i]:]`` up to
    ``limit[i]`` symbols, via chunked 2-D gathers with the first mismatch
    located by ``argmax`` over the comparison — the batch counterpart of
    :func:`repro.align.seeds._common_extension`.  Chunk widths grow
    geometrically: over a multi-suffix interval most rows mismatch within
    a symbol or two, so narrow early chunks avoid gathering 60+ columns a
    first-symbol mismatch would throw away, while the few long-extension
    rows still finish in O(log) passes.
    """
    n = genome.size
    matched = np.zeros(pos.size, dtype=np.int64)
    live = limit > 0
    chunk = _LCE_FIRST_CHUNK
    first = True
    while True:
        rows = np.nonzero(live)[0]
        if rows.size == 0:
            return matched
        cols = np.arange(chunk, dtype=np.int64)
        # on the first pass every matched[] is zero; skipping the adds
        # saves two full-width passes over the largest row set
        base_g = pos[rows, None] if first else pos[rows, None] + matched[rows, None]
        base_r = roff[rows, None] if first else roff[rows, None] + matched[rows, None]
        lim = limit[rows, None] if first else limit[rows, None] - matched[rows, None]
        g = genome[np.minimum(base_g + cols, n - 1)]
        r = bases[np.minimum(base_r + cols, bases.size - 1)]
        bad = (g != r) | (cols >= lim)
        stopped = bad.any(axis=1)
        first_bad = bad.argmax(axis=1)
        matched[rows] += np.where(stopped, first_bad, chunk)
        live[rows] = ~stopped & (matched[rows] < limit[rows])
        chunk = min(chunk * 2, _LCE_CHUNK)
        first = False


def _gather_positions(
    ctx, seed_len: np.ndarray, lo: np.ndarray, hi: np.ndarray, max_hits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Genome positions of every resolved interval, per SeedHit rules.

    Returns ``(counts, starts, positions)``: interval ``q`` owns
    ``positions[starts[q] : starts[q + 1]]`` — the first ``max_hits``
    suffix-array entries of its interval, sorted ascending, exactly what
    the per-read path materializes one ``SeedHit.positions`` at a time.
    """
    counts = np.where(seed_len > 0, np.minimum(hi - lo, max_hits), 0)
    starts = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    total = int(starts[-1])
    if total == 0:
        return counts, starts, np.zeros(0, dtype=np.int64)
    within = np.arange(total, dtype=np.int64) - np.repeat(starts[:-1], counts)
    positions = ctx.sa_arr[np.repeat(lo, counts) + within]
    # the per-read path sorts each hit list; one interval-major lexsort
    # sorts them all
    seg = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    positions = positions[np.lexsort((positions, seg))]
    return counts, starts, positions


# --------------------------------------------------------------------------
# batch driver
# --------------------------------------------------------------------------


def _contigs_of(index, positions: np.ndarray) -> np.ndarray:
    """Vectorized contig ordinal per absolute genome position."""
    offsets = np.asarray(index.offsets, dtype=np.int64)
    return np.searchsorted(offsets, positions, side="right") - 1


def _batch_stitch(
    index,
    ctx,
    params,
    cand_q_arr: np.ndarray,
    cand_pos_arr: np.ndarray,
    cand_contig: np.ndarray,
    ext_accepts: np.ndarray,
    seed_len: np.ndarray,
    stitch_q: np.ndarray,
    r_counts: np.ndarray,
    r_starts: np.ndarray,
    r_pos: np.ndarray,
    rem_contig: np.ndarray,
    rem_mm: np.ndarray,
    rem_ok: np.ndarray,
) -> tuple[list[int], list[int]]:
    """Best spliced stitch per failing candidate, resolved in one pass.

    Mirrors :func:`repro.align.splice.stitch_spliced`'s candidate loop —
    same filters, same (mismatches, intron length) tie-break — over the
    cross product of every failing candidate position and its segment's
    batch-precomputed remainder hits.  Returns per-candidate lists of
    winning mismatch counts (-1 when no stitch exists) and acceptors.
    The serial loop is first-wins on ties, but a tied key means equal
    mismatches and equal intron length, which pins the same acceptor, so
    a plain minimum reproduces it.
    """
    n_cand = int(cand_q_arr.size)
    no_stitch = [-1] * n_cand
    if not r_pos.size:
        return no_stitch, [0] * n_cand
    seg_rcount = np.zeros(int(seed_len.size), dtype=np.int64)
    seg_rcount[stitch_q] = r_counts
    seg_rstart = np.zeros(int(seed_len.size), dtype=np.int64)
    seg_rstart[stitch_q] = r_starts[:-1]
    k_idx = np.nonzero(~ext_accepts & (seg_rcount[cand_q_arr] > 0))[0]
    if not k_idx.size:
        return no_stitch, [0] * n_cand

    kc = seg_rcount[cand_q_arr[k_idx]]  # remainder hits per candidate
    pstart = np.zeros(k_idx.size, dtype=np.int64)
    np.cumsum(kc[:-1], out=pstart[1:])
    n_pairs = int(kc.sum())
    pair_k = np.repeat(k_idx, kc)
    within = np.arange(n_pairs, dtype=np.int64) - np.repeat(pstart, kc)
    pair_j = np.repeat(seg_rstart[cand_q_arr[k_idx]], kc) + within

    donor_k = cand_pos_arr[k_idx] + seed_len[cand_q_arr[k_idx]]
    donor = np.repeat(donor_k, kc)
    acceptor = r_pos[pair_j]
    intron = acceptor - donor
    valid = (
        (intron >= params.min_intron)
        & (intron <= params.max_intron)
        & (rem_contig[pair_j] == cand_contig[pair_k])
        & rem_ok[pair_j]
    )
    genome = ctx.genome_arr
    gn = genome.size
    # is_canonical_motif, gathered: GT at the donor, AG before the
    # acceptor, out-of-range windows rejected (clamps keep the dead
    # lanes' gathers in bounds; donor/acceptor are never negative)
    canonical = (
        valid
        & (donor + 2 <= gn)
        & (acceptor - 2 >= 0)
        & (genome[np.minimum(donor, gn - 1)] == BASE_G)
        & (genome[np.minimum(donor + 1, gn - 1)] == BASE_T)
        & (genome[np.maximum(acceptor - 2, 0)] == BASE_A)
        & (genome[np.maximum(acceptor - 1, 0)] == BASE_G)
    )
    # the serial path consults the sjdb only when the motif test fails
    need_sjdb = np.nonzero(valid & ~canonical)[0]
    ok = canonical
    if need_sjdb.size:
        is_ann = index.is_annotated_junction
        ann = [
            is_ann(d, a)
            for d, a in zip(
                donor[need_sjdb].tolist(), acceptor[need_sjdb].tolist()
            )
        ]
        ok = canonical.copy()
        ok[need_sjdb] = ann

    # lexicographic (mismatches, intron length) minimum per candidate via
    # one packed int64 key; intron <= max_intron < 2**32 keeps it exact
    key = np.where(
        ok,
        rem_mm[pair_j] * (np.int64(1) << 32) + intron,
        np.int64(1) << 62,
    )
    best_key = np.minimum.reduceat(key, pstart)
    has = best_key < (np.int64(1) << 62)
    best_mm = np.full(n_cand, -1, dtype=np.int64)
    best_acc = np.zeros(n_cand, dtype=np.int64)
    best_mm[k_idx[has]] = (best_key >> 32)[has]
    best_acc[k_idx[has]] = donor_k[has] + (
        best_key & ((np.int64(1) << 32) - 1)
    )[has]
    return best_mm.tolist(), best_acc.tolist()


def align_read_batch(
    aligner: "StarAligner", records: list["FastqRecord"]
) -> list["ReadAlignment"]:
    """Align a batch of reads through the vectorized core.

    Returns one :class:`~repro.align.star.ReadAlignment` per record, in
    order, each identical to what ``aligner.align_read`` produces for
    the same read.
    """
    from repro.align.star import AlignmentStatus, ReadAlignment, _Candidate

    index = aligner.index
    ctx = index.search_context
    params = aligner.parameters
    scoring = params.scoring

    out: list[ReadAlignment | None] = [None] * len(records)
    live: list[int] = []
    sequences: list[np.ndarray] = []
    for r, record in enumerate(records):
        if record.sequence.size == 0:
            # zero-length reads can never seed (same early return as
            # align_read)
            out[r] = ReadAlignment(record.read_id, AlignmentStatus.UNMAPPED)
        else:
            live.append(r)
            sequences.append(np.asarray(record.sequence, dtype=np.uint8))
    n_live = len(live)
    if n_live == 0:
        return out  # type: ignore[return-value]

    batch = PackedReadBatch.pack(sequences)
    bases = batch.bases
    offsets = batch.offsets[:-1]
    lengths = batch.lengths
    n_segments = batch.n_segments

    # -- round 1: prefix seeds for every orientation ------------------------
    depth, lo, hi = batch_mmp(ctx, bases, offsets, lengths)
    seed_len = depth

    counts, cand_start, cand_pos_arr = _gather_positions(
        ctx, seed_len, lo, hi, params.seed_multimap_nmax
    )
    cand_q_arr = np.repeat(np.arange(n_segments, dtype=np.int64), counts)

    # cumulative read-N counts: extension may skip a seed-verified prefix
    # only when it is N-free (an N/N pair advances the seed walk yet
    # counts as an extension mismatch)
    n_cum = np.zeros(bases.size + 1, dtype=np.int64)
    np.cumsum(bases == BASE_N, out=n_cum[1:])
    seed_n = n_cum[offsets + seed_len] - n_cum[offsets]
    seed_skip = np.where(seed_n == 0, seed_len, 0)

    ext_mm, ext_ok = batch_ungapped_extend(
        index,
        bases,
        offsets[cand_q_arr],
        lengths[cand_q_arr],
        cand_pos_arr,
        max_mismatches=scoring.max_mismatches,
        verified_prefix=seed_skip[cand_q_arr],
    )
    cand_len = lengths[cand_q_arr]
    min_frac = scoring.min_matched_fraction
    match_s = scoring.match_score
    mis_p = scoring.mismatch_penalty
    ext_accepts = ext_ok & ((cand_len - ext_mm) >= min_frac * cand_len)
    ext_score = (cand_len - ext_mm) * match_s - ext_mm * mis_p
    cand_contig = _contigs_of(index, cand_pos_arr)

    # -- round 2: one remainder seed per segment that needs stitching -------
    path1_fails = ~ext_accepts
    stitch_q = np.unique(
        cand_q_arr[path1_fails & (seed_len[cand_q_arr] < lengths[cand_q_arr])]
    ) if cand_q_arr.size else cand_q_arr
    # per-candidate stitch winners: mismatches (-1 = none) and acceptor
    stitch_mm_l: list[int] = [-1] * int(cand_q_arr.size)
    stitch_acc_l: list[int] = [0] * int(cand_q_arr.size)
    if stitch_q.size:
        rem_depth, rem_lo, rem_hi = batch_mmp(
            ctx,
            bases,
            offsets[stitch_q] + seed_len[stitch_q],
            lengths[stitch_q] - seed_len[stitch_q],
        )
        # stitch_spliced seeds the remainder with its own max_candidates
        # cap (20), not seed_multimap_nmax
        r_counts, r_starts, r_pos = _gather_positions(
            ctx, rem_depth, rem_lo, rem_hi, 20
        )
        rq_arr = np.repeat(stitch_q, r_counts)
        rem_off = offsets[stitch_q] + seed_len[stitch_q]
        rem_n = n_cum[rem_off + rem_depth] - n_cum[rem_off]
        rem_skip = np.repeat(np.where(rem_n == 0, rem_depth, 0), r_counts)
        rem_mm, rem_ok = batch_ungapped_extend(
            index,
            bases,
            offsets[rq_arr] + seed_len[rq_arr],
            lengths[rq_arr] - seed_len[rq_arr],
            r_pos,
            max_mismatches=scoring.max_mismatches,
            verified_prefix=rem_skip,
        )
        rem_contig = _contigs_of(index, r_pos)
        stitch_mm_l, stitch_acc_l = _batch_stitch(
            index,
            ctx,
            params,
            cand_q_arr,
            cand_pos_arr,
            cand_contig,
            ext_accepts,
            seed_len,
            stitch_q,
            r_counts,
            r_starts,
            r_pos,
            rem_contig,
            rem_mm,
            rem_ok,
        )

    # -- pass A: contiguous + spliced candidates per orientation ------------
    # plain-python mirrors of every per-candidate array: scalar numpy
    # reads cost ~100ns apiece, which would dominate this loop
    cands_by_q: list[list] = [[] for _ in range(n_segments)]
    bridge_q: list[int] = []
    seed_l = seed_len.tolist()
    len_l = lengths.tolist()
    starts_l = cand_start.tolist()
    pos_l = cand_pos_arr.tolist()
    acc_l = ext_accepts.tolist()
    mm_l = ext_mm.tolist()
    score_l = ext_score.tolist()
    max_mm = scoring.max_mismatches
    for q in range(n_segments):
        s, e = starts_l[q], starts_l[q + 1]
        sl = seed_l[q]
        n = len_l[q]
        if s == e:
            if 0 < sl < n:
                bridge_q.append(q)
            continue
        cands = cands_by_q[q]
        for k in range(s, e):
            p = pos_l[k]
            if acc_l[k]:
                # hit positions are unique within a segment and nothing
                # else appends contiguous candidates here, so the serial
                # path's seen-set membership test is vacuously false
                mm = mm_l[k]
                cands.append(
                    _Candidate(
                        score=score_l[k],
                        genome_start=p,
                        mismatches=mm,
                        blocks=((p, p + n),),
                        spliced=False,
                    )
                )
                continue
            mm = stitch_mm_l[k]
            if mm >= 0 and mm <= max_mm and n - mm >= min_frac * n:
                acceptor = stitch_acc_l[k]
                cands.append(
                    _Candidate(
                        score=(n - mm) * match_s - mm * mis_p,
                        genome_start=p,
                        mismatches=mm,
                        blocks=((p, p + sl), (acceptor, acceptor + n - sl)),
                        spliced=True,
                    )
                )
        if not cands and 0 < sl < n:
            bridge_q.append(q)

    # -- round 3: error-bridge re-seed for candidate-less orientations ------
    bridge_set = [q for q in bridge_q if len_l[q] - (seed_l[q] + 1) >= 12]
    if bridge_set:
        bq_arr = np.asarray(bridge_set, dtype=np.int64)
        bridge_starts = seed_len[bq_arr] + 1
        b_depth, b_lo, b_hi = batch_mmp(
            ctx,
            bases,
            offsets[bq_arr] + bridge_starts,
            lengths[bq_arr] - bridge_starts,
        )
        b_counts, b_starts, b_hits = _gather_positions(
            ctx, b_depth, b_lo, b_hi, params.seed_multimap_nmax
        )
        bq_flat = np.repeat(bq_arr, b_counts)
        b_place = b_hits - (seed_len[bq_flat] + 1)
        b_mm, b_ok = batch_ungapped_extend(
            index,
            bases,
            offsets[bq_flat],
            lengths[bq_flat],
            b_place,
            max_mismatches=scoring.max_mismatches,
        )
        b_len = lengths[bq_flat]
        b_accepts = b_ok & ((b_len - b_mm) >= min_frac * b_len)
        b_score = (b_len - b_mm) * match_s - b_mm * mis_p
        b_starts_l = b_starts.tolist()
        b_place_l = b_place.tolist()
        b_acc_l = b_accepts.tolist()
        b_mm_l = b_mm.tolist()
        b_score_l = b_score.tolist()
        for j, q in enumerate(bridge_set):
            n = len_l[q]
            cands = cands_by_q[q]
            # the bridge only runs when pass A accepted nothing, so the
            # serial path's seen-set is empty on entry and bridge hits are
            # unique — only the off-genome placement guard has effect
            for k in range(b_starts_l[j], b_starts_l[j + 1]):
                p = b_place_l[k]
                if p < 0:
                    continue
                if b_acc_l[k]:
                    cands.append(
                        _Candidate(
                            score=b_score_l[k],
                            genome_start=p,
                            mismatches=b_mm_l[k],
                            blocks=((p, p + n),),
                            spliced=False,
                        )
                    )

    # -- classification (shared with the per-read path) ----------------------
    for i, r in enumerate(live):
        out[r] = aligner._classify(
            records[r].read_id, cands_by_q[i], cands_by_q[n_live + i]
        )
    return out  # type: ignore[return-value]
