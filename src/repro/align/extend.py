"""Mismatch-budgeted ungapped extension and alignment scoring.

After seeding, candidate placements are verified by direct comparison
against the genome with a mismatch budget — the local-alignment score
model is STAR's default (match +1, mismatch −1) without indels, which is
sufficient for the substitution-only error model of our read simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.index import GenomeIndex
from repro.genome.alphabet import BASE_N


@dataclass(frozen=True)
class ScoringParams:
    """Alignment scoring and acceptance thresholds (STAR-flavoured defaults)."""

    match_score: int = 1
    mismatch_penalty: int = 1
    #: maximum mismatches accepted in a full-read placement
    max_mismatches: int = 4
    #: minimum fraction of the read that must be matched for acceptance
    #: (STAR's ``--outFilterMatchNminOverLread``, default 0.66)
    min_matched_fraction: float = 0.66

    def score(self, matched: int, mismatched: int) -> int:
        """Alignment score for the given match/mismatch counts."""
        return matched * self.match_score - mismatched * self.mismatch_penalty

    def accepts(self, matched: int, mismatched: int, read_length: int) -> bool:
        """Acceptance test for a candidate placement."""
        return (
            mismatched <= self.max_mismatches
            and matched >= self.min_matched_fraction * read_length
        )


@dataclass(frozen=True)
class ExtensionResult:
    """Outcome of placing a read segment at one genome position."""

    genome_start: int
    length: int
    mismatches: int
    ok: bool

    @property
    def matched(self) -> int:
        return self.length - self.mismatches


def batch_ungapped_extend(
    index: GenomeIndex,
    bases: np.ndarray,
    seg_offsets: np.ndarray,
    seg_lengths: np.ndarray,
    genome_starts: np.ndarray,
    *,
    max_mismatches: int,
    verified_prefix: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`ungapped_extend` over many (segment, position) pairs.

    ``bases`` is a packed pool of uint8 base codes; pair ``i`` compares
    ``bases[seg_offsets[i] : seg_offsets[i] + seg_lengths[i]]`` against
    the genome at ``genome_starts[i]``.  Returns ``(mismatches, ok)``
    arrays whose elements match what :func:`ungapped_extend` reports for
    the same pair — including the contig-boundary/off-genome failure mode
    (``ok=False`` with ``mismatches == length``) and the zero-length
    ``ok=True`` convention.  One fused comparison over a column-masked
    2-D gather replaces one Python-level numpy round-trip per pair.

    The always-mismatch rule for ``N`` is folded into the comparison by
    remapping read-side ``N`` (code 4) to the out-of-alphabet code 5:
    genome ``N`` stays 4, so any pairing that involves an ``N`` on either
    side compares unequal without the two extra equality passes.

    ``verified_prefix[i]`` (optional) asserts that the first that-many
    columns of pair ``i`` are known mismatch-free — the caller's seed
    already matched them symbol-for-symbol — so the comparison starts
    there; the span checks still cover the full segment extent.  N-free
    MMP prefixes qualify (an ``N``/``N`` pairing advances the seed walk
    but counts as an extension mismatch, so prefixes containing read
    ``N`` must pass 0).
    """
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    seg_lengths = np.asarray(seg_lengths, dtype=np.int64)
    genome_starts = np.asarray(genome_starts, dtype=np.int64)
    n_pairs = int(seg_offsets.size)
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    n_bases = index.n_bases
    offsets = np.asarray(index.offsets, dtype=np.int64)
    in_genome = (
        (seg_lengths > 0)
        & (genome_starts >= 0)
        & (genome_starts + seg_lengths <= n_bases)
    )
    # contig containment: same searchsorted that contig_of performs, done
    # once for the whole batch (clip keeps out-of-range starts indexable;
    # their in_genome=False already forces span failure)
    contig = np.searchsorted(offsets, genome_starts, side="right") - 1
    contig = np.clip(contig, 0, len(offsets) - 2)
    ok_span = in_genome & (genome_starts + seg_lengths <= offsets[contig + 1])

    if verified_prefix is None:
        cmp_offsets, cmp_starts, cmp_lengths = seg_offsets, genome_starts, seg_lengths
    else:
        cmp_offsets = seg_offsets + verified_prefix
        cmp_starts = genome_starts + verified_prefix
        cmp_lengths = seg_lengths - verified_prefix
    width = int(cmp_lengths.max()) if n_bases else 0
    full_width = int(seg_lengths.max())
    # pad both pools so no gather needs clamping: a pair that would read
    # out of bounds already has ok_span=False, so the values compared in
    # the padding are never observed in the result.  The read pool copy
    # doubles as the N remap (read N -> 5; genome N stays 4), which folds
    # the always-mismatch N rule into plain inequality.
    pool = np.zeros(bases.size + width, dtype=np.uint8)
    np.add(bases, bases == BASE_N, out=pool[: bases.size], casting="unsafe")
    genome = np.zeros(full_width + n_bases + width, dtype=np.uint8)
    genome[full_width : full_width + n_bases] = index.genome
    mismatches = np.zeros(n_pairs, dtype=np.int64)
    # column-chunked so pathological segment lengths cannot allocate an
    # unbounded (pairs x width) matrix
    for col in range(0, width, 256):
        cols = np.arange(col, min(col + 256, width), dtype=np.int64)
        live = cmp_lengths > col
        rows = np.nonzero(live)[0]
        if rows.size == 0:
            break
        col_valid = cols[None, :] < cmp_lengths[rows, None]
        g = genome[cmp_starts[rows, None] + (cols[None, :] + full_width)]
        r = pool[cmp_offsets[rows, None] + cols[None, :]]
        diff = (g != r) & col_valid
        mismatches[rows] += diff.sum(axis=1)

    mismatches = np.where(ok_span, mismatches, seg_lengths)
    ok = np.where(seg_lengths == 0, True, ok_span & (mismatches <= max_mismatches))
    return mismatches, ok


def ungapped_extend(
    index: GenomeIndex,
    read_segment: np.ndarray,
    genome_start: int,
    *,
    max_mismatches: int,
) -> ExtensionResult:
    """Compare ``read_segment`` against the genome at ``genome_start``.

    Fails (``ok=False``) when the segment would cross a contig boundary or
    run off the genome, or when mismatches exceed the budget.  ``N`` bases
    on either side always count as mismatches (STAR treats genome N the
    same way).
    """
    seg = np.asarray(read_segment, dtype=np.uint8)
    length = int(seg.size)
    if length == 0:
        return ExtensionResult(genome_start, 0, 0, ok=True)
    if not index.span_within_contig(genome_start, length):
        return ExtensionResult(genome_start, length, length, ok=False)
    window = index.genome[genome_start : genome_start + length]
    diff = (window != seg) | (window == BASE_N) | (seg == BASE_N)
    mismatches = int(diff.sum())
    return ExtensionResult(
        genome_start=genome_start,
        length=length,
        mismatches=mismatches,
        ok=mismatches <= max_mismatches,
    )
