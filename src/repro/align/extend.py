"""Mismatch-budgeted ungapped extension and alignment scoring.

After seeding, candidate placements are verified by direct comparison
against the genome with a mismatch budget — the local-alignment score
model is STAR's default (match +1, mismatch −1) without indels, which is
sufficient for the substitution-only error model of our read simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.index import GenomeIndex
from repro.genome.alphabet import BASE_N


@dataclass(frozen=True)
class ScoringParams:
    """Alignment scoring and acceptance thresholds (STAR-flavoured defaults)."""

    match_score: int = 1
    mismatch_penalty: int = 1
    #: maximum mismatches accepted in a full-read placement
    max_mismatches: int = 4
    #: minimum fraction of the read that must be matched for acceptance
    #: (STAR's ``--outFilterMatchNminOverLread``, default 0.66)
    min_matched_fraction: float = 0.66

    def score(self, matched: int, mismatched: int) -> int:
        """Alignment score for the given match/mismatch counts."""
        return matched * self.match_score - mismatched * self.mismatch_penalty

    def accepts(self, matched: int, mismatched: int, read_length: int) -> bool:
        """Acceptance test for a candidate placement."""
        return (
            mismatched <= self.max_mismatches
            and matched >= self.min_matched_fraction * read_length
        )


@dataclass(frozen=True)
class ExtensionResult:
    """Outcome of placing a read segment at one genome position."""

    genome_start: int
    length: int
    mismatches: int
    ok: bool

    @property
    def matched(self) -> int:
        return self.length - self.mismatches


def ungapped_extend(
    index: GenomeIndex,
    read_segment: np.ndarray,
    genome_start: int,
    *,
    max_mismatches: int,
) -> ExtensionResult:
    """Compare ``read_segment`` against the genome at ``genome_start``.

    Fails (``ok=False``) when the segment would cross a contig boundary or
    run off the genome, or when mismatches exceed the budget.  ``N`` bases
    on either side always count as mismatches (STAR treats genome N the
    same way).
    """
    seg = np.asarray(read_segment, dtype=np.uint8)
    length = int(seg.size)
    if length == 0:
        return ExtensionResult(genome_start, 0, 0, ok=True)
    if not index.span_within_contig(genome_start, length):
        return ExtensionResult(genome_start, length, length, ok=False)
    window = index.genome[genome_start : genome_start + length]
    diff = (window != seg) | (window == BASE_N) | (seg == BASE_N)
    mismatches = int(diff.sum())
    return ExtensionResult(
        genome_start=genome_start,
        length=length,
        mismatches=mismatches,
        ok=mismatches <= max_mismatches,
    )
