"""Content-addressed on-disk index cache with mmap'd loads.

The paper's instance-init step (§II) builds the genome index once,
stores it in object storage, and has every aligner instance download and
attach it from shared memory instead of re-running ``genomeGenerate``
per job.  :class:`IndexCache` is that store for the in-process aligner:
an index is keyed by a fingerprint over exactly the inputs that
determine it (assembly name, contig names/levels/sequences, annotation
gene/transcript/exon structure), its large arrays are saved as raw
``.npy`` files, and a cache hit memory-maps them with
``np.load(mmap_mode="r")`` — no suffix-array construction, no eager
copy; pages fault in on first use and are shared between processes
through the OS page cache, mirroring the /dev/shm attach.

Entries are written atomically (temp directory + ``os.replace``), so a
crashed build never leaves a half-entry that a later load would trust.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path

import numpy as np

from repro.align.index import GenomeIndex, genome_generate
from repro.align.suffix_array import PrefixJumpTable
from repro.genome.annotation import Annotation
from repro.genome.model import Assembly

_FORMAT_VERSION = 1

_META = "meta.json"
_ARRAYS = ("genome", "suffix_array", "offsets", "jump_bounds")


def index_fingerprint(assembly: Assembly, annotation: Annotation | None = None) -> str:
    """Content hash (sha256 hex) over everything that determines the index.

    Covers the assembly name, every contig's name/level/sequence bytes,
    and — because the annotation seeds the sjdb — the full
    gene/transcript/exon structure.  Two calls agree iff
    ``genome_generate`` would produce identical indexes.
    """
    h = hashlib.sha256()
    h.update(f"repro-index-v{_FORMAT_VERSION}\x00{assembly.name}\x00".encode())
    for contig in assembly:
        h.update(f"{contig.name}\x00{contig.level.value}\x00{contig.length}\x00".encode())
        h.update(memoryview(np.ascontiguousarray(contig.sequence, dtype=np.uint8)))
    if annotation is None:
        h.update(b"\x00no-annotation")
        return h.hexdigest()
    for gene in annotation.genes:
        h.update(
            f"\x00{gene.gene_id}\x00{gene.name}\x00{gene.contig}"
            f"\x00{gene.strand.value}\x00".encode()
        )
        for t in gene.transcripts:
            h.update(f"{t.transcript_id}\x00".encode())
            for e in t.exons:
                h.update(f"{e.number}:{e.region.start}-{e.region.end};".encode())
    return h.hexdigest()


class IndexCache:
    """Content-addressed store of generated indexes under one directory.

    ``get_or_build`` is the whole API most callers need: a miss runs
    ``genome_generate`` and persists the result; either way the returned
    index is backed by memory-mapped arrays.  ``hits``/``misses`` count
    this instance's lookups for the CLI report.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    fingerprint = staticmethod(index_fingerprint)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    def __contains__(self, fingerprint: str) -> bool:
        return (self.path_for(fingerprint) / _META).is_file()

    def entries(self) -> list[str]:
        """Fingerprints of complete entries, sorted."""
        return sorted(p.name for p in self.root.iterdir() if (p / _META).is_file())

    def entry_bytes(self, fingerprint: str) -> int:
        entry = self.path_for(fingerprint)
        return sum(f.stat().st_size for f in entry.iterdir() if f.is_file())

    def get_or_build(
        self, assembly: Assembly, annotation: Annotation | None = None
    ) -> GenomeIndex:
        """mmap-load on a hit; ``genome_generate`` + store + mmap-load on a miss."""
        fp = index_fingerprint(assembly, annotation)
        if fp in self:
            self.hits += 1
            return self.load(fp)
        self.misses += 1
        index = genome_generate(assembly, annotation)
        self.store(fp, index)
        return self.load(fp)

    def store(self, fingerprint: str, index: GenomeIndex) -> Path:
        """Persist an index under ``fingerprint``; atomic against crashes.

        If a concurrent builder already published the entry, theirs wins
        and this build is discarded — both are byte-identical by
        construction.
        """
        if index.jump_table is None:
            index.jump_table = PrefixJumpTable.build(index.genome, index.suffix_array)
        final = self.path_for(fingerprint)
        tmp = self.root / f".tmp-{fingerprint}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        arrays = {
            "genome": np.ascontiguousarray(index.genome, dtype=np.uint8),
            "suffix_array": np.ascontiguousarray(index.suffix_array, dtype=np.int64),
            "offsets": np.ascontiguousarray(index.offsets, dtype=np.int64),
            "jump_bounds": np.ascontiguousarray(
                index.jump_table.bounds, dtype=np.int64
            ),
        }
        for name in _ARRAYS:
            np.save(tmp / f"{name}.npy", arrays[name])
        with open(tmp / "aux.pkl", "wb") as fh:
            pickle.dump(
                {"annotation": index.annotation, "sjdb": index.sjdb},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        meta = {
            "version": _FORMAT_VERSION,
            "assembly_name": index.assembly_name,
            "names": index.names,
            "n_bases": index.n_bases,
            "jump_length": index.jump_table.length,
        }
        # meta.json is the commit marker: written last inside tmp, and the
        # whole directory appears atomically under its final name
        (tmp / _META).write_text(json.dumps(meta, indent=2) + "\n")
        try:
            os.replace(tmp, final)
        except OSError:
            if fingerprint not in self:
                raise
            shutil.rmtree(tmp)
        return final

    def load(self, fingerprint: str) -> GenomeIndex:
        """Attach to a stored entry without rebuilding anything.

        The genome, suffix array, and jump-table bounds come back as
        read-only ``np.memmap`` views — ``SearchContext`` wraps them
        zero-copy, so the resident cost of a cache hit is the pages the
        search actually touches.
        """
        entry = self.path_for(fingerprint)
        meta = json.loads((entry / _META).read_text())
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"index cache entry {fingerprint} has format version "
                f"{meta['version']}, expected {_FORMAT_VERSION}"
            )
        genome = np.load(entry / "genome.npy", mmap_mode="r")
        suffix_array = np.load(entry / "suffix_array.npy", mmap_mode="r")
        jump_bounds = np.load(entry / "jump_bounds.npy", mmap_mode="r")
        offsets = np.load(entry / "offsets.npy")
        with open(entry / "aux.pkl", "rb") as fh:
            aux = pickle.load(fh)
        return GenomeIndex(
            assembly_name=meta["assembly_name"],
            genome=genome,
            suffix_array=suffix_array,
            offsets=offsets,
            names=list(meta["names"]),
            annotation=aux["annotation"],
            sjdb=aux["sjdb"],
            jump_table=PrefixJumpTable(meta["jump_length"], jump_bounds),
        )


def cached_genome_generate(
    assembly: Assembly,
    annotation: Annotation | None = None,
    *,
    cache_dir: Path | str | None = None,
) -> GenomeIndex:
    """``genome_generate``, routed through an :class:`IndexCache` when a
    directory is given (``None`` keeps the plain in-memory build)."""
    if cache_dir is None:
        return genome_generate(assembly, annotation)
    return IndexCache(cache_dir).get_or_build(assembly, annotation)
