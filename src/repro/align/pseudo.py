"""A Salmon-like k-mer pseudo-aligner baseline.

The paper's conclusions contrast STAR with pseudo-aligners: Salmon does not
expose a running mapping-rate value, so the early-stopping optimization
cannot be applied to it.  This baseline reproduces that contrast: it is
faster per read (k-mer voting over a transcriptome hash, no suffix-array
walk, no splice stitching) but reports nothing until the run completes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.genome.alphabet import kmer_codes, reverse_complement
from repro.genome.annotation import Annotation
from repro.genome.model import Assembly
from repro.reads.fastq import FastqRecord


@dataclass
class PseudoIndex:
    """k-mer → set-of-transcript-ordinals hash over the transcriptome."""

    k: int
    transcript_ids: list[str]
    gene_ids: list[str]
    kmer_map: dict[int, frozenset[int]] = field(default_factory=dict)

    @property
    def n_transcripts(self) -> int:
        return len(self.transcript_ids)

    def size_bytes(self) -> int:
        """Rough footprint: 8-byte key + ~8 bytes/posting."""
        postings = sum(len(v) for v in self.kmer_map.values())
        return 16 * len(self.kmer_map) + 8 * postings


def build_pseudo_index(
    assembly: Assembly, annotation: Annotation, *, k: int = 21
) -> PseudoIndex:
    """Index every transcript's k-mers (the Salmon ``index`` step)."""
    transcripts = annotation.transcripts
    if not transcripts:
        raise ValueError("annotation has no transcripts")
    acc: dict[int, set[int]] = {}
    tids: list[str] = []
    gids: list[str] = []
    for ordinal, t in enumerate(transcripts):
        tids.append(t.transcript_id)
        gids.append(t.gene_id)
        seq = t.spliced_sequence(assembly)
        for code in kmer_codes(seq, k):
            if code >= 0:
                acc.setdefault(int(code), set()).add(ordinal)
    return PseudoIndex(
        k=k,
        transcript_ids=tids,
        gene_ids=gids,
        kmer_map={c: frozenset(s) for c, s in acc.items()},
    )


@dataclass(frozen=True)
class PseudoAssignment:
    """Per-read pseudo-alignment result."""

    read_id: str
    mapped: bool
    gene_id: str | None
    n_compatible: int


@dataclass
class PseudoRunResult:
    """Whole-run output: per-gene counts and the final mapping rate.

    Deliberately has no progress stream — that absence is the point of the
    baseline (see module docstring).
    """

    assignments: list[PseudoAssignment]
    gene_counts: dict[str, int]

    @property
    def n_reads(self) -> int:
        return len(self.assignments)

    @property
    def mapped_fraction(self) -> float:
        if not self.assignments:
            return 0.0
        return sum(a.mapped for a in self.assignments) / len(self.assignments)


class PseudoAligner:
    """k-mer voting pseudo-aligner over a :class:`PseudoIndex`."""

    def __init__(
        self,
        index: PseudoIndex,
        *,
        min_vote_fraction: float = 0.5,
        kmer_stride: int = 4,
    ) -> None:
        if not 0.0 < min_vote_fraction <= 1.0:
            raise ValueError("min_vote_fraction must be in (0, 1]")
        if kmer_stride < 1:
            raise ValueError("kmer_stride must be >= 1")
        self.index = index
        self.min_vote_fraction = min_vote_fraction
        self.kmer_stride = kmer_stride

    def _vote(self, seq: np.ndarray) -> tuple[dict[int, int], int]:
        codes = kmer_codes(seq, self.index.k)[:: self.kmer_stride]
        votes: dict[int, int] = {}
        considered = 0
        for code in codes:
            if code < 0:
                continue
            considered += 1
            hits = self.index.kmer_map.get(int(code))
            if not hits:
                continue
            for t in hits:
                votes[t] = votes.get(t, 0) + 1
        return votes, considered

    def assign_read(self, record: FastqRecord) -> PseudoAssignment:
        """Pseudo-align one read (both orientations, best vote wins)."""
        best_votes: dict[int, int] = {}
        best_considered = 1
        for seq in (record.sequence, reverse_complement(record.sequence)):
            votes, considered = self._vote(seq)
            if votes and (
                not best_votes
                or max(votes.values()) / max(considered, 1)
                > max(best_votes.values()) / best_considered
            ):
                best_votes, best_considered = votes, max(considered, 1)
        if not best_votes:
            return PseudoAssignment(record.read_id, False, None, 0)
        top = max(best_votes.values())
        if top / best_considered < self.min_vote_fraction:
            return PseudoAssignment(record.read_id, False, None, 0)
        winners = [t for t, v in best_votes.items() if v == top]
        genes = {self.index.gene_ids[t] for t in winners}
        gene_id = genes.pop() if len(genes) == 1 else None
        return PseudoAssignment(record.read_id, True, gene_id, len(winners))

    def run(self, records: Iterable[FastqRecord]) -> PseudoRunResult:
        """Pseudo-align a stream of reads; only final statistics come out."""
        assignments = [self.assign_read(r) for r in records]
        gene_counts: dict[str, int] = {g: 0 for g in set(self.index.gene_ids)}
        for a in assignments:
            if a.mapped and a.gene_id is not None:
                gene_counts[a.gene_id] += 1
        return PseudoRunResult(assignments=assignments, gene_counts=gene_counts)
