"""A working STAR-like spliced RNA-seq aligner.

This package reimplements, at laptop scale, every aligner mechanism the
paper's optimizations touch:

* ``genomeGenerate`` — an uncompressed-suffix-array genome index whose size
  scales with the FASTA (so Ensembl release choice changes index size,
  memory footprint, and search cost);
* sequential Maximal Mappable Prefix (MMP) seed search, STAR's core idea
  (Dobin et al. 2013);
* mismatch-budgeted extension and splice-aware two-seed stitching with
  canonical GT..AG motifs and an annotated junction database;
* ``--quantMode GeneCounts`` producing a ``ReadsPerGene.out.tab``;
* ``Log.progress.out`` / ``Log.final.out`` emission, which is the hook the
  early-stopping optimization consumes;
* a Salmon-like k-mer pseudo-aligner baseline that — as the paper's
  conclusions note — does *not* expose a progress mapping rate.
"""

from repro.align.backend import (
    AlignerBackend,
    EngineBackend,
    PairedAlignerBackend,
    ReadBatch,
    SerialAlignerBackend,
    resolve_backend,
)
from repro.align.counts import GeneCounts, GeneCountsPartial, STRAND_COLUMNS
from repro.align.engine import (
    ParallelStarAligner,
    SharedIndexBlocks,
    SharedIndexSpec,
    attach_shared_index,
)
from repro.align.extend import ScoringParams, ungapped_extend
from repro.align.index import GenomeIndex, genome_generate
from repro.align.paired import (
    PairedOutcome,
    PairedParameters,
    PairedRunResult,
    PairedStarAligner,
    PairStatus,
)
from repro.align.outcome import AlignmentOutcome
from repro.align.pseudo import PseudoAligner, PseudoIndex
from repro.align.sam import (
    SamRecord,
    parse_sam,
    to_paired_sam_lines,
    to_sam_line,
    write_paired_sam,
    write_sam,
)
from repro.align.seeds import SeedHit, maximal_mappable_prefix
from repro.align.star import (
    AlignmentStatus,
    ReadAlignment,
    RunAborted,
    StarAligner,
    StarParameters,
    StarRunResult,
)
from repro.align.suffix_array import build_suffix_array, sa_search

__all__ = [
    "AlignerBackend",
    "AlignmentOutcome",
    "AlignmentStatus",
    "EngineBackend",
    "GeneCounts",
    "GeneCountsPartial",
    "GenomeIndex",
    "PairStatus",
    "PairedAlignerBackend",
    "PairedOutcome",
    "PairedParameters",
    "PairedRunResult",
    "PairedStarAligner",
    "ParallelStarAligner",
    "PseudoAligner",
    "PseudoIndex",
    "ReadAlignment",
    "ReadBatch",
    "RunAborted",
    "STRAND_COLUMNS",
    "SamRecord",
    "ScoringParams",
    "SeedHit",
    "SerialAlignerBackend",
    "SharedIndexBlocks",
    "SharedIndexSpec",
    "StarAligner",
    "StarParameters",
    "StarRunResult",
    "attach_shared_index",
    "build_suffix_array",
    "genome_generate",
    "maximal_mappable_prefix",
    "parse_sam",
    "resolve_backend",
    "sa_search",
    "to_paired_sam_lines",
    "to_sam_line",
    "ungapped_extend",
    "write_paired_sam",
    "write_sam",
]
