"""The STAR-like aligner driver.

Ties the pieces together the way STAR 2.7 does at the architectural level:
MMP seeding against the suffix-array index, mismatch-budgeted extension,
splice stitching, both-strand search, unique/multi/unmapped classification
with a multimapping cap, optional GeneCounts quantification, periodic
``Log.progress.out`` snapshots, and a monitor hook that can abort the run —
the integration point for the paper's early-stopping optimization.
"""

from __future__ import annotations

import enum
import itertools
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.align.counts import GeneCounts
from repro.align.extend import ScoringParams, ungapped_extend
from repro.align.index import GenomeIndex
from repro.align.progress import (
    FinalLogStats,
    ProgressRecord,
    write_final_log,
    write_progress_log,
)
from repro.align.seeds import maximal_mappable_prefix
from repro.align.splice import (
    DEFAULT_MAX_INTRON,
    DEFAULT_MIN_INTRON,
    SplicedAlignment,
    stitch_spliced,
)
from repro.genome.alphabet import reverse_complement
from repro.genome.annotation import Strand
from repro.genome.model import SequenceRegion
from repro.reads.fastq import FastqRecord


class AlignmentStatus(enum.Enum):
    """Classification of one read, following STAR's Log.final.out buckets."""

    UNIQUE = "unique"
    MULTIMAPPED = "multimapped"
    TOO_MANY_LOCI = "too_many_loci"
    UNMAPPED = "unmapped"

    @property
    def is_mapped(self) -> bool:
        """Counts toward the progress file's 'mapped %' (unique + multi)."""
        return self in (AlignmentStatus.UNIQUE, AlignmentStatus.MULTIMAPPED)


@dataclass(frozen=True)
class StarParameters:
    """Run parameters (named after the corresponding STAR options)."""

    scoring: ScoringParams = field(default_factory=ScoringParams)
    #: ``--outFilterMultimapNmax``: more loci than this → too_many_loci
    multimap_nmax: int = 10
    #: cap on SA hits examined per seed (``--seedMultimapNmax`` spirit)
    seed_multimap_nmax: int = 50
    min_intron: int = DEFAULT_MIN_INTRON
    max_intron: int = DEFAULT_MAX_INTRON
    #: emit a progress record every N reads
    progress_every: int = 1000
    #: compute GeneCounts (``--quantMode GeneCounts``)
    quant_gene_counts: bool = True
    #: route reads through the vectorized batch core
    #: (:mod:`repro.align.batch`); the per-read path stays available as
    #: the reference oracle
    batch_align: bool = True
    #: reads per batch-core call inside :meth:`StarAligner.run`
    align_batch_size: int = 512

    def __post_init__(self) -> None:
        if self.multimap_nmax < 1:
            raise ValueError("multimap_nmax must be >= 1")
        if self.progress_every < 1:
            raise ValueError("progress_every must be >= 1")
        if self.align_batch_size < 1:
            raise ValueError("align_batch_size must be >= 1")


@dataclass(frozen=True)
class ReadAlignment:
    """Result of aligning one read."""

    read_id: str
    status: AlignmentStatus
    strand: Strand | None = None
    score: int = 0
    n_loci: int = 0
    mismatches: int = 0
    blocks: tuple[SequenceRegion, ...] = ()
    spliced: bool = False


@dataclass(frozen=True)
class _Candidate:
    """Internal: one scored placement of one read orientation."""

    score: int
    genome_start: int
    mismatches: int
    blocks: tuple[tuple[int, int], ...]  # absolute (start, end) pairs
    spliced: bool


class RunAborted(Exception):
    """Raised internally when the monitor requests termination."""


@dataclass
class StarRunResult:
    """Everything a run produces (STAR's output directory, in-memory)."""

    outcomes: list[ReadAlignment]
    progress: list[ProgressRecord]
    final: FinalLogStats
    gene_counts: GeneCounts | None
    aborted: bool

    @property
    def mapped_fraction(self) -> float:
        return self.final.mapped_fraction

    def write_outputs(self, out_dir: Path | str) -> dict[str, Path]:
        """Write Log.progress.out, Log.final.out and ReadsPerGene.out.tab."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "progress": out_dir / "Log.progress.out",
            "final": out_dir / "Log.final.out",
        }
        write_progress_log(self.progress, paths["progress"])
        write_final_log(self.final, paths["final"])
        if self.gene_counts is not None:
            paths["counts"] = out_dir / "ReadsPerGene.out.tab"
            self.gene_counts.write_tab(paths["counts"])
        return paths

    def write_sam(
        self,
        records: list[FastqRecord],
        index: GenomeIndex,
        path: Path | str,
    ) -> int:
        """Write ``Aligned.out.sam`` for this run's outcomes.

        ``records`` must be the same reads the run aligned, in order; an
        aborted run accepts the full list and writes only the processed
        prefix.
        """
        from repro.align.sam import write_sam

        processed = records[: len(self.outcomes)]
        return write_sam(processed, self.outcomes, index, path)


#: Monitor signature: receives each progress record, returns False to abort.
ProgressMonitorHook = Callable[[ProgressRecord], bool]


class StarAligner:
    """Spliced aligner over one :class:`~repro.align.index.GenomeIndex`."""

    def __init__(
        self, index: GenomeIndex, parameters: StarParameters | None = None
    ) -> None:
        self.index = index
        self.parameters = parameters or StarParameters()

    # -- single read ---------------------------------------------------------

    def align_read(self, record: FastqRecord) -> ReadAlignment:
        """Align one read on both strands; classify per STAR's rules."""
        fwd = record.sequence
        if fwd.size == 0:
            # zero-length reads (aggressive trimming, malformed FASTQ) can
            # never seed: skip the reverse complement and candidate search
            return ReadAlignment(record.read_id, AlignmentStatus.UNMAPPED)
        rev = reverse_complement(fwd)
        fwd_cands = self._align_oriented(fwd)
        rev_cands = self._align_oriented(rev)
        return self._classify(record.read_id, fwd_cands, rev_cands)

    def align_batch(self, records: list[FastqRecord]) -> list[ReadAlignment]:
        """Align a list of reads; uses the batch core when enabled.

        Dispatching whole batches amortizes per-read Python overhead into
        vectorized kernels (see :mod:`repro.align.batch`); results are
        bit-identical to mapping :meth:`align_read` over ``records``.
        """
        if self.parameters.batch_align:
            from repro.align.batch import align_read_batch

            return align_read_batch(self, records)
        return [self.align_read(record) for record in records]

    def _classify(
        self,
        read_id: str,
        fwd_cands: list[_Candidate],
        rev_cands: list[_Candidate],
    ) -> ReadAlignment:
        """Classify one read's candidate sets per STAR's rules."""
        if not fwd_cands and not rev_cands:
            return ReadAlignment(read_id, AlignmentStatus.UNMAPPED)
        if (
            len(fwd_cands) + len(rev_cands) == 1
            and self.parameters.multimap_nmax >= 1
        ):
            # one candidate: it is the best (and only) locus — skip the
            # general case's set/minimum machinery, which dominates
            # classification time on typical unique-hit workloads
            chosen = fwd_cands[0] if fwd_cands else rev_cands[0]
            if chosen.score < 0:
                return ReadAlignment(read_id, AlignmentStatus.UNMAPPED)
            strand = Strand.FORWARD if fwd_cands else Strand.REVERSE
            return self._finish(
                read_id, AlignmentStatus.UNIQUE, strand, chosen, 1
            )
        best_score = -1
        for cand in fwd_cands + rev_cands:
            best_score = max(best_score, cand.score)
        if best_score < 0:
            return ReadAlignment(read_id, AlignmentStatus.UNMAPPED)

        best_fwd = [c for c in fwd_cands if c.score == best_score]
        best_rev = [c for c in rev_cands if c.score == best_score]
        # distinct loci across both strands
        loci = {(c.genome_start, True) for c in best_fwd} | {
            (c.genome_start, False) for c in best_rev
        }
        n_loci = len(loci)
        if n_loci > self.parameters.multimap_nmax:
            return ReadAlignment(
                read_id, AlignmentStatus.TOO_MANY_LOCI, n_loci=n_loci
            )
        status = (
            AlignmentStatus.UNIQUE if n_loci == 1 else AlignmentStatus.MULTIMAPPED
        )
        chosen = min(
            best_fwd + best_rev, key=lambda c: (c.mismatches, c.genome_start)
        )
        strand = Strand.FORWARD if chosen in best_fwd else Strand.REVERSE
        return self._finish(read_id, status, strand, chosen, n_loci)

    def _finish(
        self,
        read_id: str,
        status: AlignmentStatus,
        strand: Strand,
        chosen: _Candidate,
        n_loci: int,
    ) -> ReadAlignment:
        """Materialize the chosen candidate into a ReadAlignment."""
        blocks = []
        for start, end in chosen.blocks:
            contig, local = self.index.to_contig_coords(start)
            blocks.append(SequenceRegion(contig, local, local + (end - start)))
        return ReadAlignment(
            read_id=read_id,
            status=status,
            strand=strand,
            score=chosen.score,
            n_loci=n_loci,
            mismatches=chosen.mismatches,
            blocks=tuple(blocks),
            spliced=chosen.spliced,
        )

    def _align_oriented(self, read: np.ndarray) -> list[_Candidate]:
        """All acceptable placements of one read orientation."""
        params = self.parameters
        scoring = params.scoring
        n = int(read.size)
        # one numpy->list conversion per orientation, shared by the prefix
        # seed and the error-bridge re-seed below
        read_list = read.tolist()
        seed = maximal_mappable_prefix(
            self.index, read, max_hits=params.seed_multimap_nmax,
            read_list=read_list,
        )
        candidates: list[_Candidate] = []
        if seed.length == 0:
            return candidates

        seen_starts: set[int] = set()
        for p in seed.positions:
            # Path 1: contiguous placement anchored at the seed position.
            ext = ungapped_extend(
                self.index, read, p, max_mismatches=scoring.max_mismatches
            )
            if ext.ok and scoring.accepts(ext.matched, ext.mismatches, n):
                if p not in seen_starts:
                    seen_starts.add(p)
                    candidates.append(
                        _Candidate(
                            score=scoring.score(ext.matched, ext.mismatches),
                            genome_start=p,
                            mismatches=ext.mismatches,
                            blocks=((p, p + n),),
                            spliced=False,
                        )
                    )
                continue
            # Path 2: spliced placement — prefix here, remainder after an intron.
            if seed.length < n:
                spliced = stitch_spliced(
                    self.index,
                    read,
                    seed.length,
                    p,
                    scoring=scoring,
                    min_intron=params.min_intron,
                    max_intron=params.max_intron,
                )
                if spliced is not None and scoring.accepts(
                    spliced.aligned_length - spliced.mismatches,
                    spliced.mismatches,
                    n,
                ):
                    candidates.append(self._spliced_candidate(spliced, scoring))

        # Path 3: error bridge — a mismatch near the read start truncates the
        # prefix seed; re-seed one base past it and back-project the start.
        if not candidates and 0 < seed.length < n:
            bridge_start = seed.length + 1
            if n - bridge_start >= 12:
                second = maximal_mappable_prefix(
                    self.index,
                    read,
                    read_start=bridge_start,
                    max_hits=params.seed_multimap_nmax,
                    read_list=read_list,
                )
                for q in second.positions:
                    p = q - bridge_start
                    if p < 0 or p in seen_starts:
                        continue
                    ext = ungapped_extend(
                        self.index, read, p, max_mismatches=scoring.max_mismatches
                    )
                    if ext.ok and scoring.accepts(ext.matched, ext.mismatches, n):
                        seen_starts.add(p)
                        candidates.append(
                            _Candidate(
                                score=scoring.score(ext.matched, ext.mismatches),
                                genome_start=p,
                                mismatches=ext.mismatches,
                                blocks=((p, p + n),),
                                spliced=False,
                            )
                        )
        return candidates

    def _spliced_candidate(
        self, spliced: SplicedAlignment, scoring: ScoringParams
    ) -> _Candidate:
        matched = spliced.aligned_length - spliced.mismatches
        return _Candidate(
            score=scoring.score(matched, spliced.mismatches),
            genome_start=spliced.genome_start,
            mismatches=spliced.mismatches,
            blocks=tuple(
                (s.genome_start, s.genome_start + s.length) for s in spliced.segments
            ),
            spliced=True,
        )

    # -- whole run -------------------------------------------------------------

    def _outcome_stream(self, records: list[FastqRecord]):
        """Yield one outcome per record, batching through the vector core.

        Per-read progress/abort bookkeeping in :meth:`run` stays intact:
        consumers pull one outcome at a time, so an abort mid-batch simply
        discards the rest of that batch's (already bit-identical) results.
        """
        params = self.parameters
        if not params.batch_align:
            for record in records:
                yield self.align_read(record)
            return
        size = params.align_batch_size
        for start in range(0, len(records), size):
            yield from self.align_batch(records[start : start + size])

    def _record_outcome_pairs(self, records: Iterable[FastqRecord]):
        """Yield ``(record, outcome)`` pairs from any record iterable.

        The lazy counterpart of ``zip(records, _outcome_stream(records))``
        — it pulls records as needed (at most one ``align_batch_size``
        group ahead), so a streamed chunk feed aligns as bytes arrive.
        Batch boundaries match :meth:`_outcome_stream` exactly, and the
        batch core is boundary-invariant anyway, so results are
        byte-identical to the list path.
        """
        params = self.parameters
        if not params.batch_align:
            for record in records:
                yield record, self.align_read(record)
            return
        size = params.align_batch_size
        it = iter(records)
        while True:
            batch = list(itertools.islice(it, size))
            if not batch:
                return
            yield from zip(batch, self.align_batch(batch))

    def run(
        self,
        records: Iterable[FastqRecord],
        *,
        reads_total: int | None = None,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> StarRunResult:
        """Align a stream of reads, reporting progress and honouring a monitor.

        ``monitor`` receives every :class:`ProgressRecord`; returning False
        aborts the run (the early-stopping integration point).  Partial
        results are still classified, logged, and (if ``out_dir`` is given)
        written out — matching how the paper's pipeline salvages statistics
        from terminated runs.

        When ``reads_total`` is given, ``records`` may be a lazy iterable
        (e.g. a streamed chunk feed): reads are pulled as consumed
        instead of materialized up front, with byte-identical results.
        """
        params = self.parameters
        if reads_total is None:
            records = list(records)
            total = len(records)
        else:
            total = reads_total
        started = clock()

        outcomes: list[ReadAlignment] = []
        progress: list[ProgressRecord] = []
        counts = (
            GeneCounts(self.index.annotation)
            if params.quant_gene_counts and self.index.annotation is not None
            else None
        )
        unique = multi = too_many = unmapped = spliced_n = 0
        mismatch_bases = 0
        aligned_bases = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=unique,
                mapped_multi=multi,
            )

        for i, (record, outcome) in enumerate(
            self._record_outcome_pairs(records)
        ):
            outcomes.append(outcome)
            if outcome.status is AlignmentStatus.UNIQUE:
                unique += 1
                if outcome.spliced:
                    spliced_n += 1
                mismatch_bases += outcome.mismatches
                aligned_bases += record.length
                if counts is not None:
                    counts.record_unique(list(outcome.blocks), outcome.strand)
            elif outcome.status is AlignmentStatus.MULTIMAPPED:
                multi += 1
                if counts is not None:
                    counts.record_multimapped()
            elif outcome.status is AlignmentStatus.TOO_MANY_LOCI:
                too_many += 1
                if counts is not None:
                    counts.record_multimapped()
            else:
                unmapped += 1
                if counts is not None:
                    counts.record_unmapped()

            if (i + 1) % params.progress_every == 0:
                rec = snapshot()
                progress.append(rec)
                if monitor is not None and not monitor(rec):
                    aborted = True
                    break

        # closing snapshot (STAR writes a last progress line at completion)
        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=unique,
            mapped_multi=multi,
            too_many_loci=too_many,
            unmapped=unmapped,
            mismatch_rate=(mismatch_bases / aligned_bases) if aligned_bases else 0.0,
            spliced_reads=spliced_n,
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        result = StarRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
        if out_dir is not None:
            result.write_outputs(out_dir)
        return result
