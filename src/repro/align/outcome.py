"""The run-result surface shared by every whole-run alignment backend.

:class:`~repro.align.star.StarRunResult` (single-end) and
:class:`~repro.align.paired.PairedRunResult` (paired-end) used to share
their consumer-facing surface only *by convention* — the pipeline, the
early-stopping monitor plumbing, and the parallel engine all relied on a
code comment promising that both "expose ``final``, ``aborted``,
``gene_counts`` and ``mapped_fraction``".  :class:`AlignmentOutcome`
states that contract as a structural :class:`~typing.Protocol`, so new
backends (and the resilience layer that wraps them) are typed against
one interface instead of a union of concrete classes.

Naming note: through v0 the name ``AlignmentOutcome`` referred to the
*per-read* classification record; that class is now
:class:`~repro.align.star.ReadAlignment`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.align.counts import GeneCounts
    from repro.align.progress import FinalLogStats, ProgressRecord

__all__ = ["AlignmentOutcome"]


@runtime_checkable
class AlignmentOutcome(Protocol):
    """What one accession's completed (or aborted) alignment run exposes.

    Structural — any object with these members satisfies it; both
    :class:`~repro.align.star.StarRunResult` and
    :class:`~repro.align.paired.PairedRunResult` do.
    """

    #: STAR's ``Log.final.out`` aggregate statistics
    final: FinalLogStats
    #: ``Log.progress.out`` snapshots, in read order
    progress: list[ProgressRecord]
    #: ``ReadsPerGene.out.tab`` counts, or None when quantification is off
    gene_counts: GeneCounts | None
    #: True when the early-stopping monitor terminated the run
    aborted: bool

    @property
    def mapped_fraction(self) -> float:
        """Final mapping rate — the atlas acceptance-bar input."""
        ...
