"""Paired-end alignment on top of the single-read STAR-like core.

STAR aligns mates jointly; this implementation takes the standard
two-phase approximation — align each mate with the single-read machinery,
then *pair* the placements: a proper pair has both mates on the same
contig, on opposite strands, in inward-facing (FR) orientation, with a
template length within configured bounds.  Pair-level classification and
GeneCounts count each *pair* once, as STAR does with ``--quantMode
GeneCounts`` on paired data.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Iterable

import time

from repro.align.counts import GeneCounts
from repro.align.progress import FinalLogStats, ProgressRecord
from repro.align.star import (
    ReadAlignment,
    AlignmentStatus,
    StarAligner,
)
from repro.genome.annotation import Strand
from repro.reads.fastq import FastqRecord
from repro.util.validation import check_positive


class PairStatus(enum.Enum):
    """Pair-level classification."""

    PROPER_PAIR = "proper_pair"  # both unique, FR orientation, TLEN in bounds
    DISCORDANT = "discordant"  # both mapped uniquely, geometry wrong
    ONE_MATE = "one_mate"  # exactly one mate mapped uniquely
    MULTIMAPPED = "multimapped"  # either mate multimapped (no unique pair)
    UNMAPPED = "unmapped"  # neither mate mapped

    @property
    def is_mapped(self) -> bool:
        """Counts toward the progress mapping rate (STAR counts pairs with
        at least a unique or multi placement)."""
        return self in (
            PairStatus.PROPER_PAIR,
            PairStatus.DISCORDANT,
            PairStatus.ONE_MATE,
            PairStatus.MULTIMAPPED,
        )


@dataclass(frozen=True)
class PairedParameters:
    """Pairing geometry (STAR option analogues)."""

    #: accepted template length range (``--alignMatesGapMax`` spirit)
    min_template: int = 50
    max_template: int = 2000
    progress_every: int = 500
    quant_gene_counts: bool = True

    def __post_init__(self) -> None:
        check_positive("min_template", self.min_template)
        if self.max_template < self.min_template:
            raise ValueError("max_template must be >= min_template")
        check_positive("progress_every", self.progress_every)


@dataclass(frozen=True)
class PairedOutcome:
    """Result of aligning one read pair."""

    pair_id: str
    status: PairStatus
    mate1: ReadAlignment
    mate2: ReadAlignment
    template_length: int | None = None

    @property
    def contig(self) -> str | None:
        if self.mate1.blocks:
            return self.mate1.blocks[0].contig
        if self.mate2.blocks:
            return self.mate2.blocks[0].contig
        return None


@dataclass
class PairedRunResult:
    """Whole-run output for a paired sample."""

    outcomes: list[PairedOutcome]
    progress: list[ProgressRecord]
    final: FinalLogStats
    gene_counts: GeneCounts | None
    aborted: bool

    @property
    def proper_pair_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return (
            sum(o.status is PairStatus.PROPER_PAIR for o in self.outcomes)
            / len(self.outcomes)
        )

    @property
    def mapped_fraction(self) -> float:
        return self.final.mapped_fraction

    def template_lengths(self) -> list[int]:
        """TLENs of proper pairs (insert-size distribution)."""
        return [
            o.template_length
            for o in self.outcomes
            if o.status is PairStatus.PROPER_PAIR and o.template_length
        ]


def _span(outcome: ReadAlignment) -> tuple[int, int] | None:
    """(start, end) of an outcome's footprint on its contig."""
    if not outcome.blocks:
        return None
    return outcome.blocks[0].start, outcome.blocks[-1].end


class PairedStarAligner:
    """Paired-end façade over a single-read :class:`StarAligner`."""

    def __init__(
        self,
        aligner: StarAligner,
        parameters: PairedParameters | None = None,
    ) -> None:
        self.aligner = aligner
        self.parameters = parameters or PairedParameters()

    def classify_pair(
        self, m1: ReadAlignment, m2: ReadAlignment
    ) -> tuple[PairStatus, int | None]:
        """Pair two mate outcomes into a status and template length."""
        u1 = m1.status is AlignmentStatus.UNIQUE
        u2 = m2.status is AlignmentStatus.UNIQUE
        mapped1 = m1.status.is_mapped
        mapped2 = m2.status.is_mapped
        if not mapped1 and not mapped2:
            return PairStatus.UNMAPPED, None
        if u1 and u2:
            s1, s2 = _span(m1), _span(m2)
            same_contig = (
                m1.blocks[0].contig == m2.blocks[0].contig
            )
            opposite = (
                m1.strand is not None
                and m2.strand is not None
                and m1.strand is not m2.strand
            )
            if same_contig and opposite and s1 and s2:
                left, right = (s1, s2) if s1[0] <= s2[0] else (s2, s1)
                tlen = right[1] - left[0]
                # FR orientation: the leftmost mate must be the forward one
                forward_first = (
                    (m1.strand is Strand.FORWARD and s1[0] <= s2[0])
                    or (m2.strand is Strand.FORWARD and s2[0] <= s1[0])
                )
                if (
                    forward_first
                    and self.parameters.min_template
                    <= tlen
                    <= self.parameters.max_template
                ):
                    return PairStatus.PROPER_PAIR, tlen
            return PairStatus.DISCORDANT, None
        if (u1 and not mapped2) or (u2 and not mapped1):
            return PairStatus.ONE_MATE, None
        return PairStatus.MULTIMAPPED, None

    def align_pair(
        self, record1: FastqRecord, record2: FastqRecord
    ) -> PairedOutcome:
        """Align both mates and pair them."""
        m1 = self.aligner.align_read(record1)
        m2 = self.aligner.align_read(record2)
        return self._pair_outcome(record1, m1, m2)

    def _pair_outcome(
        self, record1: FastqRecord, m1: ReadAlignment, m2: ReadAlignment
    ) -> PairedOutcome:
        """Pair two already-aligned mate outcomes."""
        status, tlen = self.classify_pair(m1, m2)
        pair_id = record1.read_id.rsplit("/", 1)[0]
        return PairedOutcome(
            pair_id=pair_id, status=status, mate1=m1, mate2=m2,
            template_length=tlen,
        )

    def run(
        self,
        mate1: list[FastqRecord],
        mate2: list[FastqRecord],
        *,
        monitor: Callable[[ProgressRecord], bool] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> PairedRunResult:
        """Align a paired sample with progress reporting and early abort.

        Progress counts *pairs*; the monitor hook and abort semantics match
        the single-end driver, so :class:`~repro.core.early_stopping.
        EarlyStopMonitor` plugs in unchanged.
        """
        if len(mate1) != len(mate2):
            raise ValueError("mate lists must have equal length")
        params = self.parameters
        total = len(mate1)
        started = clock()
        outcomes: list[PairedOutcome] = []
        progress: list[ProgressRecord] = []
        counts = (
            GeneCounts(self.aligner.index.annotation)
            if params.quant_gene_counts and self.aligner.index.annotation is not None
            else None
        )
        proper = one_mate = discordant = multi = unmapped = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=proper + one_mate + discordant,
                mapped_multi=multi,
            )

        # Both mate lists stream through the batch core independently
        # (see StarAligner._outcome_stream); pairing happens per-pair so
        # progress/abort bookkeeping is untouched, and an abort mid-batch
        # just discards the rest of that batch's results.
        mate_stream = zip(
            self.aligner._outcome_stream(mate1),
            self.aligner._outcome_stream(mate2),
        )
        for i, (r1, (m1, m2)) in enumerate(zip(mate1, mate_stream)):
            outcome = self._pair_outcome(r1, m1, m2)
            outcomes.append(outcome)
            if outcome.status is PairStatus.PROPER_PAIR:
                proper += 1
                if counts is not None:
                    blocks = list(outcome.mate1.blocks) + list(outcome.mate2.blocks)
                    counts.record_unique(blocks, outcome.mate1.strand)
            elif outcome.status is PairStatus.ONE_MATE:
                one_mate += 1
                if counts is not None:
                    unique = (
                        outcome.mate1
                        if outcome.mate1.status is AlignmentStatus.UNIQUE
                        else outcome.mate2
                    )
                    counts.record_unique(list(unique.blocks), unique.strand)
            elif outcome.status is PairStatus.DISCORDANT:
                discordant += 1
                if counts is not None:
                    counts.record_multimapped()
            elif outcome.status is PairStatus.MULTIMAPPED:
                multi += 1
                if counts is not None:
                    counts.record_multimapped()
            else:
                unmapped += 1
                if counts is not None:
                    counts.record_unmapped()
            if (i + 1) % params.progress_every == 0:
                rec = snapshot()
                progress.append(rec)
                if monitor is not None and not monitor(rec):
                    aborted = True
                    break

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=proper + one_mate + discordant,
            mapped_multi=multi,
            too_many_loci=0,
            unmapped=unmapped,
            mismatch_rate=0.0,
            spliced_reads=sum(
                o.mate1.spliced or o.mate2.spliced for o in outcomes
            ),
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        return PairedRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
