"""SAM output — STAR's ``Aligned.out.sam``.

Renders alignment outcomes as SAM 1.6 records: proper FLAG bits,
1-based POS, CIGAR with ``M``/``S``/``N`` operators (``N`` encodes the
intron of a spliced alignment, exactly as STAR emits junction-spanning
reads), ``NH`` (number of hits), ``AS`` (alignment score) and ``nM``
(mismatches) tags — the tags STAR writes by default.  A parser reads the
subset this writer produces, so outputs round-trip for tests and
downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.align.index import GenomeIndex
from repro.align.star import ReadAlignment, AlignmentStatus
from repro.genome.annotation import Strand
from repro.reads.fastq import FastqRecord

FLAG_PAIRED = 0x1
FLAG_PROPER_PAIR = 0x2
FLAG_UNMAPPED = 0x4
FLAG_MATE_UNMAPPED = 0x8
FLAG_REVERSE = 0x10
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST_IN_PAIR = 0x40
FLAG_SECOND_IN_PAIR = 0x80
FLAG_SECONDARY = 0x100


@dataclass(frozen=True)
class SamRecord:
    """One parsed SAM alignment line."""

    qname: str
    flag: int
    rname: str
    pos: int  # 1-based; 0 for unmapped
    mapq: int
    cigar: str
    seq: str
    qual: str
    tags: dict[str, str | int]

    @property
    def is_unmapped(self) -> bool:
        return bool(self.flag & FLAG_UNMAPPED)

    @property
    def is_reverse(self) -> bool:
        return bool(self.flag & FLAG_REVERSE)


def _mapq(status: AlignmentStatus, n_loci: int) -> int:
    """STAR's MAPQ convention: 255 unique, 3 for 2 loci, 1 for 3-4, 0 else."""
    if status is AlignmentStatus.UNIQUE:
        return 255
    if n_loci == 2:
        return 3
    if n_loci in (3, 4):
        return 1
    return 0


def cigar_for(outcome: ReadAlignment, read_length: int) -> str:
    """CIGAR string for one outcome.

    Contiguous reads are ``<L>M``; two-block spliced reads are
    ``<L1>M<intron>N<L2>M``.  Unmapped reads get ``*``.
    """
    if not outcome.status.is_mapped or not outcome.blocks:
        return "*"
    blocks = outcome.blocks
    if len(blocks) == 1:
        return f"{blocks[0].length}M"
    parts: list[str] = []
    for i, block in enumerate(blocks):
        if i > 0:
            gap = block.start - blocks[i - 1].end
            parts.append(f"{gap}N")
        parts.append(f"{block.length}M")
    return "".join(parts)


def sam_header(index: GenomeIndex, *, program: str = "repro-star") -> str:
    """@HD/@SQ/@PG header lines for one index's contigs."""
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for i, name in enumerate(index.names):
        length = int(index.offsets[i + 1] - index.offsets[i])
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append(f"@PG\tID:{program}\tPN:{program}")
    return "\n".join(lines) + "\n"


def to_sam_line(record: FastqRecord, outcome: ReadAlignment) -> str:
    """Render one read's alignment as a SAM line."""
    if outcome.status.is_mapped and outcome.blocks:
        flag = FLAG_REVERSE if outcome.strand is Strand.REVERSE else 0
        rname = outcome.blocks[0].contig
        pos = outcome.blocks[0].start + 1  # SAM is 1-based
        cigar = cigar_for(outcome, record.length)
        mapq = _mapq(outcome.status, outcome.n_loci)
        tags = (
            f"NH:i:{outcome.n_loci}\tAS:i:{outcome.score}"
            f"\tnM:i:{outcome.mismatches}"
        )
    else:
        flag = FLAG_UNMAPPED
        rname, pos, cigar, mapq = "*", 0, "*", 0
        tags = "NH:i:0\tAS:i:0\tnM:i:0"
    return (
        f"{record.read_id}\t{flag}\t{rname}\t{pos}\t{mapq}\t{cigar}"
        f"\t*\t0\t0\t{record.sequence_str}\t{record.quality_str}\t{tags}"
    )


def write_sam(
    records: list[FastqRecord],
    outcomes: list[ReadAlignment],
    index: GenomeIndex,
    path: Path | str,
) -> int:
    """Write ``Aligned.out.sam``; returns the number of alignment lines."""
    if len(records) != len(outcomes):
        raise ValueError(
            f"{len(records)} reads but {len(outcomes)} outcomes"
        )
    with open(path, "w") as fh:
        fh.write(sam_header(index))
        for record, outcome in zip(records, outcomes):
            fh.write(to_sam_line(record, outcome) + "\n")
    return len(records)


def to_paired_sam_lines(
    record1: FastqRecord,
    record2: FastqRecord,
    outcome: "PairedOutcome",
) -> tuple[str, str]:
    """Render one read pair as two SAM lines with full pair semantics.

    Sets the pair flag bits (0x1, 0x2 for proper pairs, 0x40/0x80 mate
    ordinals, mate-unmapped/mate-reverse), cross-references RNEXT/PNEXT
    (``=`` when both mates share a contig), and writes signed TLEN with
    the leftmost mate positive, as SAM 1.6 specifies.
    """
    from repro.align.paired import PairStatus

    def mate_fields(outcome_self, outcome_mate, *, first: bool) -> list[str]:
        flag = FLAG_PAIRED | (FLAG_FIRST_IN_PAIR if first else FLAG_SECOND_IN_PAIR)
        self_mapped = outcome_self.status.is_mapped and outcome_self.blocks
        mate_mapped = outcome_mate.status.is_mapped and outcome_mate.blocks
        if outcome.status is PairStatus.PROPER_PAIR:
            flag |= FLAG_PROPER_PAIR
        if not self_mapped:
            flag |= FLAG_UNMAPPED
        if not mate_mapped:
            flag |= FLAG_MATE_UNMAPPED
        if self_mapped and outcome_self.strand is Strand.REVERSE:
            flag |= FLAG_REVERSE
        if mate_mapped and outcome_mate.strand is Strand.REVERSE:
            flag |= FLAG_MATE_REVERSE

        if self_mapped:
            rname = outcome_self.blocks[0].contig
            pos = outcome_self.blocks[0].start + 1
            cigar = cigar_for(outcome_self, 0)
            mapq = _mapq(outcome_self.status, outcome_self.n_loci)
        else:
            rname, pos, cigar, mapq = "*", 0, "*", 0
        if mate_mapped:
            mate_rname = outcome_mate.blocks[0].contig
            pnext = outcome_mate.blocks[0].start + 1
            rnext = "=" if (self_mapped and mate_rname == rname) else mate_rname
        else:
            rnext, pnext = "*", 0

        tlen = 0
        if outcome.status is PairStatus.PROPER_PAIR and outcome.template_length:
            # leftmost mate gets +TLEN, the other -TLEN
            self_start = outcome_self.blocks[0].start
            mate_start = outcome_mate.blocks[0].start
            sign = 1 if self_start <= mate_start else -1
            tlen = sign * outcome.template_length
        return [
            str(flag), rname, str(pos), str(mapq), cigar,
            rnext, str(pnext), str(tlen),
        ]

    lines = []
    for record, first in ((record1, True), (record2, False)):
        outcome_self = outcome.mate1 if first else outcome.mate2
        outcome_mate = outcome.mate2 if first else outcome.mate1
        fields = mate_fields(outcome_self, outcome_mate, first=first)
        tags = (
            f"NH:i:{outcome_self.n_loci}\tAS:i:{outcome_self.score}"
            f"\tnM:i:{outcome_self.mismatches}"
        )
        qname = outcome.pair_id
        lines.append(
            "\t".join(
                [qname] + fields + [record.sequence_str, record.quality_str, tags]
            )
        )
    return lines[0], lines[1]


def write_paired_sam(
    mate1: list[FastqRecord],
    mate2: list[FastqRecord],
    outcomes: list["PairedOutcome"],
    index: GenomeIndex,
    path: Path | str,
) -> int:
    """Write ``Aligned.out.sam`` for a paired run; returns lines written."""
    n = len(outcomes)
    if not (len(mate1) >= n and len(mate2) >= n):
        raise ValueError("fewer reads than outcomes")
    with open(path, "w") as fh:
        fh.write(sam_header(index))
        for r1, r2, outcome in zip(mate1[:n], mate2[:n], outcomes):
            line1, line2 = to_paired_sam_lines(r1, r2, outcome)
            fh.write(line1 + "\n")
            fh.write(line2 + "\n")
    return 2 * n


def _parse_tag(token: str) -> tuple[str, str | int]:
    name, typ, value = token.split(":", 2)
    return name, int(value) if typ == "i" else value


def parse_sam(path: Path | str) -> tuple[list[str], list[SamRecord]]:
    """Parse a SAM file into (header_lines, records)."""
    header: list[str] = []
    records: list[SamRecord] = []
    with open(path) as fh:
        for raw in fh:
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("@"):
                header.append(line)
                continue
            fields = line.split("\t")
            if len(fields) < 11:
                raise ValueError(f"malformed SAM line: {line!r}")
            tags = dict(_parse_tag(t) for t in fields[11:])
            records.append(
                SamRecord(
                    qname=fields[0],
                    flag=int(fields[1]),
                    rname=fields[2],
                    pos=int(fields[3]),
                    mapq=int(fields[4]),
                    cigar=fields[5],
                    seq=fields[9],
                    qual=fields[10],
                    tags=tags,
                )
            )
    return header, records


def cigar_reference_span(cigar: str) -> int:
    """Reference bases consumed by a CIGAR (M/N/D ops); 0 for ``*``."""
    if cigar == "*":
        return 0
    span = 0
    number = ""
    for ch in cigar:
        if ch.isdigit():
            number += ch
            continue
        if not number:
            raise ValueError(f"malformed CIGAR: {cigar!r}")
        if ch in "MND=X":
            span += int(number)
        elif ch not in "ISHP":
            raise ValueError(f"unsupported CIGAR op {ch!r} in {cigar!r}")
        number = ""
    if number:
        raise ValueError(f"trailing number in CIGAR: {cigar!r}")
    return span
