"""Splice-aware two-segment stitching.

When a read spans an exon-exon junction, its maximal mappable prefix ends
exactly at the junction (the rest of the read continues at the acceptor
site, possibly megabases downstream).  STAR stitches the prefix seed and a
seed for the remainder into one spliced alignment when the implied intron
is plausible: same contig, length within bounds, and either a canonical
``GT..AG`` motif or membership in the annotated junction database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.extend import ScoringParams, ungapped_extend
from repro.align.index import GenomeIndex
from repro.align.seeds import maximal_mappable_prefix
from repro.genome.alphabet import BASE_A, BASE_G, BASE_T

#: STAR defaults: ``--alignIntronMin 21``, ``--alignIntronMax`` ~ 1e6 shrunk
#: to mini-genome scale (intron model in repro.genome.synth uses ~300 bp).
DEFAULT_MIN_INTRON = 21
DEFAULT_MAX_INTRON = 100_000


@dataclass(frozen=True)
class SplicedSegment:
    """One exonic block of a spliced alignment."""

    genome_start: int
    read_start: int
    length: int


@dataclass(frozen=True)
class SplicedAlignment:
    """A two-block spliced placement of a read."""

    segments: tuple[SplicedSegment, SplicedSegment]
    intron_start: int
    intron_end: int
    mismatches: int
    canonical: bool
    annotated: bool

    @property
    def genome_start(self) -> int:
        return self.segments[0].genome_start

    @property
    def genome_end(self) -> int:
        last = self.segments[1]
        return last.genome_start + last.length

    @property
    def intron_length(self) -> int:
        return self.intron_end - self.intron_start

    @property
    def aligned_length(self) -> int:
        return sum(s.length for s in self.segments)


def is_canonical_motif(index: GenomeIndex, intron_start: int, intron_end: int) -> bool:
    """True when the intron starts with GT and ends with AG (forward strand)."""
    genome = index.genome
    if intron_start + 2 > genome.size or intron_end - 2 < 0:
        return False
    donor = genome[intron_start : intron_start + 2]
    acceptor = genome[intron_end - 2 : intron_end]
    return (
        donor[0] == BASE_G
        and donor[1] == BASE_T
        and acceptor[0] == BASE_A
        and acceptor[1] == BASE_G
    )


def stitch_spliced(
    index: GenomeIndex,
    read: np.ndarray,
    prefix_length: int,
    prefix_position: int,
    *,
    scoring: ScoringParams,
    min_intron: int = DEFAULT_MIN_INTRON,
    max_intron: int = DEFAULT_MAX_INTRON,
    max_candidates: int = 20,
) -> SplicedAlignment | None:
    """Try to stitch ``read`` as prefix@prefix_position + spliced remainder.

    The prefix ``read[:prefix_length]`` is assumed placed (exactly) at
    ``prefix_position``.  Searches occurrences of the remainder downstream
    on the same contig within intron bounds, verifies the remainder with
    the scoring mismatch budget, and validates the junction (canonical
    motif or sjdb).  Returns the best candidate by (fewest mismatches,
    shortest intron), or None.
    """
    n = int(read.size)
    remainder_start = prefix_length
    remainder = read[remainder_start:]
    if remainder.size == 0 or prefix_length == 0:
        return None

    donor = prefix_position + prefix_length  # first intron base, absolute
    seed = maximal_mappable_prefix(
        index, read, read_start=remainder_start, max_hits=max_candidates
    )
    if seed.length == 0:
        return None

    best: SplicedAlignment | None = None
    for q in seed.positions:
        # remainder seed hit at q means acceptor (first exonic base) is q
        intron_len = q - donor
        if not min_intron <= intron_len <= max_intron:
            continue
        if index.contig_of(q) != index.contig_of(prefix_position):
            continue
        ext = ungapped_extend(
            index, remainder, q, max_mismatches=scoring.max_mismatches
        )
        if not ext.ok:
            continue
        canonical = is_canonical_motif(index, donor, q)
        annotated = index.is_annotated_junction(donor, q)
        if not canonical and not annotated:
            continue
        candidate = SplicedAlignment(
            segments=(
                SplicedSegment(prefix_position, 0, prefix_length),
                SplicedSegment(q, remainder_start, n - remainder_start),
            ),
            intron_start=donor,
            intron_end=q,
            mismatches=ext.mismatches,
            canonical=canonical,
            annotated=annotated,
        )
        if best is None or (candidate.mismatches, candidate.intron_length) < (
            best.mismatches,
            best.intron_length,
        ):
            best = candidate
    return best
