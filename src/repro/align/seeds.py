"""Maximal Mappable Prefix (MMP) seed search.

STAR's core operation (Dobin et al. 2013, §2.1): for a read position, find
the longest read prefix that exactly matches somewhere in the genome, along
with all genome positions where that prefix occurs.  Repeating the search
from the first unmapped base gives the sequential seed decomposition that
spliced stitching works on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.index import GenomeIndex


@dataclass(frozen=True)
class SeedHit:
    """One MMP result: read span ``[read_start, read_start+length)`` and hits.

    ``positions`` are absolute genome positions of the exact matches,
    truncated to ``max_hits`` by the caller's request (``n_hits`` keeps the
    true count for multimapper accounting).
    """

    read_start: int
    length: int
    positions: tuple[int, ...]
    n_hits: int

    @property
    def read_end(self) -> int:
        return self.read_start + self.length


def maximal_mappable_prefix(
    index: GenomeIndex,
    read: np.ndarray,
    *,
    read_start: int = 0,
    max_hits: int = 50,
    read_list: list[int] | None = None,
) -> SeedHit:
    """Longest exact match of ``read[read_start:]`` prefixes in the genome.

    Walks the suffix-array interval one symbol at a time and keeps the last
    non-empty interval.  Returns a zero-length hit when even the first
    symbol does not occur.  Uses the index's precomputed
    :class:`~repro.align.suffix_array.SearchContext` (C-speed element
    access + first-symbol table), the aligner's measured hot path.

    ``read_list`` lets callers that re-seed the same read repeatedly (the
    aligner queries each orientation up to twice) pay the numpy→list
    conversion once instead of per call.
    """
    ctx = index.search_context
    if read_list is None:
        read_list = read.tolist()
    lo, hi = 0, ctx.n
    depth = 0
    best = (0, lo, hi)
    n = len(read_list)
    extend = ctx.extend
    while read_start + depth < n:
        symbol = read_list[read_start + depth]
        nlo, nhi = extend(lo, hi, depth, symbol)
        if nlo >= nhi:
            break
        lo, hi = nlo, nhi
        depth += 1
        best = (depth, lo, hi)

    length, lo, hi = best
    if length == 0:
        return SeedHit(read_start=read_start, length=0, positions=(), n_hits=0)
    n_hits = hi - lo
    # one slice materializes every shown position; sorting is skipped for
    # the common unique-hit case
    shown = ctx.sa_list[lo : min(hi, lo + max_hits)]
    if len(shown) > 1:
        shown.sort()
    return SeedHit(
        read_start=read_start,
        length=length,
        positions=tuple(shown),
        n_hits=int(n_hits),
    )


def seed_decomposition(
    index: GenomeIndex,
    read: np.ndarray,
    *,
    max_seeds: int = 8,
    max_hits: int = 50,
) -> list[SeedHit]:
    """Sequential MMP decomposition of a whole read.

    Each seed starts where the previous maximal prefix ended; unmatchable
    single bases are skipped with a length-0 sentinel consumed as 1 base,
    mirroring STAR's behaviour on sequencing errors at seed boundaries.
    """
    seeds: list[SeedHit] = []
    pos = 0
    n = int(read.size)
    read_list = read.tolist()
    while pos < n and len(seeds) < max_seeds:
        seed = maximal_mappable_prefix(
            index, read, read_start=pos, max_hits=max_hits, read_list=read_list
        )
        seeds.append(seed)
        pos += seed.length if seed.length > 0 else 1
    return seeds
