"""Maximal Mappable Prefix (MMP) seed search.

STAR's core operation (Dobin et al. 2013, §2.1): for a read position, find
the longest read prefix that exactly matches somewhere in the genome, along
with all genome positions where that prefix occurs.  Repeating the search
from the first unmapped base gives the sequential seed decomposition that
spliced stitching works on.

The search runs in three regimes, each bit-identical to the plain
one-symbol-at-a-time interval narrowing (see the equivalence suite in
``tests/align/test_seeds.py``):

1. the first L symbols resolve through the index's
   :class:`~repro.align.suffix_array.PrefixJumpTable` — one O(1) lookup
   per symbol instead of two binary searches, and the walk stops at the
   exact depth where the interval would empty, preserving early-stop
   decisions;
2. past depth L, :meth:`SearchContext.extend` narrows with binary
   searches as before;
3. once the interval holds a single suffix, the remaining match length
   is the longest common extension of read and genome there, computed
   with chunked ``bytes`` comparison instead of per-symbol searches.

This module is the *per-read* search; :func:`repro.align.batch.batch_mmp`
runs the same three regimes level-synchronously over a whole read batch
with fused numpy kernels.  The two are contractually interchangeable:
identical seed decompositions *and* identical
:class:`~repro.align.suffix_array.SeedSearchStats` counter deltas
(``batch_queries`` aside, which only the batch path increments) — the
batch equivalence suite asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.index import GenomeIndex

#: chunk width for the single-suffix common-extension scan; a mismatch is
#: located with at most one chunk compare + one short linear scan
_LCE_CHUNK = 32


@dataclass(frozen=True)
class SeedHit:
    """One MMP result: read span ``[read_start, read_start+length)`` and hits.

    ``positions`` are absolute genome positions of the exact matches,
    truncated to ``max_hits`` by the caller's request (``n_hits`` keeps the
    true count for multimapper accounting).
    """

    read_start: int
    length: int
    positions: tuple[int, ...]
    n_hits: int

    @property
    def read_end(self) -> int:
        return self.read_start + self.length


def _common_extension(
    genome: bytes, gpos: int, read_bytes: bytes, rpos: int, limit: int
) -> int:
    """Length of the common prefix of ``genome[gpos:]`` and ``read_bytes[rpos:]``
    within ``limit`` symbols, via memcmp-speed slice comparisons."""
    if limit <= 0:
        return 0
    if genome[gpos : gpos + limit] == read_bytes[rpos : rpos + limit]:
        return limit
    matched = 0
    while True:
        chunk = min(_LCE_CHUNK, limit - matched)
        if (
            genome[gpos + matched : gpos + matched + chunk]
            == read_bytes[rpos + matched : rpos + matched + chunk]
        ):
            matched += chunk
            continue
        end = matched + chunk
        while matched < end and genome[gpos + matched] == read_bytes[rpos + matched]:
            matched += 1
        return matched


def maximal_mappable_prefix(
    index: GenomeIndex,
    read: np.ndarray,
    *,
    read_start: int = 0,
    max_hits: int = 50,
    read_list: list[int] | None = None,
) -> SeedHit:
    """Longest exact match of ``read[read_start:]`` prefixes in the genome.

    Walks the suffix-array interval and keeps the last non-empty one;
    returns a zero-length hit when even the first symbol does not occur.
    Uses the index's precomputed
    :class:`~repro.align.suffix_array.SearchContext` — jump table, then
    binary narrowing, then single-suffix byte comparison (see module
    docstring) — the aligner's measured hot path.

    ``read_list`` lets callers that re-seed the same read repeatedly (the
    aligner queries each orientation up to twice) pay the numpy→list
    conversion once instead of per call.
    """
    ctx = index.search_context
    if read_list is None:
        read_list = read.tolist()
    n = len(read_list)
    stats = ctx.stats
    stats.queries += 1
    lo, hi = 0, ctx.n
    depth = 0
    dead = False

    jump_length = ctx.jump_length
    if jump_length and hi:
        bounds = ctx.jump_bounds
        strides = ctx.jump_strides
        remaining = n - read_start
        limit = jump_length if remaining >= jump_length else remaining
        code = 0
        while depth < limit:
            code = code * 6 + read_list[read_start + depth] + 1
            stride = strides[depth + 1]
            base = code * stride
            nlo = bounds[base]
            nhi = bounds[base + stride]
            if nlo >= nhi:
                dead = True
                break
            lo, hi = nlo, nhi
            depth += 1
        stats.binary_steps_saved += 2 * depth
        if dead:
            stats.table_fallbacks += 1
            stats.fallback_depths[depth] = stats.fallback_depths.get(depth, 0) + 1
        else:
            stats.table_hits += 1

    if not dead:
        genome = ctx.genome_bytes
        sa = ctx.sa_view
        extend = ctx.extend
        while read_start + depth < n:
            if hi - lo == 1:
                # single candidate: the rest of the MMP is the longest
                # common extension of read and genome at that suffix
                pos = sa[lo] + depth
                start = read_start + depth
                matched = _common_extension(
                    genome,
                    pos,
                    bytes(read_list),
                    start,
                    min(n - start, ctx.n - pos),
                )
                depth += matched
                stats.lce_skips += matched
                break
            symbol = read_list[read_start + depth]
            nlo, nhi = extend(lo, hi, depth, symbol)
            stats.extend_steps += 1
            if nlo >= nhi:
                break
            lo, hi = nlo, nhi
            depth += 1

    if depth == 0:
        return SeedHit(read_start=read_start, length=0, positions=(), n_hits=0)
    n_hits = hi - lo
    # one slice materializes every shown position; sorting is skipped for
    # the common unique-hit case
    shown = ctx.sa_view[lo : min(hi, lo + max_hits)].tolist()
    if len(shown) > 1:
        shown.sort()
    return SeedHit(
        read_start=read_start,
        length=depth,
        positions=tuple(shown),
        n_hits=int(n_hits),
    )


def seed_decomposition(
    index: GenomeIndex,
    read: np.ndarray,
    *,
    max_seeds: int = 8,
    max_hits: int = 50,
) -> list[SeedHit]:
    """Sequential MMP decomposition of a whole read.

    Each seed starts where the previous maximal prefix ended; unmatchable
    single bases are skipped with a length-0 sentinel consumed as 1 base,
    mirroring STAR's behaviour on sequencing errors at seed boundaries.
    """
    seeds: list[SeedHit] = []
    pos = 0
    n = int(read.size)
    read_list = read.tolist()
    while pos < n and len(seeds) < max_seeds:
        seed = maximal_mappable_prefix(
            index, read, read_start=pos, max_hits=max_hits, read_list=read_list
        )
        seeds.append(seed)
        pos += seed.length if seed.length > 0 else 1
    return seeds
