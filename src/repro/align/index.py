"""Genome index — the ``genomeGenerate`` step of the aligner.

The index bundles the concatenated genome, its suffix array, contig
coordinate tables, and the annotated splice-junction database (sjdb).
Its byte size is dominated by the 8-byte-per-base suffix array, so it
scales linearly with toplevel FASTA size — the mechanism behind the
paper's 85 GiB (r108) vs 29.5 GiB (r111) observation.
"""

from __future__ import annotations

import pickle
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.align.suffix_array import PrefixJumpTable, build_suffix_array
from repro.genome.annotation import Annotation
from repro.genome.model import Assembly


@dataclass
class GenomeIndex:
    """Searchable index over one assembly.

    ``genome`` is the forward-strand concatenation of all contigs (reads
    are additionally searched as reverse complements, as real STAR does);
    ``offsets`` has ``len(names)+1`` entries delimiting each contig.
    """

    assembly_name: str
    genome: np.ndarray
    suffix_array: np.ndarray
    offsets: np.ndarray
    names: list[str]
    annotation: Annotation | None = None
    sjdb: set[tuple[str, int, int]] = field(default_factory=set)
    #: k-mer → SA-interval prefix index (STAR's --genomeSAindexNbases);
    #: built eagerly by genome_generate, lazily on first search otherwise
    jump_table: PrefixJumpTable | None = None
    #: build the jump table on first search when one was not supplied;
    #: benchmarks disable this to measure the pure binary-search path
    auto_jump_table: bool = True

    def __post_init__(self) -> None:
        if self.offsets.size != len(self.names) + 1:
            raise ValueError("offsets must have len(names)+1 entries")
        if self.suffix_array.size != self.genome.size:
            raise ValueError("suffix array length must equal genome length")
        self._search_context = None
        # name -> ordinal cache: to_absolute/junction_key are called per
        # aligned block, and list.index is O(n_contigs) — ruinous on
        # scaffold-heavy releases like r108.
        self._name_to_ordinal = {name: i for i, name in enumerate(self.names)}
        # plain-int mirror of offsets: contig_of runs per aligned block and
        # per junction check, where bisect on a list beats a one-element
        # np.searchsorted by ~100x
        self._offsets_list = [int(o) for o in self.offsets]

    @property
    def search_context(self):
        """Lazily built fast-search state (see SearchContext) — the hot
        path of every MMP query goes through this."""
        if self._search_context is None:
            from repro.align.suffix_array import SearchContext

            if self.jump_table is None and self.auto_jump_table and self.n_bases:
                self.jump_table = PrefixJumpTable.build(
                    self.genome, self.suffix_array
                )
            self._search_context = SearchContext(
                self.genome, self.suffix_array, self.jump_table
            )
        return self._search_context

    # -- coordinates -----------------------------------------------------

    @property
    def n_bases(self) -> int:
        return int(self.genome.size)

    @property
    def n_contigs(self) -> int:
        return len(self.names)

    def contig_of(self, position: int) -> int:
        """Contig ordinal containing absolute genome ``position``."""
        if not 0 <= position < self.n_bases:
            raise IndexError(f"position {position} outside genome of {self.n_bases}")
        return bisect_right(self._offsets_list, position) - 1

    def to_contig_coords(self, position: int) -> tuple[str, int]:
        """Map an absolute position to (contig name, contig-local offset)."""
        c = self.contig_of(position)
        return self.names[c], position - self._offsets_list[c]

    def to_absolute(self, contig: str, offset: int) -> int:
        """Map (contig name, local offset) to an absolute genome position."""
        try:
            c = self._name_to_ordinal[contig]
        except KeyError:
            raise ValueError(f"{contig!r} is not in assembly {self.assembly_name}")
        length = int(self.offsets[c + 1] - self.offsets[c])
        if not 0 <= offset < length:
            raise IndexError(f"offset {offset} outside contig {contig} of {length}")
        return int(self.offsets[c]) + offset

    def span_within_contig(self, position: int, length: int) -> bool:
        """True when ``[position, position+length)`` stays inside one contig."""
        if length <= 0 or position < 0 or position + length > self.n_bases:
            return False
        c = self.contig_of(position)
        return position + length <= self._offsets_list[c + 1]

    # -- splice junction database ----------------------------------------

    def junction_key(self, donor_abs: int, acceptor_abs: int) -> tuple[str, int, int]:
        """Normalize an absolute junction to the (contig, start, end) sjdb key."""
        c1 = self.contig_of(donor_abs)
        c2 = self.contig_of(acceptor_abs)
        if c1 != c2:
            raise ValueError("junction endpoints on different contigs")
        base = self._offsets_list[c1]
        return (self.names[c1], donor_abs - base, acceptor_abs - base)

    def is_annotated_junction(self, donor_abs: int, acceptor_abs: int) -> bool:
        """Whether the intron ``[donor_abs, acceptor_abs)`` is in the sjdb."""
        try:
            return self.junction_key(donor_abs, acceptor_abs) in self.sjdb
        except ValueError:
            return False

    # -- size accounting ---------------------------------------------------

    def size_bytes(self, *, include_search_context: bool = False) -> int:
        """Approximate in-memory index footprint (what gets loaded to /dev/shm).

        genome: 1 byte/base; suffix array: 8 bytes/base; offsets and sjdb
        are negligible but counted for honesty.  This is the paper's
        §III-A payload — the number that tracks toplevel FASTA size.

        ``include_search_context=True`` additionally accounts what the
        aligner keeps resident before its first query, measured from the
        live objects when they exist rather than estimated: the
        :class:`~repro.align.suffix_array.SearchContext` (a ``bytes``
        copy of the genome; its packed suffix-array memoryview adds
        nothing when the index's own int64 array is already contiguous)
        and the :class:`~repro.align.suffix_array.PrefixJumpTable`
        (8 bytes per ``6**L`` table entry).  Instance right-sizing
        budgets against this number.
        """
        size = int(
            self.genome.nbytes
            + self.suffix_array.nbytes
            + self.offsets.nbytes
            + 24 * len(self.sjdb)
        )
        if include_search_context:
            if self._search_context is not None:
                size += self._search_context.resident_extra_bytes()
            else:
                # the genome bytes copy; the SA view is zero-copy
                size += self.n_bases
            if self.jump_table is not None:
                size += self.jump_table.nbytes
            elif self.auto_jump_table and self.n_bases:
                size += PrefixJumpTable.predicted_nbytes(self.n_bases)
        return size

    # -- persistence -------------------------------------------------------

    def save(self, path: Path | str) -> int:
        """Serialize to disk; returns bytes written.

        The jump table is intentionally excluded (it rebuilds in O(L)
        vectorized passes on first search); :class:`repro.align.cache.
        IndexCache` is the store that persists it for mmap'd loads.
        """
        path = Path(path)
        payload = {
            "assembly_name": self.assembly_name,
            "genome": self.genome,
            "suffix_array": self.suffix_array,
            "offsets": self.offsets,
            "names": self.names,
            "annotation": self.annotation,
            "sjdb": self.sjdb,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return path.stat().st_size

    @classmethod
    def load(cls, path: Path | str) -> "GenomeIndex":
        """Deserialize an index previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        return cls(**payload)


def genome_generate(
    assembly: Assembly,
    annotation: Annotation | None = None,
    *,
    jump_table: bool = True,
) -> GenomeIndex:
    """Build a :class:`GenomeIndex` from an assembly (STAR's ``genomeGenerate``).

    When an annotation is supplied its splice junctions seed the sjdb,
    letting the aligner accept annotated non-canonical junctions.  The
    prefix jump table is built eagerly alongside the suffix array (as
    real STAR builds its SA prefix index during ``genomeGenerate``);
    ``jump_table=False`` skips it *and* disables the lazy rebuild, which
    benchmarks use to measure the pure binary-search path.
    """
    genome, offsets, names = assembly.concatenate()
    sa = build_suffix_array(genome)
    table = (
        PrefixJumpTable.build(genome, sa) if jump_table and genome.size else None
    )
    sjdb: set[tuple[str, int, int]] = set()
    if annotation is not None:
        sjdb = set(annotation.splice_junctions())
    return GenomeIndex(
        assembly_name=assembly.name,
        genome=genome,
        suffix_array=sa,
        offsets=offsets,
        names=names,
        annotation=annotation,
        sjdb=sjdb,
        jump_table=table,
        auto_jump_table=jump_table,
    )
