"""``--quantMode GeneCounts`` — per-gene read counting.

Reproduces STAR's ``ReadsPerGene.out.tab``: four special rows
(``N_unmapped``, ``N_multimapping``, ``N_noFeature``, ``N_ambiguous``)
followed by one row per gene, with three count columns for the three
strandedness conventions (unstranded, stranded-forward, stranded-reverse).
Only uniquely mapped reads are assigned to genes, as in STAR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.genome.annotation import Annotation, Gene, Strand
from repro.genome.model import SequenceRegion

#: Column order of ReadsPerGene.out.tab after the gene id.
STRAND_COLUMNS = ("unstranded", "forward", "reverse")

_SPECIAL_ROWS = ("N_unmapped", "N_multimapping", "N_noFeature", "N_ambiguous")


@dataclass(frozen=True)
class GeneCountsPartial:
    """Compact, annotation-free snapshot of one batch's gene counts.

    Worker processes in :mod:`repro.align.engine` count their batch locally
    and ship this partial back (only non-zero genes) instead of the whole
    :class:`GeneCounts`, whose ``annotation`` would be re-pickled per batch.
    Merging partials batch-by-batch in read order reproduces exactly the
    counts a serial run accumulates.
    """

    n_unmapped: int
    n_multimapping: int
    n_no_feature: dict[str, int]
    n_ambiguous: dict[str, int]
    gene_counts: dict[str, dict[str, int]]


@dataclass
class GeneCounts:
    """Accumulator for gene-level counts over one alignment run."""

    annotation: Annotation
    n_unmapped: int = 0
    n_multimapping: int = 0
    #: per-strandedness convention: noFeature/ambiguous and per-gene counts
    n_no_feature: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in STRAND_COLUMNS}
    )
    n_ambiguous: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in STRAND_COLUMNS}
    )
    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for gene_id in self.annotation.gene_ids:
            self.counts.setdefault(gene_id, {c: 0 for c in STRAND_COLUMNS})

    # -- accumulation ------------------------------------------------------

    def record_unmapped(self) -> None:
        self.n_unmapped += 1

    def record_multimapped(self) -> None:
        self.n_multimapping += 1

    def record_unique(
        self, blocks: list[SequenceRegion], read_strand: Strand
    ) -> None:
        """Assign one uniquely mapped read given its exonic blocks.

        A gene matches when any block overlaps its extent.  For the two
        stranded conventions the gene must additionally lie on the matching
        strand (forward = read strand equals gene strand; reverse =
        opposite, as for dUTP protocols).
        """
        overlapping: list[Gene] = []
        seen: set[str] = set()
        for block in blocks:
            for gene in self.annotation.overlapping_genes(block):
                if gene.gene_id not in seen:
                    seen.add(gene.gene_id)
                    overlapping.append(gene)
        self._tally("unstranded", overlapping)
        same = [g for g in overlapping if g.strand is read_strand]
        opposite = [g for g in overlapping if g.strand is not read_strand]
        self._tally("forward", same)
        self._tally("reverse", opposite)

    def _tally(self, column: str, genes: list[Gene]) -> None:
        if not genes:
            self.n_no_feature[column] += 1
        elif len(genes) > 1:
            self.n_ambiguous[column] += 1
        else:
            self.counts[genes[0].gene_id][column] += 1

    # -- partials (parallel engine) ------------------------------------------

    def to_partial(self) -> GeneCountsPartial:
        """Extract the non-zero state as an annotation-free partial."""
        return GeneCountsPartial(
            n_unmapped=self.n_unmapped,
            n_multimapping=self.n_multimapping,
            n_no_feature=dict(self.n_no_feature),
            n_ambiguous=dict(self.n_ambiguous),
            gene_counts={
                gene_id: dict(row)
                for gene_id, row in self.counts.items()
                if any(row[c] for c in STRAND_COLUMNS)
            },
        )

    def merge_partial(self, partial: GeneCountsPartial) -> None:
        """Add one batch's partial into this accumulator."""
        self.n_unmapped += partial.n_unmapped
        self.n_multimapping += partial.n_multimapping
        for c in STRAND_COLUMNS:
            self.n_no_feature[c] += partial.n_no_feature[c]
            self.n_ambiguous[c] += partial.n_ambiguous[c]
        for gene_id, row in partial.gene_counts.items():
            mine = self.counts[gene_id]
            for c in STRAND_COLUMNS:
                mine[c] += row[c]

    # -- reporting -----------------------------------------------------------

    def total_assigned(self, column: str = "unstranded") -> int:
        """Reads assigned to exactly one gene under ``column``."""
        return sum(c[column] for c in self.counts.values())

    def column_vector(self, column: str = "unstranded") -> dict[str, int]:
        """Gene id → count for one strandedness convention."""
        return {g: c[column] for g, c in self.counts.items()}

    def to_tab(self) -> str:
        """Render as ``ReadsPerGene.out.tab`` text."""
        lines = [
            "\t".join(
                [
                    "N_unmapped",
                    str(self.n_unmapped),
                    str(self.n_unmapped),
                    str(self.n_unmapped),
                ]
            ),
            "\t".join(
                [
                    "N_multimapping",
                    str(self.n_multimapping),
                    str(self.n_multimapping),
                    str(self.n_multimapping),
                ]
            ),
            "\t".join(
                ["N_noFeature"] + [str(self.n_no_feature[c]) for c in STRAND_COLUMNS]
            ),
            "\t".join(
                ["N_ambiguous"] + [str(self.n_ambiguous[c]) for c in STRAND_COLUMNS]
            ),
        ]
        for gene_id in self.annotation.gene_ids:
            row = self.counts[gene_id]
            lines.append(
                "\t".join([gene_id] + [str(row[c]) for c in STRAND_COLUMNS])
            )
        return "\n".join(lines) + "\n"

    def write_tab(self, path: Path | str) -> None:
        """Write ``ReadsPerGene.out.tab``."""
        Path(path).write_text(self.to_tab())


def read_counts_tab(path: Path | str) -> tuple[dict[str, int], dict[str, list[int]]]:
    """Parse a ``ReadsPerGene.out.tab`` file.

    Returns ``(specials, genes)`` where ``specials`` maps the N_* rows to
    their unstranded value and ``genes`` maps gene id to the three-column
    count list.
    """
    specials: dict[str, int] = {}
    genes: dict[str, list[int]] = {}
    for line in Path(path).read_text().splitlines():
        fields = line.split("\t")
        if len(fields) != 4:
            raise ValueError(f"malformed counts line: {line!r}")
        name, values = fields[0], [int(v) for v in fields[1:]]
        if name in _SPECIAL_ROWS:
            specials[name] = values[0]
        else:
            genes[name] = values
    return specials, genes
