"""One aligner-backend interface over the three ways a run can execute.

The pipeline used to branch inline over serial single-end
(:class:`~repro.align.star.StarAligner`), serial paired
(:class:`~repro.align.paired.PairedStarAligner`), and the shared-memory
engine (:class:`~repro.align.engine.ParallelStarAligner`) — three call
shapes to wrap every time a cross-cutting concern (retries, fault
injection, timing) touched the STAR step.  :class:`AlignerBackend`
collapses them to a single ``align(reads) -> AlignmentOutcome`` surface,
and :func:`resolve_backend` is the one place that knows which concrete
backend a given accession should use.

Every backend hands whole read batches to its run loop, so all three
execution shapes inherit the vectorized batch core
(:mod:`repro.align.batch`) when ``StarParameters.batch_align`` is on —
serial runs batch through ``StarAligner._outcome_stream``, paired runs
batch both mate lists, and engine workers call ``align_batch`` per shard.

The streaming pipeline adds :meth:`AlignerBackend.align_stream`: the
same contract as ``align``, but fed by :class:`ReadChunkStream` — a lazy
chunk feed with the read total known up front (from the SRA container
header) — so alignment starts before the download finishes.  Single-end
backends consume chunks truly lazily; the paired backend materializes
both mate lists first (mates interleave in the container, so no
intra-accession overlap for PE — inter-accession prefetch overlap still
applies).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Protocol, runtime_checkable

from repro.align.paired import PairedStarAligner

if TYPE_CHECKING:
    from repro.align.engine import ParallelStarAligner
    from repro.align.outcome import AlignmentOutcome
    from repro.align.star import ProgressMonitorHook, StarAligner
    from repro.reads.fastq import FastqRecord

__all__ = [
    "AlignerBackend",
    "EngineBackend",
    "PairedAlignerBackend",
    "ReadBatch",
    "ReadChunkStream",
    "SerialAlignerBackend",
    "resolve_backend",
]


@dataclass(frozen=True)
class ReadBatch:
    """One accession's reads: single-end records, or both mate lists."""

    records: list[FastqRecord]
    mate2: list[FastqRecord] | None = None

    @property
    def paired(self) -> bool:
        return self.mate2 is not None

    def __len__(self) -> int:
        return len(self.records)

    def __post_init__(self) -> None:
        if self.mate2 is not None and len(self.mate2) != len(self.records):
            raise ValueError("mate lists must have equal length")


@dataclass
class ReadChunkStream:
    """One accession's reads as a lazy chunk feed with a known total.

    ``chunks`` yields ``list[FastqRecord]`` for single-end accessions or
    ``(mate1_chunk, mate2_chunk)`` list pairs for paired ones;
    ``reads_total`` comes from the SRA container header, so progress
    records (and therefore early-stopping decisions) are identical to a
    fully-materialized run even though records arrive incrementally.
    """

    chunks: Iterable
    reads_total: int
    paired: bool = False

    def records(self):
        """Flatten single-end chunks into a lazy record iterator."""
        if self.paired:
            raise ValueError("records() is single-end only; use materialize()")
        for chunk in self.chunks:
            yield from chunk

    def materialize(self) -> ReadBatch:
        """Drain the feed into a :class:`ReadBatch` (the PE fallback)."""
        if not self.paired:
            return ReadBatch(list(self.records()))
        mate1: list[FastqRecord] = []
        mate2: list[FastqRecord] = []
        for chunk1, chunk2 in self.chunks:
            mate1.extend(chunk1)
            mate2.extend(chunk2)
        return ReadBatch(mate1, mate2)


@runtime_checkable
class AlignerBackend(Protocol):
    """Anything that can run one accession's alignment end to end."""

    #: short label used in failure records and reports
    name: str

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        """Align ``reads``; honour the monitor's abort, write outputs if asked.

        ``checkpoint`` is an optional shard checkpointer (see
        :class:`repro.core.replication.ShardCheckpointer`); backends
        without shard-level recovery accept and ignore it — alignment
        results never depend on it.
        """
        ...

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Align a chunk feed as it arrives; same contract as :meth:`align`."""
        ...


class SerialAlignerBackend:
    """In-process single-end alignment via :class:`StarAligner`."""

    name = "serial"

    def __init__(self, aligner: StarAligner) -> None:
        self.aligner = aligner

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if reads.paired:
            raise ValueError("serial single-end backend got paired reads")
        return self.aligner.run(reads.records, monitor=monitor, out_dir=out_dir)

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Consume chunks lazily through the serial aligner's run loop."""
        if stream.paired:
            raise ValueError("serial single-end backend got paired reads")
        return self.aligner.run(
            stream.records(),
            reads_total=stream.reads_total,
            monitor=monitor,
            out_dir=out_dir,
        )


class PairedAlignerBackend:
    """In-process paired-end alignment via :class:`PairedStarAligner`.

    ``out_dir`` is accepted for interface uniformity but unused: paired
    runs keep their results in memory, as the pipeline always has.
    """

    name = "paired"

    def __init__(self, paired_aligner: PairedStarAligner) -> None:
        self.paired_aligner = paired_aligner

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if not reads.paired:
            raise ValueError("paired backend got single-end reads")
        assert reads.mate2 is not None
        return self.paired_aligner.run(reads.records, reads.mate2, monitor=monitor)

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Materialize both mate lists, then run (see module docstring)."""
        return self.align(stream.materialize(), monitor=monitor, out_dir=out_dir)


class EngineBackend:
    """Shared-memory multi-process alignment via :class:`ParallelStarAligner`.

    Handles both library layouts — the engine already exposes matching
    ``run`` / ``run_paired`` entry points.
    """

    name = "engine"

    def __init__(self, engine: ParallelStarAligner) -> None:
        self.engine = engine

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if reads.paired:
            assert reads.mate2 is not None
            return self.engine.run_paired(reads.records, reads.mate2, monitor=monitor)
        return self.engine.run(
            reads.records, monitor=monitor, out_dir=out_dir, checkpoint=checkpoint
        )

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Feed chunks into the engine's dispatch window as they arrive."""
        if stream.paired:
            return self.align(stream.materialize(), monitor=monitor, out_dir=out_dir)
        return self.engine.run(
            stream.records(),
            reads_total=stream.reads_total,
            monitor=monitor,
            out_dir=out_dir,
        )


def resolve_backend(
    config: Any,
    aligner: StarAligner,
    engine: ParallelStarAligner | None = None,
    *,
    paired: bool = False,
) -> AlignerBackend:
    """Pick the backend for one accession.

    ``config`` is the pipeline-level options bundle (duck-typed so this
    module stays import-light); backend-selection knobs added there are
    honoured here, keeping call sites branch-free.  A live ``engine``
    wins (it serves both layouts from one worker pool); otherwise the
    library layout picks the serial backend.
    """
    if engine is not None:
        return EngineBackend(engine)
    if paired:
        parameters = getattr(config, "paired_parameters", None)
        return PairedAlignerBackend(PairedStarAligner(aligner, parameters))
    return SerialAlignerBackend(aligner)
