"""One aligner-backend interface over the three ways a run can execute.

The pipeline used to branch inline over serial single-end
(:class:`~repro.align.star.StarAligner`), serial paired
(:class:`~repro.align.paired.PairedStarAligner`), and the shared-memory
engine (:class:`~repro.align.engine.ParallelStarAligner`) — three call
shapes to wrap every time a cross-cutting concern (retries, fault
injection, timing) touched the STAR step.  :class:`AlignerBackend`
collapses them to a single ``align(reads) -> AlignmentOutcome`` surface,
and :func:`resolve_backend` is the one place that knows which concrete
backend a given accession should use.

Every backend hands whole read batches to its run loop, so all three
execution shapes inherit the vectorized batch core
(:mod:`repro.align.batch`) when ``StarParameters.batch_align`` is on —
serial runs batch through ``StarAligner._outcome_stream``, paired runs
batch both mate lists, and engine workers call ``align_batch`` per shard.

The streaming pipeline adds :meth:`AlignerBackend.align_stream`: the
same contract as ``align``, but fed by :class:`ReadChunkStream` — a lazy
chunk feed with the read total known up front (from the SRA container
header) — so alignment starts before the download finishes.  Single-end
backends consume chunks truly lazily; the paired backend materializes
both mate lists first (mates interleave in the container, so no
intra-accession overlap for PE — inter-accession prefetch overlap still
applies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Protocol, runtime_checkable

from repro.align.counts import GeneCounts
from repro.align.engine import (
    _align_pairs,
    _align_records,
    _count_outcome,
    _count_paired_outcome,
    _shard_bounds,
)
from repro.align.paired import PairedRunResult, PairedStarAligner, PairStatus
from repro.align.progress import FinalLogStats, ProgressRecord
from repro.align.star import AlignmentStatus, StarRunResult
from repro.cloud.faas import (
    ExecutionCapExceeded,
    FaasService,
    FunctionCrashed,
    PayloadTooLarge,
    TooManyRequests,
)

if TYPE_CHECKING:
    from repro.align.engine import ParallelStarAligner
    from repro.align.outcome import AlignmentOutcome
    from repro.align.star import ProgressMonitorHook, StarAligner
    from repro.reads.fastq import FastqRecord

__all__ = [
    "AlignerBackend",
    "BACKEND_CHOICES",
    "EngineBackend",
    "FaasAlignerBackend",
    "PairedAlignerBackend",
    "ReadBatch",
    "ReadChunkStream",
    "SerialAlignerBackend",
    "resolve_backend",
]

#: valid values for the pipeline-level backend-selection knob
BACKEND_CHOICES = ("auto", "serial", "engine", "faas")


@dataclass(frozen=True)
class ReadBatch:
    """One accession's reads: single-end records, or both mate lists."""

    records: list[FastqRecord]
    mate2: list[FastqRecord] | None = None

    @property
    def paired(self) -> bool:
        return self.mate2 is not None

    def __len__(self) -> int:
        return len(self.records)

    def __post_init__(self) -> None:
        if self.mate2 is not None and len(self.mate2) != len(self.records):
            raise ValueError("mate lists must have equal length")


@dataclass
class ReadChunkStream:
    """One accession's reads as a lazy chunk feed with a known total.

    ``chunks`` yields ``list[FastqRecord]`` for single-end accessions or
    ``(mate1_chunk, mate2_chunk)`` list pairs for paired ones;
    ``reads_total`` comes from the SRA container header, so progress
    records (and therefore early-stopping decisions) are identical to a
    fully-materialized run even though records arrive incrementally.
    """

    chunks: Iterable
    reads_total: int
    paired: bool = False

    def records(self):
        """Flatten single-end chunks into a lazy record iterator."""
        if self.paired:
            raise ValueError("records() is single-end only; use materialize()")
        for chunk in self.chunks:
            yield from chunk

    def materialize(self) -> ReadBatch:
        """Drain the feed into a :class:`ReadBatch` (the PE fallback)."""
        if not self.paired:
            return ReadBatch(list(self.records()))
        mate1: list[FastqRecord] = []
        mate2: list[FastqRecord] = []
        for chunk1, chunk2 in self.chunks:
            mate1.extend(chunk1)
            mate2.extend(chunk2)
        return ReadBatch(mate1, mate2)


@runtime_checkable
class AlignerBackend(Protocol):
    """Anything that can run one accession's alignment end to end."""

    #: short label used in failure records and reports
    name: str

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        """Align ``reads``; honour the monitor's abort, write outputs if asked.

        ``checkpoint`` is an optional shard checkpointer (see
        :class:`repro.core.replication.ShardCheckpointer`); backends
        without shard-level recovery accept and ignore it — alignment
        results never depend on it.
        """
        ...

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Align a chunk feed as it arrives; same contract as :meth:`align`."""
        ...


class SerialAlignerBackend:
    """In-process single-end alignment via :class:`StarAligner`."""

    name = "serial"

    def __init__(self, aligner: StarAligner) -> None:
        self.aligner = aligner

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if reads.paired:
            raise ValueError("serial single-end backend got paired reads")
        return self.aligner.run(reads.records, monitor=monitor, out_dir=out_dir)

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Consume chunks lazily through the serial aligner's run loop."""
        if stream.paired:
            raise ValueError("serial single-end backend got paired reads")
        return self.aligner.run(
            stream.records(),
            reads_total=stream.reads_total,
            monitor=monitor,
            out_dir=out_dir,
        )


class PairedAlignerBackend:
    """In-process paired-end alignment via :class:`PairedStarAligner`.

    ``out_dir`` is accepted for interface uniformity but unused: paired
    runs keep their results in memory, as the pipeline always has.
    """

    name = "paired"

    def __init__(self, paired_aligner: PairedStarAligner) -> None:
        self.paired_aligner = paired_aligner

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if not reads.paired:
            raise ValueError("paired backend got single-end reads")
        assert reads.mate2 is not None
        return self.paired_aligner.run(reads.records, reads.mate2, monitor=monitor)

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Materialize both mate lists, then run (see module docstring)."""
        return self.align(stream.materialize(), monitor=monitor, out_dir=out_dir)


class EngineBackend:
    """Shared-memory multi-process alignment via :class:`ParallelStarAligner`.

    Handles both library layouts — the engine already exposes matching
    ``run`` / ``run_paired`` entry points.
    """

    name = "engine"

    def __init__(self, engine: ParallelStarAligner) -> None:
        self.engine = engine

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if reads.paired:
            assert reads.mate2 is not None
            return self.engine.run_paired(
                reads.records, reads.mate2, monitor=monitor, checkpoint=checkpoint
            )
        return self.engine.run(
            reads.records, monitor=monitor, out_dir=out_dir, checkpoint=checkpoint
        )

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Feed chunks into the engine's dispatch window as they arrive."""
        if stream.paired:
            return self.align(stream.materialize(), monitor=monitor, out_dir=out_dir)
        return self.engine.run(
            stream.records(),
            reads_total=stream.reads_total,
            monitor=monitor,
            out_dir=out_dir,
        )


class FaasAlignerBackend:
    """Serverless scatter-gather alignment over short-lived functions.

    The authors' follow-up paper replaces long-lived workers with FaaS:
    one accession's reads are sharded along the engine's
    ``_shard_bounds`` schedule and each shard becomes one function
    invocation against a simulated :class:`~repro.cloud.faas.FaasService`.
    The *function body* is the same pure batch helper a pool worker runs
    (``_align_records`` / ``_align_pairs``), and the gather side is the
    engine's merge loop verbatim — so results are byte-identical to the
    serial and engine backends.

    What the service can throw, the backend absorbs:

    * retryable failures (:class:`TooManyRequests` throttles,
      :class:`FunctionCrashed` sandbox deaths) re-invoke the same shard
      under the per-invocation :class:`~repro.core.resilience.RetryPolicy`,
      with backoff spent on the backend's *virtual* clock;
    * structural failures (:class:`ExecutionCapExceeded` timeouts,
      :class:`PayloadTooLarge` requests/responses) split the shard in
      two and re-invoke both halves, merging sub-results so the original
      schedule bounds — and therefore shard-checkpoint keys — are
      preserved.

    Shards are pre-sized from the batch-core cost model (the engine's
    sizing rule) *and* the service's payload/cap limits, so splits are
    the exception; ``checkpoint`` compatibility means a resumed batch
    skips every shard a previous invocation round completed.

    Durations are modeled (``seconds_per_read``), never wall-clock, so
    cap and billing behaviour is deterministic; the virtual clock also
    drives the warm-container pool, which persists across accessions
    when the pipeline reuses one backend instance.
    """

    name = "faas"

    def __init__(
        self,
        aligner: StarAligner,
        *,
        paired_parameters: Any = None,
        service: FaasService | None = None,
        function_name: str = "star-align",
        memory_mb: int = 3008,
        cold_start_seconds: float = 2.0,
        retry: Any = None,
        parallelism: int = 8,
        batch_size: int | None = None,
        seconds_per_read: float = 2e-4,
        response_bytes_per_outcome: int = 96,
    ) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if seconds_per_read <= 0:
            raise ValueError("seconds_per_read must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.aligner = aligner
        self.paired_parameters = paired_parameters
        self._paired: PairedStarAligner | None = None
        self.service = service if service is not None else FaasService()
        try:
            self.function = self.service.function(function_name)
        except KeyError:
            self.function = self.service.create_function(
                function_name,
                memory_mb=memory_mb,
                cold_start_seconds=cold_start_seconds,
            )
        if retry is None:
            # local import: repro.core imports this module at package init
            from repro.core.resilience import RetryPolicy

            retry = RetryPolicy(
                max_attempts=4, base_delay=0.5, max_delay=30.0, jitter=0.0
            )
        self.retry = retry
        self.parallelism = parallelism
        self.batch_size = batch_size
        self.seconds_per_read = seconds_per_read
        self.response_bytes_per_outcome = response_bytes_per_outcome
        #: virtual service time (advanced by modeled durations + backoff)
        self.virtual_now = 0.0
        self.cap_reshards = 0
        self.payload_reshards = 0
        self.throttle_retries = 0
        self.crash_retries = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def limits(self):
        return self.function.limits

    def _paired_aligner(self) -> PairedStarAligner:
        if self._paired is None:
            self._paired = PairedStarAligner(self.aligner, self.paired_parameters)
        return self._paired

    @staticmethod
    def _records_bytes(records: list[FastqRecord]) -> int:
        # sequence + qualities + id + framing: the wire-size estimate the
        # shard sizer and the service's payload check both use
        return sum(2 * r.length + len(r.read_id) + 8 for r in records)

    def _request_bytes(self, payload, *, paired: bool) -> int:
        if paired:
            return self._records_bytes(payload[0]) + self._records_bytes(payload[1])
        return self._records_bytes(payload)

    def _response_bytes(self, outcomes: list) -> int:
        return len(outcomes) * self.response_bytes_per_outcome

    def shard_size(self, records: list[FastqRecord], mate2=None) -> int:
        """Reads per invocation: the engine's cost-model size, capped by
        what fits the request-payload limit.

        Payload size is known exactly up front, so oversized requests
        are prevented here rather than discovered by a 413.  Execution
        *time* is data-dependent (the service discovers cap overruns at
        run time), so the cap deliberately does not clamp the schedule —
        overruns surface as :class:`ExecutionCapExceeded` and are
        re-sharded, which is the ``cap_reshards`` metric the campaign
        reports.
        """
        n = len(records)
        if self.batch_size is not None:
            base = self.batch_size
        elif not self.aligner.parameters.batch_align:
            base = 64
        else:
            per_wave = -(-n // (2 * self.parallelism)) if n else 64
            base = max(64, min(1024, per_wave))
        if not n:
            return base
        total_bytes = self._records_bytes(records)
        if mate2 is not None:
            total_bytes += self._records_bytes(mate2)
        avg = max(1.0, total_bytes / n)
        by_payload = max(1, int(self.limits.max_request_bytes / avg))
        return max(1, min(base, by_payload))

    def faas_summary(self) -> dict:
        """Counters for reports: invocation mix, re-shards, billing."""
        fn = self.function
        bill = fn.bill()
        return {
            "invocations": fn.invocations,
            "cold_starts": fn.cold_starts,
            "warm_starts": fn.warm_starts,
            "cold_start_share": fn.cold_start_share,
            "throttle_retries": self.throttle_retries,
            "crash_retries": self.crash_retries,
            "cap_reshards": self.cap_reshards,
            "payload_reshards": self.payload_reshards,
            "gb_seconds": bill.gb_seconds,
            "billed_usd": bill.total_usd,
        }

    # -- scatter side --------------------------------------------------------

    def _execute_shard(self, payload, *, paired: bool):
        """Run one shard through one (or more) function invocations.

        Returns the worker-tuple ``(outcomes, partial, seed_stats)`` —
        exactly what a pool worker would have produced for this shard,
        whatever combination of retries and splits it took to get there.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                invocation = self.function.invoke(
                    self._request_bytes(payload, paired=paired),
                    now=self.virtual_now,
                )
            except PayloadTooLarge:
                self.payload_reshards += 1
                return self._split_shard(payload, paired=paired)
            except TooManyRequests:
                if not self.retry.should_retry(attempt):
                    raise
                self.throttle_retries += 1
                self.virtual_now += self.retry.delay_for(attempt)
                continue
            # the function body: the same pure helpers a pool worker runs,
            # so the shard result is byte-identical wherever it executes
            if paired:
                value = _align_pairs(self._paired_aligner(), payload)
                n_reads = len(payload[0])
            else:
                value = _align_records(self.aligner, payload)
                n_reads = len(payload)
            duration = n_reads * self.seconds_per_read
            self.virtual_now += invocation.cold_start_seconds + min(
                duration, self.limits.max_execution_seconds
            )
            try:
                self.function.complete(
                    invocation,
                    duration,
                    self._response_bytes(value[0]),
                    now=self.virtual_now,
                )
            except FunctionCrashed:
                if not self.retry.should_retry(attempt):
                    raise
                self.crash_retries += 1
                self.virtual_now += self.retry.delay_for(attempt)
                continue
            except ExecutionCapExceeded:
                self.cap_reshards += 1
                return self._split_shard(payload, paired=paired)
            except PayloadTooLarge:
                # the response could not leave the function: halve the work
                self.payload_reshards += 1
                return self._split_shard(payload, paired=paired)
            return value

    def _split_shard(self, payload, *, paired: bool):
        n = len(payload[0]) if paired else len(payload)
        if n <= 1:
            raise  # single read still over a limit: surface the limit error
        mid = n // 2
        if paired:
            left = (payload[0][:mid], payload[1][:mid])
            right = (payload[0][mid:], payload[1][mid:])
        else:
            left, right = payload[:mid], payload[mid:]
        return self._merge_values(
            self._execute_shard(left, paired=paired),
            self._execute_shard(right, paired=paired),
        )

    def _merge_values(self, a, b):
        """Fold two sub-shard worker tuples into one shard tuple."""
        a_out, a_partial, a_stats = a
        b_out, b_partial, b_stats = b
        if a_partial is None and b_partial is None:
            partial = None
        else:
            merged = GeneCounts(self.aligner.index.annotation)
            for p in (a_partial, b_partial):
                if p is not None:
                    merged.merge_partial(p)
            partial = merged.to_partial()
        stats = {
            k: a_stats.get(k, 0) + b_stats.get(k, 0)
            for k in a_stats.keys() | b_stats.keys()
            if k != "fallback_depths"
        }
        depths = dict(a_stats.get("fallback_depths", {}))
        for d, c in b_stats.get("fallback_depths", {}).items():
            depths[d] = depths.get(d, 0) + c
        stats["fallback_depths"] = depths
        return a_out + b_out, partial, stats

    # -- gather side ---------------------------------------------------------

    def align(
        self,
        reads: ReadBatch,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        checkpoint: Any = None,
    ) -> AlignmentOutcome:
        if reads.paired:
            assert reads.mate2 is not None
            return self._align_paired(
                reads.records, reads.mate2, monitor=monitor, checkpoint=checkpoint
            )
        return self._align_single(
            reads.records, monitor=monitor, out_dir=out_dir, checkpoint=checkpoint
        )

    def align_stream(
        self,
        stream: ReadChunkStream,
        *,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
    ) -> AlignmentOutcome:
        """Materialize, then align: short-lived functions need whole
        request payloads, so there is no intra-accession overlap to win —
        inter-accession prefetch overlap still applies."""
        return self.align(stream.materialize(), monitor=monitor, out_dir=out_dir)

    def _align_single(
        self,
        records: list[FastqRecord],
        *,
        monitor: ProgressMonitorHook | None,
        out_dir: Path | str | None,
        checkpoint: Any,
    ) -> StarRunResult:
        """The engine's single-end merge loop over invocation results."""
        params = self.aligner.parameters
        if not isinstance(records, list):
            records = list(records)
        total = len(records)
        clock = time.monotonic
        started = clock()

        outcomes: list = []
        progress: list[ProgressRecord] = []
        quant = (
            params.quant_gene_counts and self.aligner.index.annotation is not None
        )
        counts = GeneCounts(self.aligner.index.annotation) if quant else None
        unique = multi = too_many = unmapped = spliced_n = 0
        mismatch_bases = 0
        aligned_bases = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=unique,
                mapped_multi=multi,
            )

        shard = self.shard_size(records)
        bounds = _shard_bounds(total, shard) if total else []
        cached = (
            {b: checkpoint.load(b[0], b[1]) for b in bounds}
            if checkpoint is not None
            else {}
        )
        for span in bounds:
            s, e = span
            batch = records[s:e]
            hit = cached.get(span)
            replayed = hit is not None
            value = hit if replayed else self._execute_shard(batch, paired=False)
            batch_outcomes, partial, seed_stats = value
            consumed = 0
            for record, outcome in zip(batch, batch_outcomes):
                outcomes.append(outcome)
                consumed += 1
                if outcome.status is AlignmentStatus.UNIQUE:
                    unique += 1
                    if outcome.spliced:
                        spliced_n += 1
                    mismatch_bases += outcome.mismatches
                    aligned_bases += record.length
                elif outcome.status is AlignmentStatus.MULTIMAPPED:
                    multi += 1
                elif outcome.status is AlignmentStatus.TOO_MANY_LOCI:
                    too_many += 1
                else:
                    unmapped += 1
                if len(outcomes) % params.progress_every == 0:
                    rec = snapshot()
                    progress.append(rec)
                    if monitor is not None and not monitor(rec):
                        aborted = True
                        break
            if counts is not None:
                if consumed == len(batch_outcomes) and partial is not None:
                    counts.merge_partial(partial)
                else:
                    for outcome in batch_outcomes[:consumed]:
                        _count_outcome(counts, outcome)
            if (
                checkpoint is not None
                and not replayed
                and not aborted
                and consumed == len(batch_outcomes)
            ):
                checkpoint.record(s, e, batch_outcomes, partial, seed_stats)
            if aborted:
                break

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=unique,
            mapped_multi=multi,
            too_many_loci=too_many,
            unmapped=unmapped,
            mismatch_rate=(mismatch_bases / aligned_bases) if aligned_bases else 0.0,
            spliced_reads=spliced_n,
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        result = StarRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
        if out_dir is not None:
            result.write_outputs(out_dir)
        return result

    def _align_paired(
        self,
        mate1: list[FastqRecord],
        mate2: list[FastqRecord],
        *,
        monitor: ProgressMonitorHook | None,
        checkpoint: Any,
    ) -> PairedRunResult:
        """The engine's paired merge loop over invocation results."""
        params = self._paired_aligner().parameters
        total = len(mate1)
        clock = time.monotonic
        started = clock()
        outcomes: list = []
        progress: list[ProgressRecord] = []
        quant = (
            params.quant_gene_counts and self.aligner.index.annotation is not None
        )
        counts = GeneCounts(self.aligner.index.annotation) if quant else None
        proper = one_mate = discordant = multi = unmapped = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=proper + one_mate + discordant,
                mapped_multi=multi,
            )

        shard = self.shard_size(mate1, mate2)
        bounds = _shard_bounds(total, shard) if total else []
        cached = (
            {b: checkpoint.load(b[0], b[1]) for b in bounds}
            if checkpoint is not None
            else {}
        )
        for span in bounds:
            s, e = span
            hit = cached.get(span)
            replayed = hit is not None
            value = (
                hit
                if replayed
                else self._execute_shard((mate1[s:e], mate2[s:e]), paired=True)
            )
            batch_outcomes, partial, seed_stats = value
            consumed = 0
            for outcome in batch_outcomes:
                outcomes.append(outcome)
                consumed += 1
                if outcome.status is PairStatus.PROPER_PAIR:
                    proper += 1
                elif outcome.status is PairStatus.ONE_MATE:
                    one_mate += 1
                elif outcome.status is PairStatus.DISCORDANT:
                    discordant += 1
                elif outcome.status is PairStatus.MULTIMAPPED:
                    multi += 1
                else:
                    unmapped += 1
                if len(outcomes) % params.progress_every == 0:
                    rec = snapshot()
                    progress.append(rec)
                    if monitor is not None and not monitor(rec):
                        aborted = True
                        break
            if counts is not None:
                if consumed == len(batch_outcomes) and partial is not None:
                    counts.merge_partial(partial)
                else:
                    for outcome in batch_outcomes[:consumed]:
                        _count_paired_outcome(counts, outcome)
            if (
                checkpoint is not None
                and not replayed
                and not aborted
                and consumed == len(batch_outcomes)
            ):
                checkpoint.record(s, e, batch_outcomes, partial, seed_stats)
            if aborted:
                break

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=proper + one_mate + discordant,
            mapped_multi=multi,
            too_many_loci=0,
            unmapped=unmapped,
            mismatch_rate=0.0,
            spliced_reads=sum(
                o.mate1.spliced or o.mate2.spliced for o in outcomes
            ),
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        return PairedRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )


def resolve_backend(
    config: Any,
    aligner: StarAligner,
    engine: ParallelStarAligner | None = None,
    *,
    paired: bool = False,
    requested: str | None = None,
    faas: FaasAlignerBackend | None = None,
) -> AlignerBackend:
    """Pick the backend for one accession.

    ``config`` is the pipeline-level options bundle (duck-typed so this
    module stays import-light); backend-selection knobs added there are
    honoured here, keeping call sites branch-free.

    ``requested`` (or ``config.backend``) pins an execution substrate:
    ``"serial"`` runs in-process even when a live engine exists,
    ``"engine"`` demands the worker pool (ValueError without one),
    ``"faas"`` routes through ``faas`` — a pipeline-cached
    :class:`FaasAlignerBackend`, built fresh here when none is supplied
    (warm containers then do not persist across accessions).  Under
    ``"auto"`` (the default) a live ``engine`` wins (it serves both
    layouts from one worker pool); otherwise the library layout picks
    the serial backend.
    """
    if requested is None:
        requested = getattr(config, "backend", None)
    if requested is None:
        requested = "auto"
    if requested not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {requested!r}; expected one of {BACKEND_CHOICES}"
        )
    if requested == "faas":
        if faas is not None:
            return faas
        return FaasAlignerBackend(
            aligner,
            paired_parameters=getattr(config, "paired_parameters", None),
        )
    if requested == "engine":
        if engine is None:
            raise ValueError(
                'backend="engine" needs a live engine (workers > 1)'
            )
        return EngineBackend(engine)
    if requested == "auto" and engine is not None:
        return EngineBackend(engine)
    if paired:
        parameters = getattr(config, "paired_parameters", None)
        return PairedAlignerBackend(PairedStarAligner(aligner, parameters))
    return SerialAlignerBackend(aligner)
