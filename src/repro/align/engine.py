"""Shared-memory parallel alignment engine.

The paper's instance architecture (§II, Fig. 2) keeps one copy of the
STAR index in ``/dev/shm`` and fans alignment work out to every core.
This module reproduces both levers for the in-process aligner:

* :class:`SharedIndexBlocks` publishes a :class:`~repro.align.index.
  GenomeIndex`'s big arrays — the genome (1 byte/base), the suffix
  array (8 bytes/base), and the prefix jump table — into POSIX shared
  memory once.  Worker processes *attach* to the blocks and wrap them
  in zero-copy numpy views instead of each receiving a ~9 byte/base
  pickle;

* :class:`ParallelStarAligner` shards a read stream into batches,
  dispatches them to a persistent worker pool, and merges the per-batch
  results **deterministically in read order**, so the merged
  :class:`~repro.align.star.StarRunResult` is identical to what the
  serial :class:`~repro.align.star.StarAligner` produces — outcomes,
  progress snapshots, final stats, and gene counts alike.

The early-stopping contract survives parallelism: the monitor hook sees
merged :class:`~repro.align.progress.ProgressRecord` values in read
order at exactly the serial cadence, and an abort stops the merge at the
same read the serial loop would have stopped at, cancels every batch not
yet dispatched, and abandons the (bounded) in-flight window.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
import weakref
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.pool import TERMINATE, AsyncResult, Pool
from pathlib import Path

import numpy as np

from repro.align.counts import GeneCounts, GeneCountsPartial
from repro.align.index import GenomeIndex
from repro.align.suffix_array import PrefixJumpTable, SeedSearchStats
from repro.align.paired import (
    PairedOutcome,
    PairedParameters,
    PairedRunResult,
    PairedStarAligner,
    PairStatus,
)
from repro.align.progress import FinalLogStats, ProgressRecord
from repro.align.star import (
    ReadAlignment,
    AlignmentStatus,
    ProgressMonitorHook,
    StarAligner,
    StarParameters,
    StarRunResult,
)
from repro.genome.annotation import Annotation
from repro.reads.fastq import FastqRecord

__all__ = [
    "EngineHealth",
    "ParallelStarAligner",
    "SharedIndexBlocks",
    "SharedIndexSpec",
    "attach_shared_index",
]


# --------------------------------------------------------------------------
# shared-memory publication
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedIndexSpec:
    """Everything a worker needs to reconstruct the index.

    The two block names point at the shared-memory copies of the big
    arrays; the remaining fields (contig table, annotation, sjdb) are
    small and travel with the spec itself.
    """

    genome_block: str
    suffix_block: str
    n_bases: int
    assembly_name: str
    names: list[str]
    offsets: np.ndarray
    annotation: Annotation | None
    sjdb: set[tuple[str, int, int]]
    #: prefix jump table, published alongside genome/SA so workers never
    #: rebuild it; ``None`` when the index was built without one
    jump_block: str | None = None
    jump_length: int = 0


def attach_shared_index(spec: SharedIndexSpec) -> tuple[GenomeIndex, list]:
    """Attach to published blocks and build a zero-copy :class:`GenomeIndex`.

    Returns the index plus the block handles, which the caller must keep
    alive for as long as the index is used (the numpy views borrow their
    buffers).

    Attaching re-registers the block names with the resource tracker.
    Pool workers share their parent's tracker process, where registration
    is idempotent (a set), so the parent's single ``unlink`` on shutdown
    leaves the tracker clean — no "leaked shared_memory" warnings and no
    per-worker unregister gymnastics.
    """
    genome_shm = shared_memory.SharedMemory(name=spec.genome_block)
    suffix_shm = shared_memory.SharedMemory(name=spec.suffix_block)
    genome = np.ndarray((spec.n_bases,), dtype=np.uint8, buffer=genome_shm.buf)
    suffix = np.ndarray((spec.n_bases,), dtype=np.int64, buffer=suffix_shm.buf)
    handles = [genome_shm, suffix_shm]
    jump_table = None
    if spec.jump_block is not None:
        jump_shm = shared_memory.SharedMemory(name=spec.jump_block)
        entries = 6**spec.jump_length + 1
        bounds = np.ndarray((entries,), dtype=np.int64, buffer=jump_shm.buf)
        jump_table = PrefixJumpTable(spec.jump_length, bounds)
        handles.append(jump_shm)
    index = GenomeIndex(
        assembly_name=spec.assembly_name,
        genome=genome,
        suffix_array=suffix,
        offsets=spec.offsets,
        names=list(spec.names),
        annotation=spec.annotation,
        sjdb=spec.sjdb,
        jump_table=jump_table,
        # the publisher decides whether a table exists; a worker must not
        # quietly rebuild one the parent chose to omit
        auto_jump_table=False,
    )
    return index, handles


class SharedIndexBlocks:
    """Owner of the shared-memory copies of one index's big arrays.

    Create in the parent, hand :attr:`spec` to workers, and call
    :meth:`close` (or rely on the garbage-collection finalizer) to
    release the segments.  Closing is idempotent.
    """

    def __init__(self, index: GenomeIndex) -> None:
        genome = np.ascontiguousarray(index.genome, dtype=np.uint8)
        suffix = np.ascontiguousarray(index.suffix_array, dtype=np.int64)
        if index.jump_table is None and index.auto_jump_table and index.n_bases:
            index.jump_table = PrefixJumpTable.build(genome, suffix)
        # shared_memory rejects zero-sized segments; a degenerate empty
        # index still gets valid (1-byte) blocks and n_bases=0 views.
        self._genome_shm = shared_memory.SharedMemory(
            create=True, size=max(1, genome.nbytes)
        )
        self._suffix_shm = shared_memory.SharedMemory(
            create=True, size=max(1, suffix.nbytes)
        )
        np.ndarray(genome.shape, dtype=np.uint8, buffer=self._genome_shm.buf)[
            :
        ] = genome
        np.ndarray(suffix.shape, dtype=np.int64, buffer=self._suffix_shm.buf)[
            :
        ] = suffix
        self._shms = [self._genome_shm, self._suffix_shm]
        jump_block = None
        jump_length = 0
        if index.jump_table is not None:
            bounds = np.ascontiguousarray(index.jump_table.bounds, dtype=np.int64)
            jump_shm = shared_memory.SharedMemory(create=True, size=bounds.nbytes)
            np.ndarray(bounds.shape, dtype=np.int64, buffer=jump_shm.buf)[:] = bounds
            self._shms.append(jump_shm)
            jump_block = jump_shm.name
            jump_length = index.jump_table.length
        self.spec = SharedIndexSpec(
            genome_block=self._genome_shm.name,
            suffix_block=self._suffix_shm.name,
            n_bases=index.n_bases,
            assembly_name=index.assembly_name,
            names=list(index.names),
            offsets=np.asarray(index.offsets, dtype=np.int64).copy(),
            annotation=index.annotation,
            sjdb=index.sjdb,
            jump_block=jump_block,
            jump_length=jump_length,
        )
        self._finalizer = weakref.finalize(self, _release_blocks, *self._shms)

    @property
    def nbytes(self) -> int:
        """Bytes resident in shared memory."""
        return sum(shm.size for shm in self._shms)

    def close(self) -> None:
        """Release both segments (close + unlink); safe to call twice."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive


def _release_blocks(*blocks: shared_memory.SharedMemory) -> None:
    for shm in blocks:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

#: Per-worker state, populated by :func:`_init_worker`.  Module-global so
#: batch functions dispatched through the pool can reach it.
_WORKER: dict = {}


def _init_worker(
    spec: SharedIndexSpec,
    parameters: StarParameters,
    paired_parameters: PairedParameters,
) -> None:
    index, handles = attach_shared_index(spec)
    aligner = StarAligner(index, parameters)
    # Build the search context now (bytes genome + zero-copy SA view):
    # paying it at init keeps the first batch's latency flat.
    index.search_context  # noqa: B018 - intentional warm-up
    _WORKER["aligner"] = aligner
    _WORKER["paired"] = PairedStarAligner(aligner, paired_parameters)
    _WORKER["handles"] = handles


def _quant_enabled(aligner: StarAligner) -> bool:
    return (
        aligner.parameters.quant_gene_counts
        and aligner.index.annotation is not None
    )


def _align_records(
    aligner: StarAligner, records: list[FastqRecord]
) -> tuple[list[ReadAlignment], GeneCountsPartial | None, dict]:
    """Align one single-end batch with a given aligner (pure; no globals).

    Shared by pool workers and the parent's serial fallback, so a batch
    produces identical results wherever it runs.  The third element is
    this batch's seed-search counter delta (see
    :class:`~repro.align.suffix_array.SeedSearchStats`), which the merge
    loop folds into :attr:`EngineHealth.seed_search`.
    """
    counts = (
        GeneCounts(aligner.index.annotation) if _quant_enabled(aligner) else None
    )
    stats = aligner.index.search_context.stats
    before = stats.snapshot()
    # align_batch routes through the vectorized batch core when the
    # parameters enable it (the per-read loop otherwise) — either way the
    # outcomes are bit-identical, so workers and the parent's serial
    # fallback stay interchangeable.
    outcomes = aligner.align_batch(records)
    if counts is not None:
        for outcome in outcomes:
            _count_outcome(counts, outcome)
    return (
        outcomes,
        counts.to_partial() if counts is not None else None,
        stats.since(before),
    )


def _align_pairs(
    paired: PairedStarAligner,
    batch: tuple[list[FastqRecord], list[FastqRecord]],
) -> tuple[list[PairedOutcome], GeneCountsPartial | None, dict]:
    """Align one paired batch with a given paired aligner (pure; no globals)."""
    quant = (
        paired.parameters.quant_gene_counts
        and paired.aligner.index.annotation is not None
    )
    counts = GeneCounts(paired.aligner.index.annotation) if quant else None
    stats = paired.aligner.index.search_context.stats
    before = stats.snapshot()
    # both mate lists go through the batch core as whole batches, then
    # pairing runs per-pair — same decomposition as PairedStarAligner.run
    mates1 = paired.aligner.align_batch(batch[0])
    mates2 = paired.aligner.align_batch(batch[1])
    outcomes = []
    for r1, m1, m2 in zip(batch[0], mates1, mates2):
        outcome = paired._pair_outcome(r1, m1, m2)
        outcomes.append(outcome)
        if counts is not None:
            _count_paired_outcome(counts, outcome)
    return (
        outcomes,
        counts.to_partial() if counts is not None else None,
        stats.since(before),
    )


def _align_batch(
    records: list[FastqRecord],
) -> tuple[list[ReadAlignment], GeneCountsPartial | None, dict]:
    """Pool entry point: align one single-end batch with the worker aligner."""
    return _align_records(_WORKER["aligner"], records)


def _align_batch_paired(
    batch: tuple[list[FastqRecord], list[FastqRecord]],
) -> tuple[list[PairedOutcome], GeneCountsPartial | None, dict]:
    """Pool entry point: align one paired batch with the worker aligner."""
    return _align_pairs(_WORKER["paired"], batch)


def _tail_floor(shard: int) -> int:
    """Minimum size worth dispatching as its own final shard."""
    return max(1, shard // 4)


def _shard_bounds(total: int, shard: int) -> list[tuple[int, int]]:
    """Slice bounds for ``total`` reads in ``shard``-sized pieces.

    A degenerate tail (shorter than a quarter shard) is merged into the
    previous shard instead of being dispatched on its own — streaming
    produces arbitrary tail chunks, and a near-empty final dispatch
    costs a full worker round-trip for a handful of reads.  Results are
    unaffected: merging only moves a batch boundary, and outcomes are
    batch-boundary invariant.
    """
    bounds = [
        (start, min(start + shard, total)) for start in range(0, total, shard)
    ]
    if len(bounds) >= 2 and bounds[-1][1] - bounds[-1][0] < _tail_floor(shard):
        start, end = bounds.pop()
        prev_start, _ = bounds.pop()
        bounds.append((prev_start, end))
    return bounds


def _iter_shards(records: Iterable, shard: int) -> Iterator[list]:
    """Lazily shard any record iterable, merging a degenerate tail.

    One full shard is held back so the final short tail (when smaller
    than :func:`_tail_floor`) can be merged into it — the streaming
    equivalent of :func:`_shard_bounds`, pulling no more than one shard
    ahead of what has been dispatched.
    """
    it = iter(records)
    held = list(itertools.islice(it, shard))
    if not held:
        return
    while True:
        nxt = list(itertools.islice(it, shard))
        if not nxt:
            yield held
            return
        if len(nxt) < _tail_floor(shard):
            # short tail implies the iterable is exhausted
            held.extend(nxt)
            yield held
            return
        yield held
        held = nxt


def _count_outcome(counts: GeneCounts, outcome: ReadAlignment) -> None:
    """The serial run loop's per-read GeneCounts bookkeeping, verbatim."""
    if outcome.status is AlignmentStatus.UNIQUE:
        counts.record_unique(list(outcome.blocks), outcome.strand)
    elif outcome.status in (
        AlignmentStatus.MULTIMAPPED,
        AlignmentStatus.TOO_MANY_LOCI,
    ):
        counts.record_multimapped()
    else:
        counts.record_unmapped()


def _count_paired_outcome(counts: GeneCounts, outcome: PairedOutcome) -> None:
    """The paired run loop's per-pair GeneCounts bookkeeping, verbatim."""
    if outcome.status is PairStatus.PROPER_PAIR:
        blocks = list(outcome.mate1.blocks) + list(outcome.mate2.blocks)
        counts.record_unique(blocks, outcome.mate1.strand)
    elif outcome.status is PairStatus.ONE_MATE:
        unique = (
            outcome.mate1
            if outcome.mate1.status is AlignmentStatus.UNIQUE
            else outcome.mate2
        )
        counts.record_unique(list(unique.blocks), unique.strand)
    elif outcome.status in (PairStatus.DISCORDANT, PairStatus.MULTIMAPPED):
        counts.record_multimapped()
    else:
        counts.record_unmapped()


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


@dataclass
class EngineHealth:
    """Failure/recovery accounting for one engine's lifetime.

    ``degraded`` flips when the worker pool became unusable and the
    engine switched to computing batches serially in the parent — runs
    still complete (identical output, serial speed).
    """

    worker_failures: int = 0
    redispatched_batches: int = 0
    serial_fallback_batches: int = 0
    pool_restarts: int = 0
    degraded: bool = False
    #: batches merged that ran through the vectorized batch core
    #: (:mod:`repro.align.batch`) rather than the per-read reference path
    batch_core_batches: int = 0
    #: aggregated seed-search counters (jump-table hits, binary-search
    #: steps saved, fallback-depth histogram) across every batch merged by
    #: this engine, wherever the batch ran
    seed_search: SeedSearchStats = field(default_factory=SeedSearchStats)


#: sentinel for an exhausted payload stream in _ordered_results
_NO_PAYLOAD = object()


class _LocalResult:
    """An already-computed batch result quacking like an AsyncResult."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def ready(self) -> bool:
        return True

    def get(self, timeout: float | None = None):
        return self.value


@dataclass
class _Inflight:
    """One dispatched batch: payload kept so it can be re-dispatched."""

    payload: object
    result: "AsyncResult | _LocalResult"
    attempts: int = 1


class ParallelStarAligner:
    """Multiprocess drop-in for :class:`~repro.align.star.StarAligner.run`.

    The engine owns a :class:`SharedIndexBlocks` publication and a
    persistent worker pool; both are created lazily on the first
    :meth:`run` (or eagerly via :meth:`start`/``with``) and reused across
    runs, mirroring the paper's load-index-once-per-instance design.

    ``batch_size`` reads are pickled per task; the index is never
    re-sent.  ``batch_size=None`` (the default) sizes shards from the
    batch-core cost model: the vectorized core amortizes its per-call
    numpy overhead across the whole shard, so shards should be as large
    as load balancing allows — two shards per worker bounds the tail
    straggler at half a worker's share, clamped to [64, 1024] so tiny
    runs still exercise every worker and huge runs still checkpoint
    progress at a useful cadence.  With the batch core disabled the
    historical 64-read shard is kept (per-read cost dominates, shard
    size is latency-neutral).  Results are merged strictly in read
    order, so outputs —
    including the ``Log.progress.out`` cadence the early-stopping monitor
    consumes — are identical to a serial run's.  When the monitor aborts,
    batches not yet dispatched are cancelled and at most
    ``max_inflight`` already-dispatched batches are discarded.
    """

    def __init__(
        self,
        index: GenomeIndex,
        parameters: StarParameters | None = None,
        *,
        workers: int = 2,
        batch_size: int | None = None,
        max_inflight: int | None = None,
        paired_parameters: PairedParameters | None = None,
        mp_context: str | None = None,
        health_interval: float = 0.1,
        max_batch_retries: int = 3,
        stall_timeout: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if health_interval <= 0:
            raise ValueError("health_interval must be positive")
        if max_batch_retries < 1:
            raise ValueError("max_batch_retries must be >= 1")
        if stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        self.index = index
        self.parameters = parameters or StarParameters()
        self.paired_parameters = paired_parameters or PairedParameters()
        self.workers = workers
        self.batch_size = batch_size
        self.max_inflight = max_inflight or 2 * workers
        self.mp_context = mp_context
        #: how often the merge loop re-checks worker liveness while waiting
        self.health_interval = health_interval
        #: dispatch attempts per batch before it is computed in the parent
        self.max_batch_retries = max_batch_retries
        #: after a worker failure, how long re-dispatched work may sit
        #: with no completions before the pool is declared wedged
        self.stall_timeout = stall_timeout
        self.health = EngineHealth()
        self._blocks: SharedIndexBlocks | None = None
        self._pool: Pool | None = None
        self._worker_pids: set[int] = set()
        self._local: StarAligner | None = None
        self._local_paired: PairedStarAligner | None = None
        #: a worker was killed/lost since the last (re)start — arms the
        #: stall detector (healthy pools never pay stall bookkeeping)
        self._suspect = False
        self._dispatch_lock = threading.Lock()
        self._active_runs = 0

    # -- lifecycle -----------------------------------------------------------

    def _spawn_pool(self) -> Pool:
        """Create a worker pool attached to the already-published blocks."""
        ctx = mp.get_context(self.mp_context)
        return ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(
                self._blocks.spec,
                self.parameters,
                self.paired_parameters,
            ),
        )

    def start(self) -> "ParallelStarAligner":
        """Publish the index and spin up the worker pool (idempotent)."""
        if self._pool is None:
            self._blocks = SharedIndexBlocks(self.index)
            self._pool = self._spawn_pool()
            self._worker_pids = {p.pid for p in self._pool._pool}
            self._suspect = False
        return self

    def _teardown_pool(self, pool: Pool) -> None:
        """Terminate a pool, surviving SIGKILLed workers.

        A worker SIGKILLed mid-queue-operation dies *holding* whichever
        POSIX semaphore it had acquired (process death does not release
        them) and may leave a half-read byte stream in the task pipe, so
        every graceful path through ``Pool.terminate`` — the task-queue
        drain, the result-queue sentinel put — can block forever on a
        lock no live process will ever release.  When any worker was
        lost, bypass the graceful machinery entirely: defuse the
        finalizer (it would rerun — and hang — the same drain at
        interpreter exit), stop the maintenance threads, and SIGKILL
        what's left.  Handler threads are daemons, so any parked on a
        dead semaphore are simply abandoned with the pool.
        """
        if not self._suspect and all(p.is_alive() for p in pool._pool):
            pool.terminate()
            pool.join()
            return
        pool._terminate.cancel()
        for handler in (
            pool._worker_handler,
            pool._task_handler,
            pool._result_handler,
        ):
            handler._state = TERMINATE
        try:
            pool._change_notifier.put(None)
        except Exception:
            pass
        pool._worker_handler.join(timeout=1.0)
        for proc in pool._pool:
            if proc.is_alive():
                proc.kill()
        for proc in pool._pool:
            proc.join(timeout=1.0)

    def close(self) -> None:
        """Tear down the pool and release the shared-memory blocks."""
        if self._pool is not None:
            self._teardown_pool(self._pool)
            self._pool = None
        if self._blocks is not None:
            self._blocks.close()
            self._blocks = None
        self._worker_pids = set()
        self._suspect = False

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: wait for active runs, then :meth:`close`.

        The pipeline's drain path (SIGTERM / spot notice) calls this so
        in-flight alignments finish merging before the pool and the
        shared-memory publication go away.  Returns True when every run
        finished within ``timeout`` seconds (or no run was active);
        False when the deadline expired and the pool was torn down with
        work still in flight — those runs degrade to serial-in-parent
        for whatever batches remain, so they still complete correctly.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._dispatch_lock:
                if self._active_runs == 0:
                    self.close()
                    return True
                if deadline is not None and time.monotonic() >= deadline:
                    # deadline expired with runs still merging: condemn the
                    # pool so those runs compute remaining batches in the
                    # parent (degraded = serial, identical output), then
                    # tear it down.  _pool is cleared under the lock so no
                    # merge loop re-dispatches into a dying pool, and the
                    # end-of-run finalizer skips its pool rebuild.
                    self.health.degraded = True
                    pool, self._pool = self._pool, None
                    break
            time.sleep(0.005)
        if pool is not None:
            self._teardown_pool(pool)
        if self._blocks is not None:
            self._blocks.close()
            self._blocks = None
        self._worker_pids = set()
        return False

    def __enter__(self) -> "ParallelStarAligner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def shared_bytes(self) -> int:
        """Bytes currently published to shared memory (0 when stopped)."""
        return self._blocks.nbytes if self._blocks is not None else 0

    # -- fault injection / introspection ---------------------------------------

    def worker_pids(self) -> list[int]:
        """PIDs of currently live pool workers (empty when stopped)."""
        if self._pool is None:
            return []
        return [p.pid for p in self._pool._pool if p.is_alive()]

    def kill_worker(self, index: int = 0) -> int:
        """SIGKILL one live worker (chaos testing); returns its pid.

        The merge loop notices the death, re-dispatches whatever that
        worker had in flight, and keeps going — callers observe nothing
        but latency.
        """
        pids = self.start().worker_pids()
        if not pids:
            raise RuntimeError("no live workers to kill")
        pid = pids[index % len(pids)]
        os.kill(pid, signal.SIGKILL)
        # arm the stall detector: depending on what the worker was doing
        # when it died, the pool may be wedged rather than self-healing
        self._suspect = True
        return pid

    # -- dispatch ------------------------------------------------------------

    def _shard_size(self, n_reads: int) -> int:
        """Reads per dispatched shard for a run of ``n_reads``."""
        if self.batch_size is not None:
            return self.batch_size
        if not self.parameters.batch_align:
            return 64
        per_worker = -(-n_reads // (2 * self.workers))  # ceil division
        return max(64, min(1024, per_worker))

    def _local_aligner(self) -> StarAligner:
        """The parent-process serial aligner used for fallback batches."""
        if self._local is None:
            self._local = StarAligner(self.index, self.parameters)
        return self._local

    def _local_paired_aligner(self) -> PairedStarAligner:
        if self._local_paired is None:
            self._local_paired = PairedStarAligner(
                self._local_aligner(), self.paired_parameters
            )
        return self._local_paired

    def _local_equivalent(self, fn: Callable) -> Callable:
        """The in-parent function computing exactly what ``fn`` computes
        in a worker — same pure batch helper, different aligner instance,
        byte-identical results."""
        if fn is _align_batch:
            return lambda payload: _align_records(self._local_aligner(), payload)
        return lambda payload: _align_pairs(self._local_paired_aligner(), payload)

    def _workers_changed(self) -> bool:
        """True when the worker set lost a member since the last snapshot."""
        if self._pool is None:
            return True
        procs = list(self._pool._pool)
        pids = {p.pid for p in procs}
        changed = pids != self._worker_pids or any(
            not p.is_alive() for p in procs
        )
        if changed:
            self._worker_pids = pids
        return changed

    def _submit(self, fn: Callable, local_fn: Callable, payload, attempts=1):
        """Dispatch one batch to the pool, or compute it locally when
        the engine is degraded / the pool refuses work."""
        if not self.health.degraded and self._pool is not None:
            try:
                return _Inflight(
                    payload, self._pool.apply_async(fn, (payload,)), attempts
                )
            except Exception:
                self.health.degraded = True
        self.health.serial_fallback_batches += 1
        return _Inflight(payload, _LocalResult(local_fn(payload)), attempts)

    def _recover_inflight(
        self, fn: Callable, local_fn: Callable, inflight: "deque[_Inflight]"
    ) -> None:
        """A worker died: re-dispatch every batch not yet completed.

        The pool auto-respawns workers (same initializer, so the shared
        index re-attaches); a batch that keeps failing past
        ``max_batch_retries`` is computed in the parent instead, and if
        the pool refuses new work the engine degrades to serial-in-parent
        for everything still pending.  Duplicate execution (the old task
        may still complete elsewhere) is harmless — batches are pure, and
        the superseded AsyncResult is simply never read.
        """
        self.health.worker_failures += 1
        self._suspect = True
        for entry in inflight:
            if isinstance(entry.result, _LocalResult) or entry.result.ready():
                continue
            entry.attempts += 1
            if entry.attempts > self.max_batch_retries or self.health.degraded:
                self.health.serial_fallback_batches += 1
                entry.result = _LocalResult(local_fn(entry.payload))
                continue
            try:
                entry.result = self._pool.apply_async(fn, (entry.payload,))
                self.health.redispatched_batches += 1
            except Exception:
                self.health.degraded = True
                self.health.serial_fallback_batches += 1
                entry.result = _LocalResult(local_fn(entry.payload))

    def _localize_inflight(
        self, local_fn: Callable, inflight: "deque[_Inflight]"
    ) -> None:
        """Compute every not-yet-ready in-flight batch in the parent."""
        for entry in inflight:
            if isinstance(entry.result, _LocalResult) or entry.result.ready():
                continue
            self.health.serial_fallback_batches += 1
            entry.result = _LocalResult(local_fn(entry.payload))

    def _degrade_pool(
        self, local_fn: Callable, inflight: "deque[_Inflight]"
    ) -> None:
        """Declare the pool wedged: serial fallback for everything pending.

        A worker SIGKILLed while blocked reading the shared task queue
        dies holding the queue's read lock, which wedges the whole pool —
        respawned workers block on the dead process's lock and no task is
        ever picked up again.  Re-dispatch cannot fix that, so once
        re-dispatched work stalls past ``stall_timeout`` the engine stops
        trusting the pool: pending batches are computed in the parent
        (identical output, serial speed) and the pool is rebuilt when the
        last active run finishes.
        """
        self.health.degraded = True
        self._localize_inflight(local_fn, inflight)

    def _await_head(
        self,
        fn: Callable,
        local_fn: Callable,
        head: _Inflight,
        inflight: "deque[_Inflight]",
    ):
        """Block until the oldest in-flight batch has a value.

        Waits in ``health_interval`` slices: a timeout is the cue to
        re-check worker liveness, because a batch whose worker was
        SIGKILLed will never complete on its original AsyncResult.  After
        a worker loss, time spent waiting with no completions and no
        further worker churn accumulates toward ``stall_timeout``; hitting
        it means the pool is wedged and the run degrades to serial.
        """
        stalled = 0.0
        while True:
            if isinstance(head.result, _LocalResult):
                return head.result.value
            try:
                return head.result.get(timeout=self.health_interval)
            except mp.TimeoutError:
                with self._dispatch_lock:
                    if self._workers_changed():
                        self._recover_inflight(fn, local_fn, inflight)
                        stalled = 0.0
                        continue
                    if self.health.degraded:
                        # another run's merge loop already condemned the
                        # pool; stop waiting on it immediately
                        self._localize_inflight(local_fn, inflight)
                        continue
                    if self._suspect:
                        stalled += self.health_interval
                        if stalled >= self.stall_timeout:
                            self._degrade_pool(local_fn, inflight)

    def _restart_pool(self) -> None:
        """Replace a wedged pool with a fresh one (call with lock held).

        The shared-memory blocks outlive the pool, so the rebuild is just
        process spawn + re-attach — the index is never re-published.
        """
        if self._pool is not None:
            self._teardown_pool(self._pool)
        self._pool = self._spawn_pool()
        self._worker_pids = {p.pid for p in self._pool._pool}
        self._suspect = False
        self.health.degraded = False
        self.health.pool_restarts += 1

    def _ordered_results(self, fn: Callable, payloads: Iterable) -> Iterator:
        """Yield ``(payload, fn(payload))`` pairs in payload order.

        ``payloads`` may be any iterable — including a live stream whose
        next item is not available yet; dispatch simply blocks pulling it
        while already-submitted batches keep crunching in the pool (this
        is the engine end of the streaming pipeline's backpressure).
        Keeps at most ``max_inflight`` batches dispatched.  If the caller
        stops consuming (early abort), the remaining payloads are never
        pulled and in-flight results are abandoned — the pool stays
        usable for subsequent runs.  Worker deaths are absorbed by
        re-dispatch / serial fallback (see :meth:`_recover_inflight`), a
        wedged pool by degradation (see :meth:`_degrade_pool`) — so the
        stream of results is identical no matter what failed.  When the
        pool was condemned, the last run to finish rebuilds it, keeping
        the engine usable afterwards.
        """
        self.start()
        local_fn = self._local_equivalent(fn)
        with self._dispatch_lock:
            self._active_runs += 1
        try:
            inflight: deque[_Inflight] = deque()
            payload_iter = iter(payloads)
            exhausted = False
            while True:
                while not exhausted and len(inflight) < self.max_inflight:
                    payload = next(payload_iter, _NO_PAYLOAD)
                    if payload is _NO_PAYLOAD:
                        exhausted = True
                        break
                    inflight.append(self._submit(fn, local_fn, payload))
                if not inflight:
                    break
                value = self._await_head(fn, local_fn, inflight[0], inflight)
                head = inflight.popleft()
                yield head.payload, value
        finally:
            with self._dispatch_lock:
                self._active_runs -= 1
                if (
                    self.health.degraded
                    and self._active_runs == 0
                    and self._pool is not None
                ):
                    self._restart_pool()

    # -- single-end ------------------------------------------------------------

    def run(
        self,
        records: Iterable[FastqRecord],
        *,
        reads_total: int | None = None,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        clock: Callable[[], float] = time.monotonic,
        checkpoint=None,
    ) -> StarRunResult:
        """Parallel equivalent of :meth:`StarAligner.run` (same signature).

        ``records`` may be a lazy iterable (e.g. a streamed chunk feed)
        when ``reads_total`` is given — shards are pulled as they become
        available and results stay byte-identical to the list path.

        ``checkpoint`` (a :class:`repro.core.replication.
        ShardCheckpointer`) turns on shard-level recovery: shards whose
        outcomes the journal already holds are merged from the
        checkpoint instead of re-aligned, and each fully merged live
        shard is journaled as it lands.  The merged result is
        byte-identical to an uncheckpointed run — checkpointing only
        decides *where outcomes come from*, never what they are.
        Requires materialized records (the shard schedule is positional),
        so a lazy feed is drained up front when a checkpoint is given.
        """
        params = self.parameters
        if reads_total is None or checkpoint is not None:
            if not isinstance(records, list):
                records = list(records)
            total = len(records)
        else:
            total = reads_total
        started = clock()

        outcomes: list[ReadAlignment] = []
        progress: list[ProgressRecord] = []
        quant = params.quant_gene_counts and self.index.annotation is not None
        counts = GeneCounts(self.index.annotation) if quant else None
        unique = multi = too_many = unmapped = spliced_n = 0
        mismatch_bases = 0
        aligned_bases = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=unique,
                mapped_multi=multi,
            )

        shard = self._shard_size(total)
        if checkpoint is not None:
            bounds = _shard_bounds(total, shard) if total else []
            cached = {b: checkpoint.load(b[0], b[1]) for b in bounds}
            live_iter = self._ordered_results(
                _align_batch,
                (records[s:e] for s, e in bounds if cached[(s, e)] is None),
            )

            def _interleaved():
                # walk the shard schedule in order, serving cached shards
                # from the journal and live ones from the pool stream —
                # the merge loop below sees the same ordered sequence an
                # uncheckpointed run would produce
                for s, e in bounds:
                    hit = cached[(s, e)]
                    if hit is not None:
                        yield (s, e), records[s:e], hit, True
                    else:
                        batch, value = next(live_iter)
                        yield (s, e), batch, value, False

            results_iter = _interleaved()
            close_results = live_iter.close
        else:
            batches = _iter_shards(records, shard)
            plain_iter = self._ordered_results(_align_batch, batches)
            results_iter = (
                (None, batch, value, False) for batch, value in plain_iter
            )
            close_results = plain_iter.close
        # closed explicitly so the pool-restart finalizer in
        # _ordered_results runs before this method returns, not at GC time
        try:
            for span, batch, (batch_outcomes, partial, seed_stats), replayed in results_iter:
                self.health.seed_search.merge(seed_stats)
                if params.batch_align:
                    self.health.batch_core_batches += 1
                consumed = 0
                for record, outcome in zip(batch, batch_outcomes):
                    outcomes.append(outcome)
                    consumed += 1
                    if outcome.status is AlignmentStatus.UNIQUE:
                        unique += 1
                        if outcome.spliced:
                            spliced_n += 1
                        mismatch_bases += outcome.mismatches
                        aligned_bases += record.length
                    elif outcome.status is AlignmentStatus.MULTIMAPPED:
                        multi += 1
                    elif outcome.status is AlignmentStatus.TOO_MANY_LOCI:
                        too_many += 1
                    else:
                        unmapped += 1
                    if len(outcomes) % params.progress_every == 0:
                        rec = snapshot()
                        progress.append(rec)
                        if monitor is not None and not monitor(rec):
                            aborted = True
                            break
                if counts is not None:
                    if consumed == len(batch_outcomes) and partial is not None:
                        counts.merge_partial(partial)
                    else:
                        # the abort truncated this batch mid-way: recount
                        # just the consumed prefix so counts match the
                        # serial run
                        for outcome in batch_outcomes[:consumed]:
                            _count_outcome(counts, outcome)
                if (
                    checkpoint is not None
                    and not replayed
                    and not aborted
                    and consumed == len(batch_outcomes)
                ):
                    # the shard is fully merged into the run state; its
                    # outcomes are now safe to reuse on a future resume
                    checkpoint.record(
                        span[0], span[1], batch_outcomes, partial, seed_stats
                    )
                if aborted:
                    break
        finally:
            close_results()

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=unique,
            mapped_multi=multi,
            too_many_loci=too_many,
            unmapped=unmapped,
            mismatch_rate=(mismatch_bases / aligned_bases) if aligned_bases else 0.0,
            spliced_reads=spliced_n,
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        result = StarRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
        if out_dir is not None:
            result.write_outputs(out_dir)
        return result

    # -- paired-end --------------------------------------------------------------

    def run_paired(
        self,
        mate1: list[FastqRecord],
        mate2: list[FastqRecord],
        *,
        monitor: ProgressMonitorHook | None = None,
        clock: Callable[[], float] = time.monotonic,
        checkpoint=None,
    ) -> PairedRunResult:
        """Parallel equivalent of :meth:`PairedStarAligner.run`.

        ``checkpoint`` has the same contract as in :meth:`run`: paired
        shards already in the journal are merged from it instead of
        re-aligned, and each fully merged live shard is journaled as it
        lands (the payload codec round-trips :class:`PairedOutcome`
        lists — see :mod:`repro.core.replication`).
        """
        if len(mate1) != len(mate2):
            raise ValueError("mate lists must have equal length")
        params = self.paired_parameters
        total = len(mate1)
        started = clock()
        outcomes: list[PairedOutcome] = []
        progress: list[ProgressRecord] = []
        quant = params.quant_gene_counts and self.index.annotation is not None
        counts = GeneCounts(self.index.annotation) if quant else None
        proper = one_mate = discordant = multi = unmapped = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=proper + one_mate + discordant,
                mapped_multi=multi,
            )

        shard = self._shard_size(total)
        bounds = _shard_bounds(total, shard)
        batches = [(mate1[s:e], mate2[s:e]) for s, e in bounds]
        if checkpoint is not None:
            cached = {b: checkpoint.load(b[0], b[1]) for b in bounds}
            live_iter = self._ordered_results(
                _align_batch_paired,
                (
                    batch
                    for b, batch in zip(bounds, batches)
                    if cached[b] is None
                ),
            )

            def _interleaved():
                # same ordered interleave as the single-end run: cached
                # shards from the journal, live ones from the pool stream
                for b in bounds:
                    hit = cached[b]
                    if hit is not None:
                        yield b, hit, True
                    else:
                        _payload, value = next(live_iter)
                        yield b, value, False

            results_iter = _interleaved()
            close_results = live_iter.close
        else:
            plain_iter = self._ordered_results(_align_batch_paired, batches)
            results_iter = (
                (None, value, False) for _payload, value in plain_iter
            )
            close_results = plain_iter.close
        try:
            for span, (batch_outcomes, partial, seed_stats), replayed in results_iter:
                self.health.seed_search.merge(seed_stats)
                if self.parameters.batch_align:
                    self.health.batch_core_batches += 1
                consumed = 0
                for outcome in batch_outcomes:
                    outcomes.append(outcome)
                    consumed += 1
                    if outcome.status is PairStatus.PROPER_PAIR:
                        proper += 1
                    elif outcome.status is PairStatus.ONE_MATE:
                        one_mate += 1
                    elif outcome.status is PairStatus.DISCORDANT:
                        discordant += 1
                    elif outcome.status is PairStatus.MULTIMAPPED:
                        multi += 1
                    else:
                        unmapped += 1
                    if len(outcomes) % params.progress_every == 0:
                        rec = snapshot()
                        progress.append(rec)
                        if monitor is not None and not monitor(rec):
                            aborted = True
                            break
                if counts is not None:
                    if consumed == len(batch_outcomes) and partial is not None:
                        counts.merge_partial(partial)
                    else:
                        for outcome in batch_outcomes[:consumed]:
                            _count_paired_outcome(counts, outcome)
                if (
                    checkpoint is not None
                    and not replayed
                    and not aborted
                    and consumed == len(batch_outcomes)
                ):
                    checkpoint.record(
                        span[0], span[1], batch_outcomes, partial, seed_stats
                    )
                if aborted:
                    break
        finally:
            close_results()

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=proper + one_mate + discordant,
            mapped_multi=multi,
            too_many_loci=0,
            unmapped=unmapped,
            mismatch_rate=0.0,
            spliced_reads=sum(
                o.mate1.spliced or o.mate2.spliced for o in outcomes
            ),
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        return PairedRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
