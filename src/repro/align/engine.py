"""Shared-memory parallel alignment engine.

The paper's instance architecture (§II, Fig. 2) keeps one copy of the
STAR index in ``/dev/shm`` and fans alignment work out to every core.
This module reproduces both levers for the in-process aligner:

* :class:`SharedIndexBlocks` publishes a :class:`~repro.align.index.
  GenomeIndex`'s two big arrays — the genome (1 byte/base) and the
  suffix array (8 bytes/base) — into POSIX shared memory once.  Worker
  processes *attach* to the blocks and wrap them in zero-copy numpy
  views instead of each receiving a ~9 byte/base pickle;

* :class:`ParallelStarAligner` shards a read stream into batches,
  dispatches them to a persistent worker pool, and merges the per-batch
  results **deterministically in read order**, so the merged
  :class:`~repro.align.star.StarRunResult` is identical to what the
  serial :class:`~repro.align.star.StarAligner` produces — outcomes,
  progress snapshots, final stats, and gene counts alike.

The early-stopping contract survives parallelism: the monitor hook sees
merged :class:`~repro.align.progress.ProgressRecord` values in read
order at exactly the serial cadence, and an abort stops the merge at the
same read the serial loop would have stopped at, cancels every batch not
yet dispatched, and abandons the (bounded) in-flight window.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import weakref
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from multiprocessing import shared_memory
from multiprocessing.pool import AsyncResult, Pool
from pathlib import Path

import numpy as np

from repro.align.counts import GeneCounts, GeneCountsPartial
from repro.align.index import GenomeIndex
from repro.align.paired import (
    PairedOutcome,
    PairedParameters,
    PairedRunResult,
    PairedStarAligner,
    PairStatus,
)
from repro.align.progress import FinalLogStats, ProgressRecord
from repro.align.star import (
    AlignmentOutcome,
    AlignmentStatus,
    ProgressMonitorHook,
    StarAligner,
    StarParameters,
    StarRunResult,
)
from repro.genome.annotation import Annotation
from repro.reads.fastq import FastqRecord

__all__ = [
    "ParallelStarAligner",
    "SharedIndexBlocks",
    "SharedIndexSpec",
    "attach_shared_index",
]


# --------------------------------------------------------------------------
# shared-memory publication
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedIndexSpec:
    """Everything a worker needs to reconstruct the index.

    The two block names point at the shared-memory copies of the big
    arrays; the remaining fields (contig table, annotation, sjdb) are
    small and travel with the spec itself.
    """

    genome_block: str
    suffix_block: str
    n_bases: int
    assembly_name: str
    names: list[str]
    offsets: np.ndarray
    annotation: Annotation | None
    sjdb: set[tuple[str, int, int]]


def attach_shared_index(spec: SharedIndexSpec) -> tuple[GenomeIndex, list]:
    """Attach to published blocks and build a zero-copy :class:`GenomeIndex`.

    Returns the index plus the block handles, which the caller must keep
    alive for as long as the index is used (the numpy views borrow their
    buffers).

    Attaching re-registers the block names with the resource tracker.
    Pool workers share their parent's tracker process, where registration
    is idempotent (a set), so the parent's single ``unlink`` on shutdown
    leaves the tracker clean — no "leaked shared_memory" warnings and no
    per-worker unregister gymnastics.
    """
    genome_shm = shared_memory.SharedMemory(name=spec.genome_block)
    suffix_shm = shared_memory.SharedMemory(name=spec.suffix_block)
    genome = np.ndarray((spec.n_bases,), dtype=np.uint8, buffer=genome_shm.buf)
    suffix = np.ndarray((spec.n_bases,), dtype=np.int64, buffer=suffix_shm.buf)
    index = GenomeIndex(
        assembly_name=spec.assembly_name,
        genome=genome,
        suffix_array=suffix,
        offsets=spec.offsets,
        names=list(spec.names),
        annotation=spec.annotation,
        sjdb=spec.sjdb,
    )
    return index, [genome_shm, suffix_shm]


class SharedIndexBlocks:
    """Owner of the shared-memory copies of one index's big arrays.

    Create in the parent, hand :attr:`spec` to workers, and call
    :meth:`close` (or rely on the garbage-collection finalizer) to
    release the segments.  Closing is idempotent.
    """

    def __init__(self, index: GenomeIndex) -> None:
        genome = np.ascontiguousarray(index.genome, dtype=np.uint8)
        suffix = np.ascontiguousarray(index.suffix_array, dtype=np.int64)
        # shared_memory rejects zero-sized segments; a degenerate empty
        # index still gets valid (1-byte) blocks and n_bases=0 views.
        self._genome_shm = shared_memory.SharedMemory(
            create=True, size=max(1, genome.nbytes)
        )
        self._suffix_shm = shared_memory.SharedMemory(
            create=True, size=max(1, suffix.nbytes)
        )
        np.ndarray(genome.shape, dtype=np.uint8, buffer=self._genome_shm.buf)[
            :
        ] = genome
        np.ndarray(suffix.shape, dtype=np.int64, buffer=self._suffix_shm.buf)[
            :
        ] = suffix
        self.spec = SharedIndexSpec(
            genome_block=self._genome_shm.name,
            suffix_block=self._suffix_shm.name,
            n_bases=index.n_bases,
            assembly_name=index.assembly_name,
            names=list(index.names),
            offsets=np.asarray(index.offsets, dtype=np.int64).copy(),
            annotation=index.annotation,
            sjdb=index.sjdb,
        )
        self._finalizer = weakref.finalize(
            self, _release_blocks, self._genome_shm, self._suffix_shm
        )

    @property
    def nbytes(self) -> int:
        """Bytes resident in shared memory."""
        return self._genome_shm.size + self._suffix_shm.size

    def close(self) -> None:
        """Release both segments (close + unlink); safe to call twice."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive


def _release_blocks(*blocks: shared_memory.SharedMemory) -> None:
    for shm in blocks:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------

#: Per-worker state, populated by :func:`_init_worker`.  Module-global so
#: batch functions dispatched through the pool can reach it.
_WORKER: dict = {}


def _init_worker(
    spec: SharedIndexSpec,
    parameters: StarParameters,
    paired_parameters: PairedParameters,
) -> None:
    index, handles = attach_shared_index(spec)
    aligner = StarAligner(index, parameters)
    # Build the search context now (bytes genome + list suffix array):
    # paying it at init keeps the first batch's latency flat.
    index.search_context  # noqa: B018 - intentional warm-up
    _WORKER["aligner"] = aligner
    _WORKER["paired"] = PairedStarAligner(aligner, paired_parameters)
    _WORKER["handles"] = handles


def _quant_enabled(aligner: StarAligner) -> bool:
    return (
        aligner.parameters.quant_gene_counts
        and aligner.index.annotation is not None
    )


def _align_batch(
    records: list[FastqRecord],
) -> tuple[list[AlignmentOutcome], GeneCountsPartial | None]:
    """Align one single-end batch; returns outcomes + a counts partial."""
    aligner: StarAligner = _WORKER["aligner"]
    counts = (
        GeneCounts(aligner.index.annotation) if _quant_enabled(aligner) else None
    )
    outcomes = []
    for record in records:
        outcome = aligner.align_read(record)
        outcomes.append(outcome)
        if counts is not None:
            _count_outcome(counts, outcome)
    return outcomes, counts.to_partial() if counts is not None else None


def _align_batch_paired(
    batch: tuple[list[FastqRecord], list[FastqRecord]],
) -> tuple[list[PairedOutcome], GeneCountsPartial | None]:
    """Align one paired batch; returns pair outcomes + a counts partial."""
    paired: PairedStarAligner = _WORKER["paired"]
    quant = (
        paired.parameters.quant_gene_counts
        and paired.aligner.index.annotation is not None
    )
    counts = GeneCounts(paired.aligner.index.annotation) if quant else None
    outcomes = []
    for r1, r2 in zip(*batch):
        outcome = paired.align_pair(r1, r2)
        outcomes.append(outcome)
        if counts is not None:
            _count_paired_outcome(counts, outcome)
    return outcomes, counts.to_partial() if counts is not None else None


def _count_outcome(counts: GeneCounts, outcome: AlignmentOutcome) -> None:
    """The serial run loop's per-read GeneCounts bookkeeping, verbatim."""
    if outcome.status is AlignmentStatus.UNIQUE:
        counts.record_unique(list(outcome.blocks), outcome.strand)
    elif outcome.status in (
        AlignmentStatus.MULTIMAPPED,
        AlignmentStatus.TOO_MANY_LOCI,
    ):
        counts.record_multimapped()
    else:
        counts.record_unmapped()


def _count_paired_outcome(counts: GeneCounts, outcome: PairedOutcome) -> None:
    """The paired run loop's per-pair GeneCounts bookkeeping, verbatim."""
    if outcome.status is PairStatus.PROPER_PAIR:
        blocks = list(outcome.mate1.blocks) + list(outcome.mate2.blocks)
        counts.record_unique(blocks, outcome.mate1.strand)
    elif outcome.status is PairStatus.ONE_MATE:
        unique = (
            outcome.mate1
            if outcome.mate1.status is AlignmentStatus.UNIQUE
            else outcome.mate2
        )
        counts.record_unique(list(unique.blocks), unique.strand)
    elif outcome.status in (PairStatus.DISCORDANT, PairStatus.MULTIMAPPED):
        counts.record_multimapped()
    else:
        counts.record_unmapped()


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


class ParallelStarAligner:
    """Multiprocess drop-in for :class:`~repro.align.star.StarAligner.run`.

    The engine owns a :class:`SharedIndexBlocks` publication and a
    persistent worker pool; both are created lazily on the first
    :meth:`run` (or eagerly via :meth:`start`/``with``) and reused across
    runs, mirroring the paper's load-index-once-per-instance design.

    ``batch_size`` reads are pickled per task; the index is never
    re-sent.  Results are merged strictly in read order, so outputs —
    including the ``Log.progress.out`` cadence the early-stopping monitor
    consumes — are identical to a serial run's.  When the monitor aborts,
    batches not yet dispatched are cancelled and at most
    ``max_inflight`` already-dispatched batches are discarded.
    """

    def __init__(
        self,
        index: GenomeIndex,
        parameters: StarParameters | None = None,
        *,
        workers: int = 2,
        batch_size: int = 64,
        max_inflight: int | None = None,
        paired_parameters: PairedParameters | None = None,
        mp_context: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.index = index
        self.parameters = parameters or StarParameters()
        self.paired_parameters = paired_parameters or PairedParameters()
        self.workers = workers
        self.batch_size = batch_size
        self.max_inflight = max_inflight or 2 * workers
        self.mp_context = mp_context
        self._blocks: SharedIndexBlocks | None = None
        self._pool: Pool | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ParallelStarAligner":
        """Publish the index and spin up the worker pool (idempotent)."""
        if self._pool is None:
            self._blocks = SharedIndexBlocks(self.index)
            ctx = mp.get_context(self.mp_context)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    self._blocks.spec,
                    self.parameters,
                    self.paired_parameters,
                ),
            )
        return self

    def close(self) -> None:
        """Tear down the pool and release the shared-memory blocks."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._blocks is not None:
            self._blocks.close()
            self._blocks = None

    def __enter__(self) -> "ParallelStarAligner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def shared_bytes(self) -> int:
        """Bytes currently published to shared memory (0 when stopped)."""
        return self._blocks.nbytes if self._blocks is not None else 0

    # -- dispatch ------------------------------------------------------------

    def _ordered_results(self, fn: Callable, payloads: list) -> Iterator:
        """Yield ``fn(payload)`` results in payload order.

        Keeps at most ``max_inflight`` batches dispatched.  If the caller
        stops consuming (early abort), the remaining payloads are never
        submitted and in-flight results are abandoned — the pool stays
        usable for subsequent runs.
        """
        pool = self.start()._pool
        assert pool is not None
        inflight: deque[AsyncResult] = deque()
        nxt = 0
        while nxt < len(payloads) or inflight:
            while nxt < len(payloads) and len(inflight) < self.max_inflight:
                inflight.append(pool.apply_async(fn, (payloads[nxt],)))
                nxt += 1
            yield inflight.popleft().get()

    # -- single-end ------------------------------------------------------------

    def run(
        self,
        records: Iterable[FastqRecord],
        *,
        reads_total: int | None = None,
        monitor: ProgressMonitorHook | None = None,
        out_dir: Path | str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> StarRunResult:
        """Parallel equivalent of :meth:`StarAligner.run` (same signature)."""
        params = self.parameters
        records = list(records)
        total = reads_total if reads_total is not None else len(records)
        started = clock()

        outcomes: list[AlignmentOutcome] = []
        progress: list[ProgressRecord] = []
        quant = params.quant_gene_counts and self.index.annotation is not None
        counts = GeneCounts(self.index.annotation) if quant else None
        unique = multi = too_many = unmapped = spliced_n = 0
        mismatch_bases = 0
        aligned_bases = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=unique,
                mapped_multi=multi,
            )

        batches = [
            records[i : i + self.batch_size]
            for i in range(0, len(records), self.batch_size)
        ]
        for batch, (batch_outcomes, partial) in zip(
            batches, self._ordered_results(_align_batch, batches)
        ):
            consumed = 0
            for record, outcome in zip(batch, batch_outcomes):
                outcomes.append(outcome)
                consumed += 1
                if outcome.status is AlignmentStatus.UNIQUE:
                    unique += 1
                    if outcome.spliced:
                        spliced_n += 1
                    mismatch_bases += outcome.mismatches
                    aligned_bases += record.length
                elif outcome.status is AlignmentStatus.MULTIMAPPED:
                    multi += 1
                elif outcome.status is AlignmentStatus.TOO_MANY_LOCI:
                    too_many += 1
                else:
                    unmapped += 1
                if len(outcomes) % params.progress_every == 0:
                    rec = snapshot()
                    progress.append(rec)
                    if monitor is not None and not monitor(rec):
                        aborted = True
                        break
            if counts is not None:
                if consumed == len(batch_outcomes) and partial is not None:
                    counts.merge_partial(partial)
                else:
                    # the abort truncated this batch mid-way: recount just
                    # the consumed prefix so counts match the serial run
                    for outcome in batch_outcomes[:consumed]:
                        _count_outcome(counts, outcome)
            if aborted:
                break

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=unique,
            mapped_multi=multi,
            too_many_loci=too_many,
            unmapped=unmapped,
            mismatch_rate=(mismatch_bases / aligned_bases) if aligned_bases else 0.0,
            spliced_reads=spliced_n,
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        result = StarRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
        if out_dir is not None:
            result.write_outputs(out_dir)
        return result

    # -- paired-end --------------------------------------------------------------

    def run_paired(
        self,
        mate1: list[FastqRecord],
        mate2: list[FastqRecord],
        *,
        monitor: ProgressMonitorHook | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> PairedRunResult:
        """Parallel equivalent of :meth:`PairedStarAligner.run`."""
        if len(mate1) != len(mate2):
            raise ValueError("mate lists must have equal length")
        params = self.paired_parameters
        total = len(mate1)
        started = clock()
        outcomes: list[PairedOutcome] = []
        progress: list[ProgressRecord] = []
        quant = params.quant_gene_counts and self.index.annotation is not None
        counts = GeneCounts(self.index.annotation) if quant else None
        proper = one_mate = discordant = multi = unmapped = 0
        aborted = False

        def snapshot() -> ProgressRecord:
            return ProgressRecord(
                elapsed_seconds=max(0.0, clock() - started),
                reads_processed=len(outcomes),
                reads_total=total,
                mapped_unique=proper + one_mate + discordant,
                mapped_multi=multi,
            )

        batches = [
            (mate1[i : i + self.batch_size], mate2[i : i + self.batch_size])
            for i in range(0, total, self.batch_size)
        ]
        for batch_outcomes, partial in self._ordered_results(
            _align_batch_paired, batches
        ):
            consumed = 0
            for outcome in batch_outcomes:
                outcomes.append(outcome)
                consumed += 1
                if outcome.status is PairStatus.PROPER_PAIR:
                    proper += 1
                elif outcome.status is PairStatus.ONE_MATE:
                    one_mate += 1
                elif outcome.status is PairStatus.DISCORDANT:
                    discordant += 1
                elif outcome.status is PairStatus.MULTIMAPPED:
                    multi += 1
                else:
                    unmapped += 1
                if len(outcomes) % params.progress_every == 0:
                    rec = snapshot()
                    progress.append(rec)
                    if monitor is not None and not monitor(rec):
                        aborted = True
                        break
            if counts is not None:
                if consumed == len(batch_outcomes) and partial is not None:
                    counts.merge_partial(partial)
                else:
                    for outcome in batch_outcomes[:consumed]:
                        _count_paired_outcome(counts, outcome)
            if aborted:
                break

        final_snapshot = snapshot()
        if not progress or progress[-1].reads_processed != len(outcomes):
            progress.append(final_snapshot)
            if not aborted and monitor is not None and not monitor(final_snapshot):
                aborted = True

        final = FinalLogStats(
            reads_total=total,
            reads_processed=len(outcomes),
            mapped_unique=proper + one_mate + discordant,
            mapped_multi=multi,
            too_many_loci=0,
            unmapped=unmapped,
            mismatch_rate=0.0,
            spliced_reads=sum(
                o.mate1.spliced or o.mate2.spliced for o in outcomes
            ),
            elapsed_seconds=max(0.0, clock() - started),
            aborted=aborted,
        )
        return PairedRunResult(
            outcomes=outcomes,
            progress=progress,
            final=final,
            gene_counts=counts,
            aborted=aborted,
        )
