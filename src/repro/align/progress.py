"""``Log.progress.out`` and ``Log.final.out`` — STAR's reporting files.

The paper's early-stopping optimization exists *because* STAR reports the
current percentage of mapped reads while running (and, as its conclusions
note, aligners like Salmon do not).  This module defines the record type,
and writers/parsers for both files, format-compatible at the column level
with what an external monitor would scrape.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.util.validation import check_non_negative

PROGRESS_HEADER = (
    "Time\tReads processed\tReads total\tMapped unique\tMapped multi\t"
    "Mapped %\tUnmapped %"
)


@dataclass(frozen=True)
class ProgressRecord:
    """One snapshot line of ``Log.progress.out``.

    ``mapped_fraction`` counts unique + multi-mapping reads, matching the
    "current percent of mapped reads" the paper's monitor reads.
    """

    elapsed_seconds: float
    reads_processed: int
    reads_total: int
    mapped_unique: int
    mapped_multi: int

    def __post_init__(self) -> None:
        check_non_negative("elapsed_seconds", self.elapsed_seconds)
        check_non_negative("reads_processed", self.reads_processed)
        if self.mapped_unique + self.mapped_multi > self.reads_processed:
            raise ValueError("mapped reads exceed processed reads")
        if self.reads_total and self.reads_processed > self.reads_total:
            raise ValueError("processed reads exceed declared total")

    @property
    def mapped_reads(self) -> int:
        return self.mapped_unique + self.mapped_multi

    @property
    def mapped_fraction(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return self.mapped_reads / self.reads_processed

    @property
    def processed_fraction(self) -> float:
        """Fraction of the run's total reads seen so far (0 when unknown)."""
        if self.reads_total == 0:
            return 0.0
        return self.reads_processed / self.reads_total

    def to_line(self) -> str:
        """Render as one tab-separated progress line."""
        unmapped = self.reads_processed - self.mapped_reads
        unmapped_pct = (
            100.0 * unmapped / self.reads_processed if self.reads_processed else 0.0
        )
        return "\t".join(
            [
                f"{self.elapsed_seconds:.2f}",
                str(self.reads_processed),
                str(self.reads_total),
                str(self.mapped_unique),
                str(self.mapped_multi),
                f"{100.0 * self.mapped_fraction:.2f}",
                f"{unmapped_pct:.2f}",
            ]
        )

    @classmethod
    def from_line(cls, line: str) -> "ProgressRecord":
        """Parse a line produced by :meth:`to_line`."""
        fields = line.rstrip("\n").split("\t")
        if len(fields) != 7:
            raise ValueError(f"malformed progress line: {line!r}")
        return cls(
            elapsed_seconds=float(fields[0]),
            reads_processed=int(fields[1]),
            reads_total=int(fields[2]),
            mapped_unique=int(fields[3]),
            mapped_multi=int(fields[4]),
        )


def write_progress_log(records: list[ProgressRecord], path: Path | str) -> None:
    """Write a full ``Log.progress.out`` (header + one line per snapshot)."""
    with open(path, "w") as fh:
        fh.write(PROGRESS_HEADER + "\n")
        for rec in records:
            fh.write(rec.to_line() + "\n")


def read_progress_log(path: Path | str) -> list[ProgressRecord]:
    """Parse a ``Log.progress.out`` written by :func:`write_progress_log`."""
    records: list[ProgressRecord] = []
    with open(path) as fh:
        header = fh.readline().rstrip("\n")
        if header != PROGRESS_HEADER:
            raise ValueError(f"unrecognized progress header: {header!r}")
        for line in fh:
            if line.strip():
                records.append(ProgressRecord.from_line(line))
    return records


@dataclass(frozen=True)
class FinalLogStats:
    """The summary statistics of ``Log.final.out``."""

    reads_total: int
    reads_processed: int
    mapped_unique: int
    mapped_multi: int
    too_many_loci: int
    unmapped: int
    mismatch_rate: float
    spliced_reads: int
    elapsed_seconds: float
    aborted: bool = False

    @property
    def mapped_fraction(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return (self.mapped_unique + self.mapped_multi) / self.reads_processed

    @property
    def unique_fraction(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return self.mapped_unique / self.reads_processed

    def to_text(self) -> str:
        """Render in the ``key |\tvalue`` layout STAR uses."""
        pct = 100.0 * self.mapped_fraction
        upct = 100.0 * self.unique_fraction
        rows = [
            ("Number of input reads", self.reads_total),
            ("Number of reads processed", self.reads_processed),
            ("Uniquely mapped reads number", self.mapped_unique),
            ("Uniquely mapped reads %", f"{upct:.2f}%"),
            ("Number of reads mapped to multiple loci", self.mapped_multi),
            ("Number of reads mapped to too many loci", self.too_many_loci),
            ("Number of unmapped reads", self.unmapped),
            ("Mapped reads %", f"{pct:.2f}%"),
            ("Mismatch rate per base, %", f"{100.0 * self.mismatch_rate:.2f}%"),
            ("Number of splices: Total", self.spliced_reads),
            ("Elapsed time, seconds", f"{self.elapsed_seconds:.2f}"),
            ("Run aborted by monitor", "yes" if self.aborted else "no"),
        ]
        width = max(len(k) for k, _ in rows) + 1
        return "\n".join(f"{k.ljust(width)}|\t{v}" for k, v in rows) + "\n"


def write_final_log(stats: FinalLogStats, path: Path | str) -> None:
    """Write ``Log.final.out``."""
    Path(path).write_text(stats.to_text())


def parse_final_log(text: str) -> dict[str, str]:
    """Parse ``Log.final.out`` text into a key → raw-value mapping."""
    out: dict[str, str] = {}
    for line in text.splitlines():
        if "|" not in line:
            continue
        key, _, value = line.partition("|")
        out[key.strip()] = value.strip()
    return out
