"""DESeq2-lite differential expression.

The Transcriptomics Atlas's downstream purpose is comparing expression
across conditions/tissues; this module implements the simplified core of
DESeq2's test chain on top of the median-of-ratios normalization:

1. per-gene negative-binomial dispersion by method of moments on
   normalized counts, shrunk toward a fitted mean-dispersion trend
   (DESeq2's ``fitType="parametric"``: α(μ) = a1/μ + a0);
2. two-group Wald test on the log2 fold change with a delta-method
   standard error from the NB variance μ + α μ²;
3. Benjamini–Hochberg adjustment.

It is deliberately the *documented simplification* of the real package
(no GLM with covariates, no Cook's distance outlier handling, no
independent filtering) — enough for the atlas's two-condition contrasts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.deseq2 import estimate_size_factors, normalize_counts
from repro.quant.matrix import CountMatrix
from repro.util.tables import Table


def fit_dispersion_trend(
    means: np.ndarray, dispersions: np.ndarray
) -> tuple[float, float]:
    """Fit α(μ) = a1/μ + a0 by trimmed least squares.

    Genes in the top/bottom dispersion decile are excluded before the fit —
    the cheap stand-in for DESeq2's iterative outlier-excluding gamma GLM,
    needed because a handful of genuinely differential genes otherwise
    drag the trend up for everyone.  Returns (a0, a1), clipped non-negative.
    """
    mask = (means > 1e-8) & (dispersions > 1e-8)
    if mask.sum() < 3:
        return 0.01, 1.0  # too little signal: DESeq2-ish defaults
    x_all = 1.0 / means[mask]
    y_all = dispersions[mask]
    if y_all.size >= 10:
        lo, hi = np.quantile(y_all, [0.10, 0.90])
        keep = (y_all >= lo) & (y_all <= hi)
        x_all, y_all = x_all[keep], y_all[keep]
    design = np.column_stack([np.ones_like(x_all), x_all])
    coef, *_ = np.linalg.lstsq(design, y_all, rcond=None)
    a0, a1 = float(coef[0]), float(coef[1])
    return max(a0, 1e-8), max(a1, 0.0)


def estimate_dispersions(
    matrix: CountMatrix,
    size_factors: np.ndarray | None = None,
    *,
    shrinkage: float = 0.5,
    groups: list[str] | None = None,
) -> np.ndarray:
    """Per-gene NB dispersions, shrunk toward the fitted trend.

    Method-of-moments gene estimates (var − μ)/μ² are blended with the
    parametric trend value with weight ``shrinkage`` — the linear-blend
    stand-in for DESeq2's empirical-Bayes MAP step.

    When ``groups`` labels each sample's condition, moments are taken
    *within* groups and pooled by degrees of freedom, so genuine
    between-condition differences do not masquerade as biological
    dispersion (DESeq2 achieves the same via the fitted GLM means).
    """
    if not 0.0 <= shrinkage <= 1.0:
        raise ValueError("shrinkage must be in [0, 1]")
    normalized = normalize_counts(matrix, size_factors)
    overall_means = normalized.mean(axis=1)

    if groups is None:
        group_masks = [np.ones(matrix.n_samples, dtype=bool)]
    else:
        if len(groups) != matrix.n_samples:
            raise ValueError(
                f"{len(groups)} group labels for {matrix.n_samples} samples"
            )
        group_masks = [
            np.array([g == label for g in groups]) for label in sorted(set(groups))
        ]

    raw_num = np.zeros(matrix.n_genes)
    raw_den = 0.0
    for mask in group_masks:
        n = int(mask.sum())
        if n < 2:
            continue
        sub = normalized[:, mask]
        mu = sub.mean(axis=1)
        var = sub.var(axis=1, ddof=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            alpha = np.where(mu > 0, (var - mu) / mu**2, 0.0)
        raw_num += (n - 1) * np.clip(alpha, 1e-8, 10.0)
        raw_den += n - 1
    if raw_den == 0:
        raw = np.full(matrix.n_genes, 1e-8)
    else:
        raw = raw_num / raw_den

    a0, a1 = fit_dispersion_trend(overall_means, raw)
    trend = np.where(
        overall_means > 0, a1 / np.maximum(overall_means, 1e-8) + a0, a0
    )
    return (1.0 - shrinkage) * raw + shrinkage * np.clip(trend, 1e-8, 10.0)


@dataclass(frozen=True)
class DiffExpRow:
    """One gene's test result."""

    gene_id: str
    base_mean: float
    log2_fold_change: float
    lfc_se: float
    wald_stat: float
    p_value: float
    p_adjusted: float

    @property
    def significant(self) -> bool:
        return self.p_adjusted < 0.05


@dataclass
class DiffExpResult:
    """All genes' results, ordered as the input matrix."""

    rows: list[DiffExpRow]
    condition_a: str
    condition_b: str

    def significant(self, alpha: float = 0.05) -> list[DiffExpRow]:
        return [r for r in self.rows if r.p_adjusted < alpha]

    def row(self, gene_id: str) -> DiffExpRow:
        for r in self.rows:
            if r.gene_id == gene_id:
                return r
        raise KeyError(gene_id)

    def to_table(self, *, max_rows: int = 20) -> str:
        table = Table(
            ["gene", "baseMean", "log2FC", "SE", "Wald", "p", "padj"],
            title=f"Differential expression: {self.condition_b} vs {self.condition_a}",
        )
        ordered = sorted(self.rows, key=lambda r: r.p_adjusted)
        for r in ordered[:max_rows]:
            table.add_row(
                [
                    r.gene_id,
                    f"{r.base_mean:.1f}",
                    f"{r.log2_fold_change:+.2f}",
                    f"{r.lfc_se:.2f}",
                    f"{r.wald_stat:+.2f}",
                    f"{r.p_value:.2e}",
                    f"{r.p_adjusted:.2e}",
                ]
            )
        return table.render()


def benjamini_hochberg(p_values: np.ndarray) -> np.ndarray:
    """BH step-up adjusted p-values (monotone, clipped at 1)."""
    p = np.asarray(p_values, dtype=float)
    n = p.size
    order = np.argsort(p)
    ranked = p[order] * n / (np.arange(n) + 1)
    # enforce monotonicity from the largest rank down
    ranked = np.minimum.accumulate(ranked[::-1])[::-1]
    adjusted = np.empty(n)
    adjusted[order] = np.clip(ranked, 0.0, 1.0)
    return adjusted


def _normal_sf(z: np.ndarray) -> np.ndarray:
    """Standard-normal survival function (scipy-backed)."""
    from scipy.stats import norm

    return norm.sf(z)


def wald_test(
    matrix: CountMatrix,
    condition_labels: list[str],
    *,
    size_factors: np.ndarray | None = None,
    pseudocount: float = 0.5,
) -> DiffExpResult:
    """Two-group Wald test on each gene.

    ``condition_labels`` names each sample's group; exactly two distinct
    labels are required.  The log2 fold change compares group B (the
    lexicographically later label) to group A.
    """
    labels = list(condition_labels)
    if len(labels) != matrix.n_samples:
        raise ValueError(
            f"{len(labels)} labels for {matrix.n_samples} samples"
        )
    groups = sorted(set(labels))
    if len(groups) != 2:
        raise ValueError(f"need exactly two conditions, got {groups}")
    cond_a, cond_b = groups
    mask_a = np.array([lab == cond_a for lab in labels])
    mask_b = ~mask_a
    if mask_a.sum() < 2 or mask_b.sum() < 2:
        raise ValueError("each condition needs at least two samples")

    if size_factors is None:
        size_factors = estimate_size_factors(matrix)
    normalized = normalize_counts(matrix, size_factors)
    dispersions = estimate_dispersions(matrix, size_factors, groups=labels)

    mean_a = normalized[:, mask_a].mean(axis=1) + pseudocount
    mean_b = normalized[:, mask_b].mean(axis=1) + pseudocount
    lfc = np.log2(mean_b / mean_a)

    # delta method on log2 mean: Var(log2 μ̂) ≈ Var(μ̂) / (μ ln2)^2,
    # with NB variance μ + α μ² per sample and 1/n from averaging
    def group_se(mean: np.ndarray, n: int) -> np.ndarray:
        var = (mean + dispersions * mean**2) / n
        return np.sqrt(var) / (mean * np.log(2.0))

    se = np.sqrt(
        group_se(mean_a, int(mask_a.sum())) ** 2
        + group_se(mean_b, int(mask_b.sum())) ** 2
    )
    wald = lfc / np.maximum(se, 1e-12)
    p = 2.0 * _normal_sf(np.abs(wald))
    padj = benjamini_hochberg(p)

    rows = [
        DiffExpRow(
            gene_id=g,
            base_mean=float(normalized[i].mean()),
            log2_fold_change=float(lfc[i]),
            lfc_se=float(se[i]),
            wald_stat=float(wald[i]),
            p_value=float(p[i]),
            p_adjusted=float(padj[i]),
        )
        for i, g in enumerate(matrix.gene_ids)
    ]
    return DiffExpResult(rows=rows, condition_a=cond_a, condition_b=cond_b)
