"""DESeq2-style normalization (Love, Huber, Anders 2014; Anders & Huber 2010).

Implements the *median-of-ratios* size-factor estimator DESeq2 uses:

    s_j = median_i ( K_ij / ( prod_j K_ij )^(1/m) )

taken over genes with a strictly positive geometric mean, and normalized
counts K_ij / s_j.  A simple variance-stabilizing log transform is also
provided for downstream atlas use.
"""

from __future__ import annotations

import numpy as np

from repro.quant.matrix import CountMatrix


def estimate_size_factors(matrix: CountMatrix) -> np.ndarray:
    """Median-of-ratios size factors, one per sample.

    Genes with any zero count are excluded from the reference (their
    geometric mean is zero), matching DESeq2's default behaviour.
    Raises ``ValueError`` when no gene is usable — e.g. every gene has a
    zero somewhere — since the estimator is undefined there.
    """
    counts = matrix.counts.astype(float)
    positive = (counts > 0).all(axis=1)
    if not positive.any():
        raise ValueError(
            "size factors undefined: no gene has positive counts in all samples"
        )
    ref = counts[positive]
    log_geo_mean = np.log(ref).mean(axis=1, keepdims=True)
    ratios = np.log(ref) - log_geo_mean
    factors = np.exp(np.median(ratios, axis=0))
    return factors


def normalize_counts(
    matrix: CountMatrix, size_factors: np.ndarray | None = None
) -> np.ndarray:
    """Normalized counts K_ij / s_j (float matrix, same shape)."""
    if size_factors is None:
        size_factors = estimate_size_factors(matrix)
    size_factors = np.asarray(size_factors, dtype=float)
    if size_factors.shape != (matrix.n_samples,):
        raise ValueError(
            f"expected {matrix.n_samples} size factors, got {size_factors.shape}"
        )
    if (size_factors <= 0).any():
        raise ValueError("size factors must be positive")
    return matrix.counts / size_factors[np.newaxis, :]


def vst_like_transform(
    matrix: CountMatrix, size_factors: np.ndarray | None = None
) -> np.ndarray:
    """``log2(normalized + 1)`` — the simple VST stand-in for atlas export."""
    return np.log2(normalize_counts(matrix, size_factors) + 1.0)


def cpm(matrix: CountMatrix) -> np.ndarray:
    """Counts per million, the naive library-size normalization baseline."""
    sizes = matrix.library_sizes().astype(float)
    if (sizes == 0).any():
        raise ValueError("cannot compute CPM with an all-zero sample")
    return matrix.counts * 1e6 / sizes[np.newaxis, :]
