"""Count normalization — pipeline step 4 (DESeq2).

Implements DESeq2's median-of-ratios size-factor estimator and the
normalized-count transform over a gene × sample count matrix, which is
what the paper's pipeline feeds the Transcriptomics Atlas.
"""

from repro.quant.deseq2 import (
    estimate_size_factors,
    normalize_counts,
    vst_like_transform,
)
from repro.quant.diffexp import (
    DiffExpResult,
    benjamini_hochberg,
    estimate_dispersions,
    wald_test,
)
from repro.quant.matrix import CountMatrix

__all__ = [
    "CountMatrix",
    "DiffExpResult",
    "benjamini_hochberg",
    "estimate_dispersions",
    "estimate_size_factors",
    "normalize_counts",
    "vst_like_transform",
    "wald_test",
]
