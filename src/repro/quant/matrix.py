"""Gene × sample count matrix assembled from per-run GeneCounts outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CountMatrix:
    """Raw counts with named axes: rows are genes, columns are samples."""

    gene_ids: list[str]
    sample_ids: list[str]
    counts: np.ndarray  # shape (n_genes, n_samples), non-negative ints

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts)
        if self.counts.shape != (len(self.gene_ids), len(self.sample_ids)):
            raise ValueError(
                f"counts shape {self.counts.shape} does not match "
                f"{len(self.gene_ids)} genes x {len(self.sample_ids)} samples"
            )
        if (self.counts < 0).any():
            raise ValueError("counts must be non-negative")
        if len(set(self.gene_ids)) != len(self.gene_ids):
            raise ValueError("duplicate gene ids")
        if len(set(self.sample_ids)) != len(self.sample_ids):
            raise ValueError("duplicate sample ids")

    @property
    def n_genes(self) -> int:
        return len(self.gene_ids)

    @property
    def n_samples(self) -> int:
        return len(self.sample_ids)

    def column(self, sample_id: str) -> np.ndarray:
        """Counts vector of one sample."""
        return self.counts[:, self.sample_ids.index(sample_id)]

    def library_sizes(self) -> np.ndarray:
        """Per-sample total counts."""
        return self.counts.sum(axis=0)

    @classmethod
    def from_columns(
        cls, columns: dict[str, dict[str, int]]
    ) -> "CountMatrix":
        """Assemble from {sample_id: {gene_id: count}} (GeneCounts vectors).

        The gene set is the union across samples; missing entries are 0.
        Gene and sample order are sorted for determinism.
        """
        if not columns:
            raise ValueError("no samples provided")
        sample_ids = sorted(columns)
        gene_ids = sorted({g for col in columns.values() for g in col})
        counts = np.zeros((len(gene_ids), len(sample_ids)), dtype=np.int64)
        gene_pos = {g: i for i, g in enumerate(gene_ids)}
        for j, sid in enumerate(sample_ids):
            for g, v in columns[sid].items():
                counts[gene_pos[g], j] = v
        return cls(gene_ids=gene_ids, sample_ids=sample_ids, counts=counts)

    def drop_all_zero_genes(self) -> "CountMatrix":
        """Remove genes with zero counts in every sample."""
        keep = self.counts.sum(axis=1) > 0
        return CountMatrix(
            gene_ids=[g for g, k in zip(self.gene_ids, keep) if k],
            sample_ids=list(self.sample_ids),
            counts=self.counts[keep],
        )
