"""Savings and throughput analytics for the figures.

Turns per-run records (from the local pipeline, the cloud simulation, or
the offline corpus replay) into the aggregate quantities the paper
reports: total STAR hours, hours saved by early stopping, terminated-run
counts, and per-library breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reads.library import LibraryType
from repro.util.units import to_hours


@dataclass(frozen=True)
class RunTiming:
    """Minimal per-run input: what it cost and what it would have cost."""

    accession: str
    library: LibraryType
    star_seconds_actual: float
    star_seconds_if_full: float
    terminated: bool

    def __post_init__(self) -> None:
        if self.star_seconds_actual < 0 or self.star_seconds_if_full < 0:
            raise ValueError("negative run time")
        if self.star_seconds_actual > self.star_seconds_if_full + 1e-9:
            raise ValueError("actual time cannot exceed the full-run time")


@dataclass(frozen=True)
class EarlyStopSavings:
    """The Fig. 4 aggregate: who was terminated and what it saved."""

    n_runs: int
    n_terminated: int
    total_hours_if_full: float
    total_hours_actual: float
    terminated_libraries: dict[LibraryType, int]

    @property
    def hours_saved(self) -> float:
        return self.total_hours_if_full - self.total_hours_actual

    @property
    def saving_fraction(self) -> float:
        if self.total_hours_if_full <= 0:
            return 0.0
        return self.hours_saved / self.total_hours_if_full

    @property
    def terminated_fraction(self) -> float:
        return self.n_terminated / self.n_runs if self.n_runs else 0.0

    def all_terminated_single_cell(self) -> bool:
        """The paper's observation: terminated inputs were single-cell data."""
        return all(
            lib.is_single_cell or count == 0
            for lib, count in self.terminated_libraries.items()
        )

    def to_text(self) -> str:
        lines = [
            f"Runs: {self.n_runs}, terminated early: {self.n_terminated} "
            f"({100 * self.terminated_fraction:.1f}%)",
            f"Total STAR time without early stopping: "
            f"{self.total_hours_if_full:.1f} h",
            f"Total STAR time with early stopping:    "
            f"{self.total_hours_actual:.1f} h",
            f"Saved: {self.hours_saved:.1f} h "
            f"({100 * self.saving_fraction:.1f}%)",
        ]
        for lib, count in sorted(
            self.terminated_libraries.items(), key=lambda kv: kv[0].value
        ):
            if count:
                lines.append(f"  terminated {lib.value}: {count}")
        return "\n".join(lines)


def compute_savings(timings: list[RunTiming]) -> EarlyStopSavings:
    """Aggregate per-run timings into the Fig. 4 numbers."""
    if not timings:
        raise ValueError("no runs")
    terminated_by_lib: dict[LibraryType, int] = {lib: 0 for lib in LibraryType}
    for t in timings:
        if t.terminated:
            terminated_by_lib[t.library] += 1
    return EarlyStopSavings(
        n_runs=len(timings),
        n_terminated=sum(t.terminated for t in timings),
        total_hours_if_full=to_hours(sum(t.star_seconds_if_full for t in timings)),
        total_hours_actual=to_hours(sum(t.star_seconds_actual for t in timings)),
        terminated_libraries=terminated_by_lib,
    )


@dataclass(frozen=True)
class ThroughputStats:
    """Campaign-level throughput summary (for the architecture bench)."""

    n_jobs: int
    makespan_hours: float
    fleet_peak: int
    mean_utilization: float
    total_cost_usd: float

    @property
    def jobs_per_hour(self) -> float:
        return self.n_jobs / self.makespan_hours if self.makespan_hours > 0 else 0.0

    @property
    def cost_per_job_usd(self) -> float:
        return self.total_cost_usd / self.n_jobs if self.n_jobs else 0.0
