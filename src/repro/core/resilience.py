"""Retry, backoff, and deterministic fault injection.

The paper's economics depend on running multi-hour STAR jobs on
interruptible capacity (§II): spot instances disappear mid-run, SQS
redelivers, NCBI downloads stall.  This module is the one failure
vocabulary every layer shares —

* :class:`RetryPolicy` — bounded attempts with exponential backoff,
  seeded jitter (via :mod:`repro.util.rng` streams, so campaigns stay
  reproducible), and an optional per-step deadline;
* :class:`FaultPlan` — *scripted* transient/permanent failures injected
  into named pipeline steps (``prefetch``, ``fasterq_dump``, S3
  transfers, engine workers), so chaos tests are deterministic instead
  of probabilistic;
* :func:`run_with_retry` — drives one step under a policy and converts
  exhaustion into a :class:`FailureRecord` carried by
  :exc:`StepFailed`;
* :class:`RetryLedger` — thread-safe retry accounting surfaced by
  ``TranscriptomicsAtlasPipeline.summary()`` and the atlas campaign
  report.

The local pipeline consumes these directly (real sleeps); the cloud
simulation consumes the *same types* but turns backoff delays into
simulated ``Timeout`` waits, so local and simulated campaigns agree on
what "3 attempts, 30 s base backoff" means.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.util.rng import RngStream

__all__ = [
    "FailureRecord",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "PermanentFault",
    "RetryLedger",
    "RetryPolicy",
    "StepFailed",
    "TransientFault",
    "run_with_retry",
]

#: canonical step names shared by the local pipeline and the cloud sim
STEP_PREFETCH = "prefetch"
STEP_FASTERQ_DUMP = "fasterq_dump"
STEP_ALIGN = "align"
STEP_ENGINE_WORKER = "engine_worker"
STEP_S3_DOWNLOAD = "s3_download"
STEP_S3_UPLOAD = "s3_upload"


# --------------------------------------------------------------------------
# fault vocabulary
# --------------------------------------------------------------------------


class FaultKind(enum.Enum):
    """How a scripted fault behaves under retries."""

    #: fails a bounded number of calls, then the step succeeds
    TRANSIENT = "transient"
    #: fails every call — no retry policy can save the step
    PERMANENT = "permanent"


class FaultError(RuntimeError):
    """Base of injected failures; carries the step/key it struck."""

    def __init__(self, step: str, key: str, detail: str = "") -> None:
        self.step = step
        self.key = key
        message = f"injected fault in step {step!r} for {key!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class TransientFault(FaultError):
    """An injected failure that a retry may clear (network blip, spot kill)."""


class PermanentFault(FaultError):
    """An injected failure that will recur on every attempt (poison input)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: which step/key it strikes and how often.

    ``key`` is matched against the work-item identity (an accession for
    pipeline steps); ``"*"`` matches any.  ``times`` bounds how many
    calls a TRANSIENT fault poisons; PERMANENT faults ignore it and
    fire forever.
    """

    step: str
    key: str = "*"
    kind: FaultKind = FaultKind.TRANSIENT
    times: int = 1

    def __post_init__(self) -> None:
        if not self.step:
            raise ValueError("step must be non-empty")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def matches(self, step: str, key: str) -> bool:
        return self.step == step and self.key in ("*", key)


class FaultPlan:
    """A deterministic script of failures to inject, shared across threads.

    The plan is consulted at each instrumented call site via
    :meth:`check` (raise the armed fault) or :meth:`consume` (pop a
    matching spec without raising — used for non-exception faults such
    as engine-worker kills).  Accounting of everything injected is kept
    for reports.
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self._specs = list(faults)
        self._remaining = [
            None if spec.kind is FaultKind.PERMANENT else spec.times
            for spec in self._specs
        ]
        self._lock = threading.Lock()
        self._injected: dict[str, int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a CLI spec string.

        Grammar: comma/semicolon-separated entries of
        ``step:key:kind[*times]`` — e.g.
        ``prefetch:SRR1000007:transient*2,fasterq_dump:*:permanent``.
        """
        specs: list[FaultSpec] = []
        for raw in text.replace(";", ",").split(","):
            entry = raw.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) != 3:
                raise ValueError(
                    f"bad fault entry {entry!r}: expected step:key:kind[*times]"
                )
            step, key, kind_text = (p.strip() for p in parts)
            times = 1
            if "*" in kind_text:
                kind_text, _, times_text = kind_text.partition("*")
                try:
                    times = int(times_text)
                except ValueError as exc:
                    raise ValueError(
                        f"bad fault repeat count in {entry!r}"
                    ) from exc
            try:
                kind = FaultKind(kind_text.lower())
            except ValueError as exc:
                raise ValueError(
                    f"bad fault kind {kind_text!r} in {entry!r} "
                    "(expected 'transient' or 'permanent')"
                ) from exc
            specs.append(FaultSpec(step=step, key=key, kind=kind, times=times))
        return cls(specs)

    # -- injection ---------------------------------------------------------

    def consume(self, step: str, key: str) -> FaultSpec | None:
        """Pop (and account) the first armed spec matching ``(step, key)``."""
        with self._lock:
            for i, spec in enumerate(self._specs):
                if not spec.matches(step, key):
                    continue
                remaining = self._remaining[i]
                if remaining is None:  # permanent: never exhausted
                    self._injected[step] = self._injected.get(step, 0) + 1
                    return spec
                if remaining > 0:
                    self._remaining[i] = remaining - 1
                    self._injected[step] = self._injected.get(step, 0) + 1
                    return spec
            return None

    def check(self, step: str, key: str) -> None:
        """Raise the armed fault for ``(step, key)``, if any."""
        spec = self.consume(step, key)
        if spec is None:
            return
        if spec.kind is FaultKind.PERMANENT:
            raise PermanentFault(step, key)
        raise TransientFault(step, key)

    # -- reporting ---------------------------------------------------------

    @property
    def injected(self) -> dict[str, int]:
        """Per-step count of faults fired so far."""
        with self._lock:
            return dict(self._injected)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    @property
    def exhausted(self) -> bool:
        """True once every transient spec has fired its full budget."""
        with self._lock:
            return all(r in (None, 0) for r in self._remaining)

    def __len__(self) -> int:
        return len(self._specs)

    def describe(self) -> str:
        parts = []
        for spec in self._specs:
            times = "" if spec.kind is FaultKind.PERMANENT else f"*{spec.times}"
            parts.append(f"{spec.step}:{spec.key}:{spec.kind.value}{times}")
        return ",".join(parts)


# --------------------------------------------------------------------------
# retry policy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter and a step deadline.

    ``deadline`` caps the *whole step* — work plus backoff across every
    attempt; once elapsed time exceeds it no further attempt is made.
    ``jitter`` spreads delays by ±``jitter`` fraction using a caller-
    provided RNG stream; with no stream, delays are the deterministic
    midpoint (what the discrete-event simulation uses by default).
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def should_retry(self, attempt: int) -> bool:
        """True when another attempt is allowed after failure #``attempt``."""
        return attempt < self.max_attempts

    def delay_for(self, attempt: int, rng: RngStream | None = None) -> float:
        """Backoff before attempt #``attempt + 1`` (attempts count from 1)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(0.0, delay)


@dataclass
class FailureRecord:
    """Everything worth keeping about a step that ultimately failed."""

    step: str
    key: str
    attempts: int
    elapsed_seconds: float
    error: str
    #: one entry per failed attempt, oldest first
    error_chain: list[str] = field(default_factory=list)
    permanent: bool = False

    def __str__(self) -> str:
        kind = "permanent" if self.permanent else "transient"
        return (
            f"step {self.step!r} failed for {self.key!r} after "
            f"{self.attempts} attempt(s) ({kind}): {self.error}"
        )


class StepFailed(RuntimeError):
    """A step exhausted its retry policy (or hit a permanent fault)."""

    def __init__(self, record: FailureRecord) -> None:
        self.record = record
        super().__init__(str(record))


def run_with_retry(
    fn: Callable[[], object],
    *,
    policy: RetryPolicy,
    step: str,
    key: str = "",
    rng: RngStream | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[str, int, BaseException, float], None] | None = None,
) -> object:
    """Call ``fn`` under ``policy``; return its value or raise :exc:`StepFailed`.

    :exc:`PermanentFault` short-circuits (no retries — the real pipeline
    equivalent is a corrupt ``.sra`` that will fail identically every
    time).  Any other exception is retried until attempts or the
    deadline run out.  ``on_retry(step, attempt, exc, delay)`` fires
    before each backoff sleep, which is where callers account retries.
    """
    started = clock()
    chain: list[str] = []
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except PermanentFault as exc:
            chain.append(repr(exc))
            raise StepFailed(
                FailureRecord(
                    step=step,
                    key=key,
                    attempts=attempt,
                    elapsed_seconds=clock() - started,
                    error=repr(exc),
                    error_chain=chain,
                    permanent=True,
                )
            ) from exc
        except Exception as exc:
            chain.append(repr(exc))
            elapsed = clock() - started
            deadline_hit = (
                policy.deadline is not None and elapsed >= policy.deadline
            )
            if deadline_hit or not policy.should_retry(attempt):
                raise StepFailed(
                    FailureRecord(
                        step=step,
                        key=key,
                        attempts=attempt,
                        elapsed_seconds=elapsed,
                        error=repr(exc),
                        error_chain=chain,
                        permanent=False,
                    )
                ) from exc
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(step, attempt, exc, delay)
            if delay > 0:
                sleep(delay)


class RetryLedger:
    """Thread-safe tally of retries, bucketed by step name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_step: dict[str, int] = {}

    def record(self, step: str, n: int = 1) -> None:
        with self._lock:
            self._by_step[step] = self._by_step.get(step, 0) + n

    @property
    def total(self) -> int:
        with self._lock:
            return sum(self._by_step.values())

    def by_step(self) -> dict[str, int]:
        with self._lock:
            return dict(self._by_step)
