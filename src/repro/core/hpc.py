"""HPC / workstation mode (paper conclusions: "Those insights are
applicable outside the cloud environment (HPC or workstations)").

Runs the same pipeline workload on a *fixed-size* cluster — a SLURM-like
FIFO scheduler over homogeneous nodes, no elasticity, no per-second
billing — and measures what the two optimizations buy there: node-hours
(the HPC accounting unit) and makespan, instead of dollars.

Built on the same DES engine and performance models as the cloud mode,
so cloud-vs-HPC comparisons are apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.events import Simulation, Timeout
from repro.core.atlas import AtlasJob, simulate_star_step
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.pipeline import RunStatus
from repro.genome.ensembl import EnsemblRelease, release_spec
from repro.perf.index_model import IndexModel
from repro.perf.star_model import StarPerfModel
from repro.perf.transfer import TransferModel
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class HpcConfig:
    """A fixed cluster and the pipeline options to run on it."""

    n_nodes: int = 8
    vcpus_per_node: int = 16
    release: EnsemblRelease = EnsemblRelease.R111
    early_stopping: EarlyStoppingPolicy | None = field(
        default_factory=EarlyStoppingPolicy
    )
    star_model: StarPerfModel = field(default_factory=StarPerfModel)
    index_model: IndexModel = field(default_factory=IndexModel)
    transfer_model: TransferModel = field(default_factory=TransferModel)
    #: nodes keep the index resident in shared memory; it is loaded once
    #: per node at campaign start (STAR's --genomeLoad LoadAndKeep)
    shared_memory_index: bool = True
    n_progress_snapshots: int = 20
    normalize_seconds: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_nodes", self.n_nodes)
        check_positive("vcpus_per_node", self.vcpus_per_node)


@dataclass
class HpcJobRecord:
    """One job's outcome on the cluster."""

    accession: str
    status: RunStatus
    node: int
    queued_at: float
    started_at: float
    finished_at: float
    star_seconds: float
    star_seconds_if_full: float

    @property
    def wait_seconds(self) -> float:
        return self.started_at - self.queued_at

    @property
    def run_seconds(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class HpcRunReport:
    """Campaign-level results on the fixed cluster."""

    jobs: list[HpcJobRecord]
    makespan_seconds: float
    node_hours: float
    n_nodes: int
    index_load_seconds: float

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_terminated(self) -> int:
        return sum(1 for j in self.jobs if j.status is RunStatus.REJECTED_EARLY)

    @property
    def star_hours_actual(self) -> float:
        return sum(j.star_seconds for j in self.jobs) / 3600.0

    @property
    def star_hours_if_full(self) -> float:
        return sum(j.star_seconds_if_full for j in self.jobs) / 3600.0

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.n_jobs / (self.makespan_seconds / 3600.0)

    @property
    def mean_wait_seconds(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(j.wait_seconds for j in self.jobs) / len(self.jobs)


def run_hpc(jobs: list[AtlasJob], config: HpcConfig) -> HpcRunReport:
    """Run a campaign on the fixed cluster (FIFO dispatch, one job/node).

    Each node loads the STAR index into shared memory once, then drains
    the shared FIFO queue.  Timing reuses the cloud mode's models; the
    SRA download happens from the site's mirror at NCBI rates.
    """
    if not jobs:
        raise ValueError("no jobs to run")
    from repro.core.atlas import AtlasConfig

    # Reuse the atlas STAR-step resolver with an equivalent config view.
    star_config = AtlasConfig(
        release=config.release,
        early_stopping=config.early_stopping,
        star_model=config.star_model,
        index_model=config.index_model,
        transfer_model=config.transfer_model,
        n_progress_snapshots=config.n_progress_snapshots,
        seed=config.seed,
    )
    rng = ensure_rng(config.seed)
    job_rng_root = derive_rng(rng, "jobs")
    job_seeds = {
        job.accession: derive_rng(job_rng_root, job.accession) for job in jobs
    }

    sim = Simulation()
    queue: list[AtlasJob] = list(jobs)
    records: list[HpcJobRecord] = []
    spec = release_spec(config.release)
    transfer = config.transfer_model
    index_load = (
        config.index_model.shm_load_seconds(spec)
        if config.shared_memory_index
        else 0.0
    )
    busy_seconds = [0.0] * config.n_nodes

    def node_worker(node_id: int):
        if index_load:
            yield Timeout(index_load)
        while queue:
            job = queue.pop(0)
            queued_at = 0.0
            started = sim.now
            yield Timeout(transfer.prefetch_seconds(job.sra_bytes))
            yield Timeout(transfer.fasterq_dump_seconds(job.fastq_bytes))
            if not config.shared_memory_index:
                yield Timeout(config.index_model.shm_load_seconds(spec))
            actual, full, _stop, status = simulate_star_step(
                job, star_config, config.vcpus_per_node, job_seeds[job.accession]
            )
            yield Timeout(actual)
            if status is RunStatus.ACCEPTED:
                yield Timeout(config.normalize_seconds)
            records.append(
                HpcJobRecord(
                    accession=job.accession,
                    status=status,
                    node=node_id,
                    queued_at=queued_at,
                    started_at=started,
                    finished_at=sim.now,
                    star_seconds=actual,
                    star_seconds_if_full=full,
                )
            )
            busy_seconds[node_id] += sim.now - started

    for node_id in range(config.n_nodes):
        sim.process(node_worker(node_id), name=f"node-{node_id}")
    sim.run()

    return HpcRunReport(
        jobs=records,
        makespan_seconds=sim.now,
        node_hours=config.n_nodes * sim.now / 3600.0,
        n_nodes=config.n_nodes,
        index_load_seconds=index_load,
    )
