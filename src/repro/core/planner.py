"""Campaign planner: cheapest configuration that meets a deadline.

The paper states three goals — scalability, high utilization, and
*minimization of cloud costs*.  This module turns the third into an
optimizer: enumerate candidate configurations (fleet ceiling × purchase
market, optionally × genome release), simulate each campaign with
:func:`repro.core.atlas.run_atlas`, and pick the cheapest one whose
makespan meets the deadline.  Simulation is cheap (milliseconds per
candidate), so exhaustive search over the small grid is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cloud.autoscaling import ScalingPolicy
from repro.cloud.ec2 import InstanceMarket
from repro.core.atlas import AtlasConfig, AtlasJob, AtlasRunReport, run_atlas
from repro.util.tables import Table
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PlannerConstraints:
    """The search space and the requirement."""

    deadline_hours: float
    fleet_sizes: tuple[int, ...] = (2, 4, 8, 16, 32)
    markets: tuple[InstanceMarket, ...] = (
        InstanceMarket.ON_DEMAND,
        InstanceMarket.SPOT,
    )

    def __post_init__(self) -> None:
        check_positive("deadline_hours", self.deadline_hours)
        if not self.fleet_sizes:
            raise ValueError("need at least one fleet size")
        if not self.markets:
            raise ValueError("need at least one market")


@dataclass(frozen=True)
class PlanOption:
    """One evaluated configuration."""

    fleet_size: int
    market: InstanceMarket
    makespan_hours: float
    cost_usd: float
    meets_deadline: bool
    utilization: float
    n_interrupted: int

    @property
    def label(self) -> str:
        return f"{self.market.value}-x{self.fleet_size}"


@dataclass
class CampaignPlan:
    """All evaluated options plus the recommendation."""

    options: list[PlanOption]
    deadline_hours: float
    best: PlanOption | None = field(default=None)

    def __post_init__(self) -> None:
        if self.best is None:
            feasible = [o for o in self.options if o.meets_deadline]
            if feasible:
                self.best = min(feasible, key=lambda o: (o.cost_usd, o.makespan_hours))

    @property
    def feasible(self) -> bool:
        return self.best is not None

    def to_table(self) -> str:
        table = Table(
            ["config", "makespan h", "cost $", "util", "intr", "deadline", "pick"],
            title=f"Campaign plan (deadline {self.deadline_hours:.1f} h)",
        )
        for o in sorted(self.options, key=lambda o: o.cost_usd):
            table.add_row(
                [
                    o.label,
                    f"{o.makespan_hours:.2f}",
                    f"{o.cost_usd:.2f}",
                    f"{o.utilization:.2f}",
                    o.n_interrupted,
                    "meets" if o.meets_deadline else "MISSES",
                    "<=== " if self.best is o else "",
                ]
            )
        if not self.feasible:
            return table.render() + "\nNO feasible option — raise the fleet cap or the deadline."
        return table.render()


def _evaluate(report: AtlasRunReport, deadline_hours: float,
              fleet: int, market: InstanceMarket) -> PlanOption:
    makespan_h = report.makespan_seconds / 3600.0
    return PlanOption(
        fleet_size=fleet,
        market=market,
        makespan_hours=makespan_h,
        cost_usd=report.cost.total_usd,
        meets_deadline=makespan_h <= deadline_hours,
        utilization=report.mean_utilization,
        n_interrupted=report.cost.n_interrupted,
    )


def plan_campaign(
    jobs: list[AtlasJob],
    constraints: PlannerConstraints,
    *,
    base_config: AtlasConfig | None = None,
) -> CampaignPlan:
    """Search the grid and recommend the cheapest deadline-meeting option.

    ``base_config`` carries everything the planner does not vary (release,
    instance type, early-stopping policy, seed); its scaling/market fields
    are overridden per candidate.
    """
    if not jobs:
        raise ValueError("no jobs to plan for")
    base = base_config or AtlasConfig()
    options: list[PlanOption] = []
    for fleet in constraints.fleet_sizes:
        for market in constraints.markets:
            config = replace(
                base,
                market=market,
                scaling=ScalingPolicy(
                    max_size=fleet,
                    messages_per_instance=base.scaling.messages_per_instance,
                ),
            )
            report = run_atlas(jobs, config)
            options.append(
                _evaluate(report, constraints.deadline_hours, fleet, market)
            )
    return CampaignPlan(options=options, deadline_hours=constraints.deadline_hours)
