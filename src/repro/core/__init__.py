"""The paper's contribution: the Transcriptomics Atlas pipeline and its
application-specific optimizations.

* :mod:`repro.core.pipeline` — the four-step pipeline (prefetch →
  fasterq-dump → STAR → DESeq2) over the local toolchain;
* :mod:`repro.core.early_stopping` — §III-B: abort alignments whose
  mapping rate is below threshold once enough reads were processed;
* :mod:`repro.core.rightsizing` — §III-A consequence: pick the smallest
  instance whose RAM fits the index;
* :mod:`repro.core.atlas` — the cloud orchestration of Fig. 2, wiring the
  pipeline into the DES substrate (SQS + ASG + S3 + spot);
* :mod:`repro.core.journal` — crash-consistent run journal powering
  checkpoint/resume and graceful drain;
* :mod:`repro.core.analytics` — savings/throughput accounting used by the
  figures.
"""

from repro.core.analytics import EarlyStopSavings, compute_savings
from repro.core.atlas import AtlasConfig, AtlasJob, AtlasRunReport, run_atlas
from repro.core.early_stopping import (
    Decision,
    EarlyStoppingPolicy,
    EarlyStopMonitor,
)
from repro.core.hpc import HpcConfig, HpcRunReport, run_hpc
from repro.core.journal import (
    JournalCorrupt,
    JournalIncompatible,
    JournalReplay,
    RunJournal,
    config_fingerprint,
)
from repro.core.planner import (
    CampaignPlan,
    PlannerConstraints,
    plan_campaign,
)
from repro.core.pipeline import (
    BatchOptions,
    PipelineConfig,
    PipelineResult,
    RunStatus,
    StepTiming,
    TranscriptomicsAtlasPipeline,
    drain_on_signals,
)
from repro.core.stages import (
    PipelineHealth,
    Stage,
    StageContext,
    StageMetrics,
    default_stages,
)
from repro.core.resilience import (
    FailureRecord,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PermanentFault,
    RetryLedger,
    RetryPolicy,
    StepFailed,
    TransientFault,
    run_with_retry,
)
from repro.core.rightsizing import RightSizingAdvisor, RightSizingChoice
from repro.core.trajectory import MappingTrajectory

__all__ = [
    "AtlasConfig",
    "AtlasJob",
    "AtlasRunReport",
    "BatchOptions",
    "CampaignPlan",
    "Decision",
    "EarlyStopMonitor",
    "EarlyStopSavings",
    "EarlyStoppingPolicy",
    "FailureRecord",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HpcConfig",
    "HpcRunReport",
    "JournalCorrupt",
    "JournalIncompatible",
    "JournalReplay",
    "MappingTrajectory",
    "PermanentFault",
    "PipelineConfig",
    "PipelineHealth",
    "PipelineResult",
    "PlannerConstraints",
    "RetryLedger",
    "RetryPolicy",
    "RightSizingAdvisor",
    "RightSizingChoice",
    "RunJournal",
    "RunStatus",
    "Stage",
    "StageContext",
    "StageMetrics",
    "StepFailed",
    "StepTiming",
    "TranscriptomicsAtlasPipeline",
    "TransientFault",
    "compute_savings",
    "config_fingerprint",
    "default_stages",
    "drain_on_signals",
    "plan_campaign",
    "run_atlas",
    "run_hpc",
    "run_with_retry",
]
