"""Early stopping for STAR alignment (§III-B).

The optimization: STAR's ``Log.progress.out`` reports the current percent
of mapped reads.  The atlas only keeps runs with an acceptable final
mapping rate (above 30%), and the paper's analysis of 1000 progress logs
showed that once ≥10% of a run's reads are processed the current rate
already predicts acceptance — so low-rate runs can be aborted there,
saving ~19.5% of total STAR time.

:class:`EarlyStoppingPolicy` is a pure decision rule over
:class:`~repro.align.progress.ProgressRecord` values;
:class:`EarlyStopMonitor` adapts it to the aligner's monitor hook and
keeps the decision trace.  Both also drive the cloud simulation, where
progress records are synthesized from mapping-rate trajectories.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.align.progress import ProgressRecord
from repro.util.validation import check_fraction


class Decision(enum.Enum):
    """Monitor verdict for one progress snapshot."""

    CONTINUE = "continue"
    ABORT = "abort"

    @property
    def should_continue(self) -> bool:
        return self is Decision.CONTINUE


@dataclass(frozen=True)
class EarlyStoppingPolicy:
    """The paper's rule: abort when mapped% < threshold after ≥ check fraction.

    Defaults are the published operating point: ``mapping_threshold=0.30``
    (the atlas's acceptance bar) and ``check_fraction=0.10`` (enough reads
    to decide safely).  ``min_reads`` guards tiny runs where percentages
    are noise.
    """

    mapping_threshold: float = 0.30
    check_fraction: float = 0.10
    min_reads: int = 100

    def __post_init__(self) -> None:
        check_fraction("mapping_threshold", self.mapping_threshold)
        check_fraction("check_fraction", self.check_fraction)
        if self.min_reads < 0:
            raise ValueError("min_reads must be non-negative")

    def decide(self, record: ProgressRecord) -> Decision:
        """Decision for one snapshot.

        Abstains (CONTINUE) before the check point; after it, aborts iff
        the current mapped fraction is below the threshold.
        """
        if record.reads_processed < self.min_reads:
            return Decision.CONTINUE
        if record.reads_total <= 0:
            return Decision.CONTINUE  # unknown total: never enough evidence
        # The half-read tolerance absorbs count rounding: a snapshot taken
        # at "10% of reads" may be half a read short of the exact fraction.
        if record.reads_processed < self.check_fraction * record.reads_total - 0.5:
            return Decision.CONTINUE
        if record.mapped_fraction < self.mapping_threshold:
            return Decision.ABORT
        return Decision.CONTINUE

    def decide_rate(self, mapped_fraction: float, processed_fraction: float) -> Decision:
        """Trajectory-level variant used by the cloud simulation."""
        check_fraction("mapped_fraction", mapped_fraction)
        check_fraction("processed_fraction", processed_fraction)
        if processed_fraction < self.check_fraction:
            return Decision.CONTINUE
        if mapped_fraction < self.mapping_threshold:
            return Decision.ABORT
        return Decision.CONTINUE

    def accepts_final(self, mapped_fraction: float) -> bool:
        """Whether a *completed* run meets the atlas acceptance bar."""
        return mapped_fraction >= self.mapping_threshold


@dataclass
class EarlyStopMonitor:
    """Stateful adapter: feeds a policy from progress records.

    Use :meth:`hook` as the ``monitor=`` argument of
    :meth:`repro.align.star.StarAligner.run`.  After the run,
    ``aborted``/``abort_record`` say whether and where the monitor fired.

    ``on_abort`` (optional) is called exactly once, with the triggering
    record, the first time the policy fires — the streaming pipeline
    registers the in-flight download's cancellation there, so aborting
    mid-stream saves the un-downloaded bytes, not just align time.
    """

    policy: EarlyStoppingPolicy = field(default_factory=EarlyStoppingPolicy)
    records: list[ProgressRecord] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    aborted: bool = False
    abort_record: ProgressRecord | None = None
    on_abort: Callable[[ProgressRecord], None] | None = None

    def observe(self, record: ProgressRecord) -> Decision:
        """Record a snapshot and return the policy decision."""
        self.records.append(record)
        decision = self.policy.decide(record)
        self.decisions.append(decision)
        if decision is Decision.ABORT and not self.aborted:
            self.aborted = True
            self.abort_record = record
            if self.on_abort is not None:
                self.on_abort(record)
        return decision

    def hook(self, record: ProgressRecord) -> bool:
        """Aligner monitor signature: True = keep going."""
        return self.observe(record).should_continue

    @property
    def stop_fraction(self) -> float | None:
        """Fraction of reads processed when the abort fired (None if never)."""
        if self.abort_record is None:
            return None
        return self.abort_record.processed_fraction


def replay_policy(
    policy: EarlyStoppingPolicy, records: list[ProgressRecord]
) -> tuple[bool, ProgressRecord | None]:
    """Apply a policy to a *finished* run's progress log (offline analysis).

    This mirrors the paper's methodology: they analyzed 1000 existing
    ``Log.progress.out`` files to find where termination would have
    happened.  Returns (would_abort, record_at_abort).
    """
    for record in records:
        if policy.decide(record) is Decision.ABORT:
            return True, record
    return False, None
