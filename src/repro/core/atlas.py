"""Cloud orchestration of the Transcriptomics Atlas (Fig. 2).

``run_atlas`` wires the pipeline into the DES substrate: an SQS queue is
seeded with one message per SRA run, an AutoScalingGroup launches worker
instances (on-demand or spot), each instance's init phase downloads the
STAR index from S3 and loads it into shared memory, and each message is
processed through prefetch → fasterq-dump → STAR (with the early-stopping
monitor watching synthesized progress) → normalization + result upload.

Timing comes from the calibrated models in :mod:`repro.perf`; alignment
*behaviour* (what the monitor sees, when it fires) comes from each job's
mapping-rate trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.agent import StageMark, WorkerAgent
from repro.cloud.autoscaling import AutoScalingGroup, ScalingPolicy
from repro.cloud.cost import CostAccountant, CostReport
from repro.cloud.ec2 import (
    Ec2Service,
    InstanceMarket,
    InstanceType,
    SpotModel,
    cheapest_fitting,
    instance_type,
)
from repro.cloud.events import Simulation, Timeout
from repro.cloud.s3 import S3Service
from repro.cloud.sqs import SqsQueue
from repro.core.early_stopping import Decision, EarlyStoppingPolicy
from repro.core.pipeline import RunStatus
from repro.core.resilience import FaultPlan, RetryPolicy
from repro.core.trajectory import MappingTrajectory
from repro.genome.ensembl import EnsemblRelease, release_spec
from repro.perf.index_model import IndexModel
from repro.perf.star_model import StarPerfModel
from repro.perf.transfer import TransferModel
from repro.reads.library import LibraryType
from repro.util.rng import derive_rng, ensure_rng


@dataclass(frozen=True)
class AtlasJob:
    """One SRA run to process (an SQS message body)."""

    accession: str
    sra_bytes: float
    fastq_bytes: float
    n_reads: int
    library: LibraryType
    trajectory: MappingTrajectory

    @property
    def terminal_mapping_rate(self) -> float:
        return self.trajectory.terminal_rate


@dataclass(frozen=True)
class AtlasConfig:
    """Everything that defines one atlas campaign."""

    release: EnsemblRelease = EnsemblRelease.R111
    #: pinned instance type name; None → right-size from the index footprint
    instance_name: str | None = None
    market: InstanceMarket = InstanceMarket.ON_DEMAND
    scaling: ScalingPolicy = field(default_factory=ScalingPolicy)
    early_stopping: EarlyStoppingPolicy | None = field(
        default_factory=EarlyStoppingPolicy
    )
    #: the atlas acceptance bar on the FINAL mapping rate — applied whether
    #: or not early stopping is enabled (early stopping merely applies the
    #: same bar sooner); None disables filtering entirely
    acceptance_threshold: float | None = 0.30
    star_model: StarPerfModel = field(default_factory=StarPerfModel)
    index_model: IndexModel = field(default_factory=IndexModel)
    transfer_model: TransferModel = field(default_factory=TransferModel)
    spot_model: SpotModel = field(default_factory=SpotModel)
    #: per-job fixed normalization/bookkeeping time (DESeq2 step), seconds
    normalize_seconds: float = 30.0
    #: uploaded result size per job (gene counts + logs), bytes
    result_bytes: float = 2e6
    visibility_timeout: float = 4 * 3600.0
    #: SQS redrive bound: a job interrupted this many times is dead-lettered
    max_receive_count: int = 10
    #: sample queue-depth/fleet metrics every N seconds (None = off)
    metrics_period: float | None = None
    #: trajectory checkpoints the monitor sees per run
    n_progress_snapshots: int = 20
    memory_overhead_bytes: float = 6e9
    #: per-job retry policy — the same type the local pipeline uses;
    #: backoff delays are spent as simulated time on the worker
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(base_delay=30.0, max_delay=600.0)
    )
    #: scripted fault injection (prefetch / fasterq_dump / s3_* steps)
    fault_plan: FaultPlan | None = None
    #: workers react to the 120 s spot notice by aborting the in-flight job
    #: and releasing its message immediately (False = work until the kill
    #: and rely on the visibility timeout, the pre-drain behaviour)
    drain_on_warning: bool = True
    #: stream each job: prefetch + fasterq-dump proceed concurrently with
    #: STAR (job wall time is the max of transfer and alignment, not the
    #: sum), and an early-stopping abort cancels the in-flight download —
    #: the un-transferred bytes land in :attr:`JobRecord.download_bytes_saved`
    streaming: bool = False
    #: replicate per-job align progress to an S3 "atlas-journal" bucket
    #: (checkpoint objects + a fencing-token lease per accession) so a
    #: redelivered job is *adopted* mid-STAR instead of restarted — see
    #: :mod:`repro.core.replication`.  Non-streaming jobs only: streamed
    #: jobs overlap transfer with STAR, so there is no resumable STAR
    #: tail to credit.
    replicate_journal: bool = False
    #: lease time-to-live, seconds; holders renew at every checkpoint
    lease_ttl: float = 900.0
    seed: int = 0

    def resolve_instance(self) -> InstanceType:
        """Pinned type, or the cheapest one whose RAM fits the index."""
        if self.instance_name is not None:
            return instance_type(self.instance_name)
        spec = release_spec(self.release)
        memory = self.index_model.memory_required_bytes(
            spec, overhead=self.memory_overhead_bytes
        )
        return cheapest_fitting(memory, family="r6a", min_vcpus=8)


@dataclass
class JobRecord:
    """Outcome of one job inside the simulation."""

    accession: str
    status: RunStatus
    library: LibraryType
    started_at: float
    finished_at: float
    star_seconds: float
    star_seconds_if_full: float
    stop_fraction: float | None
    instance_id: str
    #: retries this job consumed before its terminal status
    retries: int = 0
    #: repr of the final error for FAILED jobs, else empty
    failure: str = ""
    #: processed by the streaming pipeline (stage-overlapped)
    streamed: bool = False
    #: SRA bytes never transferred because an early-stopping abort
    #: cancelled the in-flight download (streaming mode only)
    download_bytes_saved: float = 0.0
    #: this record's instance resumed a dead holder's STAR progress from
    #: the S3-replicated journal (``replicate_journal`` mode)
    adopted: bool = False
    #: STAR seconds the adoption skipped (work already checkpointed)
    star_seconds_recovered: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def star_seconds_saved(self) -> float:
        return self.star_seconds_if_full - self.star_seconds


@dataclass
class AtlasRunReport:
    """Campaign-level results."""

    jobs: list[JobRecord]
    makespan_seconds: float
    cost: CostReport
    instance: InstanceType
    peak_fleet: int
    mean_utilization: float
    init_overhead_seconds: float
    queue_redeliveries: int
    dead_lettered: int = 0
    #: interrupted jobs drained gracefully inside the 120 s warning window
    jobs_drained: int = 0
    #: busy seconds thrown away by spot interruptions (work redone elsewhere)
    work_lost_seconds: float = 0.0
    #: visibility-timeout seconds saved by drains releasing messages early
    work_saved_seconds: float = 0.0
    #: redelivered jobs resumed from S3 journal checkpoints (adoption)
    jobs_adopted: int = 0
    #: simulated STAR seconds adoption recovered instead of redoing
    work_recovered_seconds: float = 0.0
    #: CloudWatch-style time series (when config.metrics_period is set)
    metrics: dict = field(default_factory=dict)
    #: fleet-wide simulated seconds per stage (StageMark accounting)
    stage_seconds: dict = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def download_bytes_saved(self) -> float:
        """SRA bytes never transferred thanks to streamed early stops."""
        return sum(j.download_bytes_saved for j in self.jobs)

    @property
    def star_hours_actual(self) -> float:
        return sum(j.star_seconds for j in self.jobs) / 3600.0

    @property
    def star_hours_if_full(self) -> float:
        return sum(j.star_seconds_if_full for j in self.jobs) / 3600.0

    @property
    def star_hours_saved(self) -> float:
        return self.star_hours_if_full - self.star_hours_actual

    @property
    def n_terminated(self) -> int:
        return sum(1 for j in self.jobs if j.status is RunStatus.REJECTED_EARLY)

    @property
    def n_failed(self) -> int:
        return sum(1 for j in self.jobs if j.status is RunStatus.FAILED)

    @property
    def total_retries(self) -> int:
        return sum(j.retries for j in self.jobs)

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.n_jobs / (self.makespan_seconds / 3600.0)


def simulate_star_step(
    job: AtlasJob,
    config: AtlasConfig,
    vcpus: int,
    rng: np.random.Generator,
) -> tuple[float, float, float | None, RunStatus]:
    """Resolve one job's STAR step against the trajectory + policy.

    Returns (actual_seconds, full_seconds, stop_fraction, status).
    The run-to-run noise draw is shared between the actual and the
    counterfactual full run so savings are measured on the same sample.
    Shared by the cloud atlas and the HPC mode.
    """
    spec = release_spec(config.release)
    full = config.star_model.predict(
        job.fastq_bytes, spec, vcpus, scanned_fraction=1.0, rng=rng
    )
    stop_fraction: float | None = None
    status = RunStatus.ACCEPTED
    if config.early_stopping is not None:
        n = config.n_progress_snapshots
        for i in range(1, n + 1):
            f = i / n
            rate = job.trajectory.rate_at(f)
            if (
                config.early_stopping.decide_rate(rate, f)
                is Decision.ABORT
            ):
                stop_fraction = f
                status = RunStatus.REJECTED_EARLY
                break
    if (
        stop_fraction is None
        and config.acceptance_threshold is not None
        and job.trajectory.rate_at(1.0) < config.acceptance_threshold
    ):
        status = RunStatus.REJECTED_FINAL
    if stop_fraction is None:
        return full.total_seconds, full.total_seconds, None, status
    actual = full.setup_seconds + stop_fraction * full.full_scan_seconds
    return actual, full.total_seconds, stop_fraction, status


def overlap_schedule(
    transfer_seconds: float,
    star_seconds: float,
    stop_fraction: float | None,
) -> tuple[float, float]:
    """Wall time and transferred fraction for one streamed job.

    Download + decode proceed concurrently with STAR, so the job's wall
    time is the max of the two — but STAR can finish no earlier than the
    transfer of the portion it consumes (the whole file for a full run,
    ``stop_fraction`` of it for an early-stopped one).  An abort cancels
    the remainder of the transfer; the un-transferred fraction is the
    streamed download saving.

    Returns ``(elapsed_seconds, transferred_fraction)``.
    """
    if stop_fraction is None:
        return max(transfer_seconds, star_seconds), 1.0
    elapsed = max(star_seconds, stop_fraction * transfer_seconds)
    if transfer_seconds <= 0:
        return elapsed, 1.0
    return elapsed, min(1.0, elapsed / transfer_seconds)


def run_atlas(jobs: list[AtlasJob], config: AtlasConfig) -> AtlasRunReport:
    """Simulate a full atlas campaign and return the report."""
    if not jobs:
        raise ValueError("no jobs to run")
    rng = ensure_rng(config.seed)
    sim = Simulation()
    ec2 = Ec2Service(
        sim, spot_model=config.spot_model, rng=derive_rng(rng, "spot")
    )
    s3 = S3Service()
    itype = config.resolve_instance()
    spec = release_spec(config.release)
    index_bytes = config.index_model.index_bytes(spec)

    index_bucket = s3.create_bucket("atlas-index")
    index_key = f"star-index-r{spec.release}.tar"
    index_bucket.put(index_key, index_bytes, now=0.0)
    results_bucket = s3.create_bucket("atlas-results")
    journal_bucket = (
        s3.create_bucket("atlas-journal") if config.replicate_journal else None
    )

    dead_letter = SqsQueue(sim, name="sra-ids-dlq", visibility_timeout=3600.0)
    queue = SqsQueue(
        sim,
        name="sra-ids",
        visibility_timeout=config.visibility_timeout,
        max_receive_count=config.max_receive_count,
        dead_letter=dead_letter,
    )
    queue.send_batch(list(jobs))

    records: list[JobRecord] = []
    transfer = config.transfer_model
    index_model = config.index_model
    init_overhead = transfer.s3_download_seconds(index_bytes) + (
        index_model.shm_load_seconds(spec)
    )
    job_rng_root = derive_rng(rng, "jobs")
    job_seeds = {
        job.accession: derive_rng(job_rng_root, job.accession)
        for job in jobs
    }
    # derived after "spot"/"jobs" so enabling retries never perturbs the
    # spot-interruption or per-job noise streams of an existing campaign
    retry_rng = derive_rng(rng, "retries")
    fault_plan = config.fault_plan

    def check_fault(step: str, key: str) -> None:
        if fault_plan is not None:
            fault_plan.check(step, key)

    # started_at spans every attempt of a message, not just the last one:
    # retry backoff and failed attempts are real simulated time the job cost
    first_started: dict[str, float] = {}

    # instance_id → the BatchLease it currently holds (replicate_journal
    # mode): a graceful spot drain releases the lease alongside the SQS
    # message, so the adopter starts immediately instead of waiting out
    # the lease TTL — the spot-drain handoff
    held_leases: dict = {}

    def on_drain(agent: WorkerAgent, message) -> None:
        lease = held_leases.pop(agent.instance.instance_id, None)
        if lease is not None:
            from repro.core.replication import FencedOut

            try:
                lease.release(now=sim.now)
            except FencedOut:
                pass  # someone already fenced us out; nothing to hand over

    def init_work(agent: WorkerAgent):
        check_fault("s3_download", agent.instance.instance_id)
        index_bucket.get(index_key)
        yield Timeout(transfer.s3_download_seconds(index_bytes))
        yield Timeout(index_model.shm_load_seconds(spec))

    def process_message(agent: WorkerAgent, message):
        job: AtlasJob = message.body
        started = first_started.setdefault(message.message_id, sim.now)
        download_bytes_saved = 0.0
        lease = None
        adopted = False
        star_recovered = 0.0
        if config.streaming:
            # both transfer steps stream, so their faults surface before
            # any alignment work — mirroring the local streamed pipeline
            check_fault("prefetch", job.accession)
            check_fault("fasterq_dump", job.accession)
            actual, full, stop_fraction, status = simulate_star_step(
                job, config, itype.vcpus, job_seeds[job.accession]
            )
            transfer_seconds = transfer.prefetch_seconds(
                job.sra_bytes
            ) + transfer.fasterq_dump_seconds(job.fastq_bytes)
            elapsed, transferred = overlap_schedule(
                transfer_seconds, actual, stop_fraction
            )
            yield StageMark("stream")
            yield Timeout(elapsed)
            download_bytes_saved = job.sra_bytes * (1.0 - transferred)
        else:
            check_fault("prefetch", job.accession)
            yield StageMark("prefetch")
            yield Timeout(transfer.prefetch_seconds(job.sra_bytes))
            check_fault("fasterq_dump", job.accession)
            yield StageMark("fasterq_dump")
            yield Timeout(transfer.fasterq_dump_seconds(job.fastq_bytes))
            actual, full, stop_fraction, status = simulate_star_step(
                job, config, itype.vcpus, job_seeds[job.accession]
            )
            yield StageMark("star")
            if journal_bucket is None:
                yield Timeout(actual)
            else:
                # adoption path: the STAR step runs as checkpointed chunks
                # under a fencing-token lease, so a redelivery after
                # instance loss resumes from the dead holder's last
                # checkpoint instead of second 0
                from repro.core.replication import BatchLease, LeaseHeld

                lease_key = f"{job.accession}/lease"
                ckpt_key = f"{job.accession}/checkpoint"
                while lease is None:
                    try:
                        lease = BatchLease.acquire(
                            journal_bucket,
                            lease_key,
                            agent.instance.instance_id,
                            now=sim.now,
                            ttl=config.lease_ttl,
                        )
                    except LeaseHeld as held:
                        # a previous holder's lease is still live (e.g. a
                        # drained message came back before expiry): wait
                        # it out rather than split-brain the job
                        yield Timeout(max(held.expires_at - sim.now, 1.0))
                held_leases[agent.instance.instance_id] = lease
                n = max(1, config.n_progress_snapshots)
                chunks_done = 0
                existing = journal_bucket.head(ckpt_key)
                if existing is not None and existing.payload:
                    chunks_done = min(int(existing.payload["chunks"]), n)
                    if chunks_done > 0:
                        adopted = True
                        star_recovered = actual * chunks_done / n
                        agent.stats.jobs_adopted += 1
                        agent.stats.work_recovered_seconds += star_recovered
                for i in range(chunks_done, n):
                    yield Timeout(actual / n)
                    # checkpoint + heartbeat: zero simulated time (the
                    # put piggybacks on progress the worker made anyway)
                    journal_bucket.put(
                        ckpt_key,
                        64,
                        now=sim.now,
                        payload={"chunks": i + 1},
                    )
                    lease.renew(now=sim.now, ttl=config.lease_ttl)
        if status is RunStatus.ACCEPTED:
            yield StageMark("normalize")
            yield Timeout(config.normalize_seconds)
            check_fault("s3_upload", job.accession)
            yield StageMark("s3_upload")
            yield Timeout(transfer.s3_upload_seconds(config.result_bytes))
            if lease is not None:
                # token-checked publish: a stale holder fenced out by an
                # adopter raises here and never lands its result
                lease.publish(
                    results_bucket,
                    f"{job.accession}/ReadsPerGene.out.tab",
                    config.result_bytes,
                    now=sim.now,
                )
            else:
                results_bucket.put(
                    f"{job.accession}/ReadsPerGene.out.tab",
                    config.result_bytes,
                    now=sim.now,
                )
        if lease is not None:
            journal_bucket.delete(f"{job.accession}/checkpoint")
            lease.release(now=sim.now)
            held_leases.pop(agent.instance.instance_id, None)
        record = JobRecord(
            accession=job.accession,
            status=status,
            library=job.library,
            started_at=started,
            finished_at=sim.now,
            star_seconds=actual,
            star_seconds_if_full=full,
            stop_fraction=stop_fraction,
            instance_id=agent.instance.instance_id,
            retries=agent.current_attempt - 1,
            streamed=config.streaming,
            download_bytes_saved=download_bytes_saved,
            adopted=adopted,
            star_seconds_recovered=star_recovered,
        )
        first_started.pop(message.message_id, None)
        records.append(record)
        return record

    def on_failure(agent: WorkerAgent, message, exc: BaseException) -> None:
        """Retry budget exhausted (or permanent fault): keep a FAILED record
        so the report still has one row per submitted accession."""
        job: AtlasJob = message.body
        records.append(
            JobRecord(
                accession=job.accession,
                status=RunStatus.FAILED,
                library=job.library,
                started_at=first_started.pop(message.message_id, sim.now),
                finished_at=sim.now,
                star_seconds=0.0,
                star_seconds_if_full=0.0,
                stop_fraction=None,
                instance_id=agent.instance.instance_id,
                retries=agent.current_attempt - 1,
                failure=repr(exc),
            )
        )

    def make_agent(asg: AutoScalingGroup, instance) -> WorkerAgent:
        return WorkerAgent(
            sim,
            instance,
            queue,
            init_work=init_work,
            process_message=process_message,
            on_stop=lambda a: ec2.terminate(a.instance),
            retry=config.retry,
            retry_rng=retry_rng,
            on_failure=on_failure,
            drain_on_warning=config.drain_on_warning,
            on_drain=on_drain if config.replicate_journal else None,
        )

    asg = AutoScalingGroup(
        sim,
        ec2,
        queue,
        itype=itype,
        market=config.market,
        policy=config.scaling,
        make_agent=make_agent,
    )

    collector = None
    if config.metrics_period is not None:
        from repro.cloud.metrics import MetricsCollector

        collector = MetricsCollector(sim, period=config.metrics_period)
        collector.register("queue_depth", lambda: queue.approximate_depth)
        collector.register("in_flight", lambda: queue.inflight_count)
        collector.register("fleet_running", lambda: len(ec2.running()))
        collector.register("jobs_done", lambda: len(records))

        def campaign():
            yield sim.process(asg.controller(), name="asg-controller")
            collector.stop()

        sim.process(collector.run(), name="metrics")
        sim.process(campaign(), name="campaign")
    else:
        sim.process(asg.controller(), name="asg-controller")
    sim.run()

    # Deduplicate redelivered jobs: keep the first completed record per
    # accession (at-least-once delivery can process a job twice when a spot
    # interruption strikes after most of the work was done).
    seen: dict[str, JobRecord] = {}
    for record in records:
        seen.setdefault(record.accession, record)
    final_records = [seen[j.accession] for j in jobs if j.accession in seen]

    makespan = max((r.finished_at for r in final_records), default=sim.now)
    buckets = [index_bucket, results_bucket]
    if journal_bucket is not None:
        buckets.append(journal_bucket)
    cost = CostAccountant(config.spot_model).full_report(
        ec2.instances, buckets, sim.now
    )
    return AtlasRunReport(
        jobs=final_records,
        makespan_seconds=makespan,
        cost=cost,
        instance=itype,
        peak_fleet=asg.peak_fleet_size(),
        mean_utilization=asg.mean_utilization(),
        init_overhead_seconds=init_overhead,
        # a drain-released message is a redelivery too — it just comes back
        # immediately instead of after the visibility timeout
        queue_redeliveries=queue.total_expired_visibility + queue.total_released,
        dead_lettered=queue.total_dead_lettered,
        jobs_drained=sum(a.stats.jobs_drained for a in asg.agents),
        work_lost_seconds=sum(a.stats.work_lost_seconds for a in asg.agents),
        work_saved_seconds=sum(a.stats.work_saved_seconds for a in asg.agents),
        jobs_adopted=sum(a.stats.jobs_adopted for a in asg.agents),
        work_recovered_seconds=sum(
            a.stats.work_recovered_seconds for a in asg.agents
        ),
        metrics=collector.series if collector is not None else {},
        stage_seconds=_merge_stage_seconds(asg.agents),
    )


def _merge_stage_seconds(agents) -> dict:
    totals: dict[str, float] = {}
    for agent in agents:
        for stage, seconds in agent.stats.stage_seconds.items():
            totals[stage] = totals.get(stage, 0.0) + seconds
    return totals
