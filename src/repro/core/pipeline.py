"""The Transcriptomics Atlas pipeline (Fig. 1), over the real local toolchain.

Four steps per SRA accession:

1. ``prefetch`` — download the ``.sra`` container from the repository;
2. ``fasterq-dump`` — convert it to FASTQ (paired archives split into
   ``_1``/``_2`` files, detected from the container magic as the real
   tool does);
3. STAR alignment with ``--quantMode GeneCounts`` — monitored by the
   early-stopping policy; executed through whichever
   :class:`~repro.align.backend.AlignerBackend` fits the accession;
4. DESeq2 count normalization — per-sample counts are collected and
   normalized jointly with median-of-ratios once the batch completes.

Every step runs under the :mod:`repro.core.resilience` layer: transient
failures are retried with backoff, permanent ones produce a
:class:`~repro.core.resilience.FailureRecord` on a ``FAILED`` result
instead of aborting the batch — one result per accession, always, in
submission order.

The steps themselves are :class:`~repro.core.stages.Stage` objects (see
:mod:`repro.core.stages`); this module supplies the harness around them
— retries, journaling, timing, drain — and the
:class:`BatchOptions`-driven batch loop, including the streaming
stage-overlapped execution shape (``BatchOptions(streaming=True)``,
implemented in :mod:`repro.core.streaming`).

This class is the *local* (workstation/HPC) embodiment the paper's
conclusions mention; :mod:`repro.core.atlas` embeds the same step
structure in the cloud simulation.
"""

from __future__ import annotations

import contextlib
import enum
import signal as signal_module
import threading
import time
import warnings
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.align.engine import ParallelStarAligner
from repro.align.outcome import AlignmentOutcome
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.journal import (
    JournalIncompatible,
    ReplayedOutcome,
    RunJournal,
    config_fingerprint,
    final_stats_from_payload,
    final_stats_to_payload,
)
from repro.core.resilience import (
    FailureRecord,
    FaultPlan,
    RetryLedger,
    RetryPolicy,
    StepFailed,
    run_with_retry,
)
from repro.core.stages import (
    Deseq2Stage,
    PipelineHealth,
    Stage,
    StageContext,
    default_stages,
)
from repro.quant.matrix import CountMatrix
from repro.reads.sra import SraRepository
from repro.reads.trim import TrimConfig, TrimStats
from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from repro.align.star import StarAligner


class RunStatus(enum.Enum):
    """Terminal status of one accession's pipeline run."""

    ACCEPTED = "accepted"
    REJECTED_EARLY = "rejected_early"  # aborted by the monitor
    REJECTED_FINAL = "rejected_final"  # completed but below the acceptance bar
    FAILED = "failed"  # a step exhausted its retry policy
    DRAINED = "drained"  # aborted by a graceful drain; re-run on resume

    @property
    def produced_counts(self) -> bool:
        return self is RunStatus.ACCEPTED

    @property
    def terminal(self) -> bool:
        """False only for DRAINED: the run must be re-executed to finish."""
        return self is not RunStatus.DRAINED


@dataclass(frozen=True)
class StepTiming:
    """Wall-clock seconds per pipeline step (retries included)."""

    prefetch: float
    fasterq_dump: float
    star: float

    @property
    def total(self) -> float:
        return self.prefetch + self.fasterq_dump + self.star


@dataclass
class PipelineResult:
    """Everything one accession's run produced."""

    accession: str
    status: RunStatus
    timing: StepTiming
    #: the run-level result (None only when ``status is FAILED``)
    star_result: AlignmentOutcome | None
    fastq_bytes: int
    counts: dict[str, int] | None = None
    trim_stats: TrimStats | None = None
    paired: bool = False
    #: populated when ``status is FAILED``: which step died, and how
    failure: FailureRecord | None = None
    #: retries spent across this accession's steps
    retries: int = 0
    #: True when this result was replayed from a run journal instead of
    #: executed (``star_result`` is then a lightweight ReplayedOutcome)
    resumed: bool = False
    #: True when executed through the streaming stage-overlapped path
    streamed: bool = False
    #: archive size in bytes (what a full download would move)
    download_bytes_total: int = 0
    #: bytes a cancelled mid-stream download avoided moving (early stop
    #: or drain while streaming; always 0 on the sequential path)
    download_bytes_saved: int = 0

    @property
    def mapped_fraction(self) -> float:
        if self.star_result is None:
            return 0.0
        return self.star_result.mapped_fraction


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-level options."""

    early_stopping: EarlyStoppingPolicy | None = field(
        default_factory=EarlyStoppingPolicy
    )
    #: atlas acceptance bar on the final mapping rate, applied whether or
    #: not early stopping is on (None disables filtering)
    acceptance_threshold: float | None = 0.30
    #: strandedness column of ReadsPerGene.out.tab used for the atlas
    counts_column: str = "unstranded"
    #: keep STAR output files on disk under the workspace
    write_outputs: bool = True
    #: optional QC trimming between fasterq-dump and STAR
    trim: "TrimConfig | None" = None
    #: alignment worker processes; >1 routes the STAR step through the
    #: shared-memory :class:`~repro.align.engine.ParallelStarAligner`
    #: (the index is published to shared memory once per pipeline and
    #: reused across accessions, as the paper's instances do)
    workers: int = 1
    #: reads per batch dispatched to an alignment worker; None lets the
    #: engine size shards from its batch-core cost model (see
    #: :class:`~repro.align.engine.ParallelStarAligner`)
    align_batch_size: int | None = None
    #: seconds of no-progress after a worker loss before the engine
    #: declares its pool wedged and degrades to serial (then rebuilds it)
    engine_stall_timeout: float = 5.0
    #: after a drain request, seconds in-flight accessions may keep
    #: running before their alignment is aborted (status DRAINED); 0
    #: aborts at the next progress checkpoint
    drain_deadline: float = 30.0
    #: retry/backoff/deadline policy applied to every step
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(base_delay=0.05, max_delay=2.0)
    )
    #: scripted fault injection (chaos testing); None = no faults
    fault_plan: FaultPlan | None = None
    #: seed for the per-accession backoff-jitter streams
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.align_batch_size is not None and self.align_batch_size < 1:
            raise ValueError("align_batch_size must be >= 1")
        if self.drain_deadline < 0:
            raise ValueError("drain_deadline must be >= 0")


#: sentinel distinguishing "not passed" from an explicit None in the
#: deprecated run_batch kwargs
_UNSET = object()


@dataclass(frozen=True)
class BatchOptions:
    """Everything that shapes one ``run_batch`` call.

    Consolidates the former kwarg pile (``journal=``, ``resume=``,
    ``max_parallel=``, drain deadline, align batch size) into one
    validated bundle, and adds the streaming execution shape.  None of
    these affect *outputs* (they are execution shape, deliberately
    excluded from the journal's config fingerprint) — a batch run with
    any options resumes a journal written with any other.
    """

    #: accessions processed concurrently by a thread pool (sequential
    #: shape only; streaming overlaps stages instead of accessions)
    max_parallel: int = 1
    #: path or RunJournal making the batch crash-consistent
    journal: RunJournal | Path | str | None = None
    #: replay the journal's terminal records instead of re-running them
    resume: bool = False
    #: overlap download/decode/align via the streaming DAG
    streaming: bool = False
    #: accessions downloaded ahead of the one being aligned (streaming)
    prefetch_depth: int = 1
    #: FASTQ records per streamed chunk handed to the align stage
    chunk_reads: int = 256
    #: bounded inter-stage queue length, in chunks (the backpressure
    #: window between the downloader and the align stage)
    buffer_chunks: int = 32
    #: bytes per download chunk (cancellation granularity)
    download_chunk_bytes: int = 65536
    #: per-batch override of ``PipelineConfig.drain_deadline`` (None
    #: keeps the config value)
    drain_deadline: float | None = None
    #: per-batch override of ``PipelineConfig.align_batch_size``; only
    #: effective before the engine is first created
    align_batch_size: int | None = None
    #: journal completed read shards inside the align step so resume
    #: re-dispatches only unfinished shards (requires ``journal``;
    #: engine and faas runs, single-end *and* paired — other shapes
    #: align normally).  Execution shape, like everything here: results
    #: are byte-identical either way.
    shard_checkpoints: bool = False
    #: alignment backend for the batch: one of
    #: :data:`~repro.align.backend.BACKEND_CHOICES` — ``"auto"`` (the
    #: config-driven default), ``"serial"``, ``"engine"`` (requires
    #: ``PipelineConfig.workers > 1``), or ``"faas"`` (shards each
    #: accession across simulated function invocations; see
    #: :class:`~repro.align.backend.FaasAlignerBackend`).  None means
    #: ``"auto"``.  Execution shape: byte-identical outputs either way.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if self.backend is not None:
            from repro.align.backend import BACKEND_CHOICES

            if self.backend not in BACKEND_CHOICES:
                raise ValueError(
                    f"backend must be one of {BACKEND_CHOICES}, "
                    f"got {self.backend!r}"
                )
            if self.backend == "faas" and self.streaming:
                raise ValueError(
                    "backend='faas' needs the materialized align path; "
                    "streaming consumes reads as they arrive"
                )
        if self.shard_checkpoints and self.journal is None:
            raise ValueError("shard_checkpoints requires a journal")
        if self.shard_checkpoints and self.streaming:
            raise ValueError(
                "shard_checkpoints needs the materialized align path; "
                "streaming consumes reads as they arrive"
            )
        if self.streaming and self.max_parallel > 1:
            raise ValueError(
                "streaming overlaps stages, not accessions: it requires "
                "max_parallel == 1"
            )
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.chunk_reads < 1:
            raise ValueError("chunk_reads must be >= 1")
        if self.buffer_chunks < 1:
            raise ValueError("buffer_chunks must be >= 1")
        if self.download_chunk_bytes < 1:
            raise ValueError("download_chunk_bytes must be >= 1")
        if self.drain_deadline is not None and self.drain_deadline < 0:
            raise ValueError("drain_deadline must be >= 0")
        if self.align_batch_size is not None and self.align_batch_size < 1:
            raise ValueError("align_batch_size must be >= 1")


@dataclass
class StepHarness:
    """The retry/journal/timing plumbing handed to a stage-executing body.

    ``attempt(step_key, timing_key, fn)`` runs ``fn`` under the retry
    policy, accumulates wall clock into ``timings[timing_key]``, journals
    the step-done record, and feeds the stage-health counters.  Bodies
    (the sequential stage loop, the streaming consumer) only ever go
    through ``attempt`` so every execution shape shares identical
    failure semantics.
    """

    accession: str
    work: Path
    attempt: Callable
    state: dict
    timings: dict
    retries: dict
    journal: RunJournal | None
    rng: np.random.Generator


class TranscriptomicsAtlasPipeline:
    """Runs accessions end to end against a repository and an aligner."""

    def __init__(
        self,
        repository: SraRepository,
        aligner: StarAligner,
        workspace: Path | str,
        *,
        config: PipelineConfig | None = None,
    ) -> None:
        self.repository = repository
        self.aligner = aligner
        self.workspace = Path(workspace)
        self.workspace.mkdir(parents=True, exist_ok=True)
        self.config = config or PipelineConfig()
        self.results: list[PipelineResult] = []
        self.retry_ledger = RetryLedger()
        #: per-stage throughput/stall/queue counters (streaming populates
        #: the queue/stall figures; every shape feeds busy seconds)
        self.stage_health = PipelineHealth()
        self._engine: ParallelStarAligner | None = None
        self._engine_lock = threading.Lock()
        self._results_lock = threading.Lock()
        self._drain = threading.Event()
        self._drain_deadline_at: float | None = None
        #: per-batch overrides installed by run_batch from BatchOptions
        self._drain_deadline_base: float | None = None
        self._align_batch_override: int | None = None
        self._backend_override: str | None = None
        #: the serverless backend, created on first use and kept for the
        #: pipeline's lifetime so warm containers persist across
        #: accessions (the FaaS analogue of the engine's shared index)
        self._faas_backend = None
        #: shard-checkpoint state for the current batch:
        #: (journal, replayed align_shards by accession, fingerprint)
        self._shard_ckpt_state: tuple | None = None
        #: checkpointers created this batch (for rework accounting)
        self._shard_ckpts: list = []
        #: chaos hook: called as (accession, start, end) after each shard
        #: checkpoint lands in the journal
        self._shard_record_hook: Callable[[str, int, int], None] | None = None

    # -- parallel engine lifecycle -------------------------------------------

    def _get_engine(self) -> ParallelStarAligner | None:
        """The shared alignment engine (None when ``config.workers == 1``).

        Created on first use and kept for the pipeline's lifetime so the
        shared-memory index publication and worker pool are paid once,
        not per accession.  Thread-safe for parallel ``run_batch``.
        """
        if self.config.workers <= 1:
            return None
        with self._engine_lock:
            if self._engine is None:
                batch_size = (
                    self._align_batch_override
                    if self._align_batch_override is not None
                    else self.config.align_batch_size
                )
                self._engine = ParallelStarAligner(
                    self.aligner.index,
                    self.aligner.parameters,
                    workers=self.config.workers,
                    batch_size=batch_size,
                    stall_timeout=self.config.engine_stall_timeout,
                ).start()
            return self._engine

    def _get_faas_backend(self):
        """The shared serverless backend (``BatchOptions(backend="faas")``).

        Created on first use and kept for the pipeline's lifetime so the
        simulated warm-container pool carries across accessions — the
        FaaS analogue of keeping the engine's shared-memory index alive.
        Thread-safe for parallel ``run_batch``.
        """
        with self._engine_lock:
            if self._faas_backend is None:
                from repro.align.backend import FaasAlignerBackend

                batch_size = (
                    self._align_batch_override
                    if self._align_batch_override is not None
                    else self.config.align_batch_size
                )
                self._faas_backend = FaasAlignerBackend(
                    self.aligner,
                    batch_size=batch_size,
                )
            return self._faas_backend

    def close(self) -> None:
        """Release the worker pool and shared-memory blocks (idempotent)."""
        with self._engine_lock:
            if self._engine is not None:
                self._engine.close()
                self._engine = None

    # -- graceful drain ------------------------------------------------------

    @property
    def draining(self) -> bool:
        """A drain has been requested (SIGTERM, spot notice, operator)."""
        return self._drain.is_set()

    def request_drain(self, *, deadline: float | None = None) -> None:
        """Stop admitting new accessions; bound in-flight work.

        Batch loops stop picking up accessions immediately.  Accessions
        already executing keep running for ``deadline`` seconds (default
        ``config.drain_deadline``), after which their alignment is
        aborted at the next progress checkpoint and the result is marked
        ``DRAINED`` — journaled as non-terminal, so a resumed run
        re-executes it from scratch.  Idempotent; safe from signal
        handlers and other threads.
        """
        if not self._drain.is_set():
            if deadline is not None:
                budget = deadline
            elif self._drain_deadline_base is not None:
                budget = self._drain_deadline_base
            else:
                budget = self.config.drain_deadline
            self._drain_deadline_at = time.monotonic() + budget
            self._drain.set()

    def _drain_expired(self) -> bool:
        return (
            self._drain.is_set()
            and self._drain_deadline_at is not None
            and time.monotonic() >= self._drain_deadline_at
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Request a drain and tear the engine down once runs finish.

        Returns True when the engine wound down within ``timeout``
        (always True when no engine was running); False when the
        deadline expired and the pool was torn down hard.
        """
        self.request_drain(deadline=timeout)
        with self._engine_lock:
            engine, self._engine = self._engine, None
        if engine is not None:
            return engine.drain(timeout)
        return True

    def __enter__(self) -> "TranscriptomicsAtlasPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single accession --------------------------------------------------

    def run_accession(self, accession: str) -> PipelineResult:
        """Execute all four steps for one accession."""
        result = self._execute_accession(accession)
        with self._results_lock:
            self.results.append(result)
        return result

    def _execute_accession(
        self, accession: str, journal: RunJournal | None = None
    ) -> PipelineResult:
        """All four steps, without touching shared pipeline state.

        Never raises: a step that exhausts its retry policy (or any
        unexpected internal error) is converted to a ``FAILED`` result
        carrying a :class:`FailureRecord`, so batch runs keep every
        other accession's work.

        With a ``journal``, every state transition is durably appended
        *before* the pipeline moves on: ``started`` ahead of the first
        step, ``step-done`` after each step's retries settle, and a
        terminal ``completed``/``failed`` (or non-terminal ``drained``)
        record carrying everything resume needs to replay the result.
        """
        return self._run_guarded(accession, journal, self._run_steps)

    def _run_guarded(
        self,
        accession: str,
        journal: RunJournal | None,
        body: Callable[[StepHarness], PipelineResult],
        *,
        rng: np.random.Generator | None = None,
    ) -> PipelineResult:
        """Run ``body`` under the retry/journal/failure harness.

        Builds the :class:`StepHarness` (workspace dir, timing buckets,
        retry accounting, the per-accession jitter rng — callers that
        pre-draw from the stream, like the streaming downloader, pass
        their ``rng`` in) and converts any escaped :class:`StepFailed`
        or unexpected exception into a ``FAILED`` result.  Both the
        sequential stage loop and the streaming consumer execute through
        here, so every shape shares identical failure semantics.
        """
        cfg = self.config
        work = self.workspace / accession
        work.mkdir(parents=True, exist_ok=True)
        if rng is None:
            rng = derive_rng(cfg.retry_seed, f"retry:{accession}")
        timings = {"prefetch": 0.0, "fasterq_dump": 0.0, "star": 0.0}
        retries = {"n": 0}
        state = {"paired": False, "fastq_bytes": 0}

        def on_retry(step: str, attempt: int, exc: BaseException, delay: float):
            retries["n"] += 1
            self.retry_ledger.record(step)

        def attempt(step: str, timing_key: str, fn):
            started = time.monotonic()
            try:
                value = run_with_retry(
                    fn,
                    policy=cfg.retry,
                    step=step,
                    key=accession,
                    rng=rng,
                    on_retry=on_retry,
                )
            finally:
                elapsed = time.monotonic() - started
                timings[timing_key] += elapsed
                self.stage_health.stage(step).record(items=1, busy=elapsed)
            if journal is not None:
                journal.record_step_done(accession, step)
            return value

        harness = StepHarness(
            accession=accession,
            work=work,
            attempt=attempt,
            state=state,
            timings=timings,
            retries=retries,
            journal=journal,
            rng=rng,
        )
        if journal is not None:
            journal.record_started(accession)
        try:
            result = body(harness)
            self._journal_terminal(journal, result)
            return result
        except StepFailed as exc:
            failure = exc.record
        except Exception as exc:  # defensive: isolate unexpected errors too
            failure = FailureRecord(
                step="internal",
                key=accession,
                attempts=1,
                elapsed_seconds=0.0,
                error=repr(exc),
                error_chain=[repr(exc)],
            )
        result = PipelineResult(
            accession=accession,
            status=RunStatus.FAILED,
            timing=StepTiming(**timings),
            star_result=None,
            fastq_bytes=state["fastq_bytes"],
            paired=state["paired"],
            failure=failure,
            retries=retries["n"],
            streamed=bool(state.get("streamed", False)),
            download_bytes_total=int(state.get("download_bytes_total", 0)),
            download_bytes_saved=int(state.get("download_bytes_saved", 0)),
        )
        self._journal_terminal(journal, result)
        return result

    @staticmethod
    def _journal_terminal(
        journal: RunJournal | None, result: PipelineResult
    ) -> None:
        if journal is None:
            return
        if result.status is RunStatus.DRAINED:
            journal.record_drained(result.accession)
        elif result.status is RunStatus.FAILED:
            journal.record_failed(result.accession, _result_payload(result))
        else:
            journal.record_completed(result.accession, _result_payload(result))

    def _accession_stages(self) -> list[Stage]:
        """The per-accession stage DAG (override point for subclasses)."""
        return default_stages()

    def _run_steps(self, harness: StepHarness) -> PipelineResult:
        """The happy path: run the stage DAG in order, then classify."""
        ctx = StageContext(
            pipeline=self,
            accession=harness.accession,
            work=harness.work,
            state=harness.state,
        )
        for stage in self._accession_stages():
            stage.prepare(ctx)
            harness.attempt(
                stage.step_key,
                stage.timing_key,
                lambda stage=stage: stage.run(ctx),
            )
        return self._classify(ctx, harness)

    def _classify(
        self, ctx: StageContext, harness: StepHarness
    ) -> PipelineResult:
        """Terminal status + result assembly for a completed stage run."""
        cfg = self.config
        star_result = ctx.star_result
        if ctx.drain_hit:
            status = RunStatus.DRAINED
        elif star_result.aborted:
            status = RunStatus.REJECTED_EARLY
        elif (
            cfg.acceptance_threshold is not None
            and star_result.mapped_fraction < cfg.acceptance_threshold
        ):
            status = RunStatus.REJECTED_FINAL
        else:
            status = RunStatus.ACCEPTED

        counts = None
        if status.produced_counts and star_result.gene_counts is not None:
            counts = star_result.gene_counts.column_vector(cfg.counts_column)

        state = harness.state
        return PipelineResult(
            accession=harness.accession,
            status=status,
            timing=StepTiming(**harness.timings),
            star_result=star_result,
            fastq_bytes=state["fastq_bytes"],
            counts=counts,
            trim_stats=ctx.trim_stats,
            paired=ctx.paired,
            retries=harness.retries["n"],
            streamed=bool(state.get("streamed", False)),
            download_bytes_total=int(state.get("download_bytes_total", 0)),
            download_bytes_saved=int(state.get("download_bytes_saved", 0)),
        )

    def run_batch(
        self,
        accessions: list[str],
        options: BatchOptions | None = None,
        *,
        max_parallel=_UNSET,
        journal=_UNSET,
        resume=_UNSET,
    ) -> list[PipelineResult]:
        """Run several accessions (one instance's view).

        Execution shape is configured through ``options`` (a
        :class:`BatchOptions`); the bare keyword arguments
        (``max_parallel=``, ``journal=``, ``resume=``) are deprecated
        shims that build the equivalent options bundle and warn.

        ``max_parallel > 1`` overlaps accessions with a thread pool: the
        prefetch/dump steps are I/O-shaped and the alignment step hands
        its CPU work to the engine's worker *processes*, so threads only
        coordinate.  ``streaming=True`` instead overlaps *stages* of
        consecutive accessions — the next accession's download streams
        into a bounded chunk queue while the current one aligns (see
        :mod:`repro.core.streaming`) — with byte-identical results.  A
        failure is a ``FAILED`` result, never an exception, so one
        accession cannot drop another's work; the returned list and
        ``self.results`` keep submission order regardless of completion
        order, so downstream count matrices are reproducible.

        ``journal`` (a path or :class:`RunJournal`) makes the batch
        crash-consistent: every accession's step transitions are durably
        appended before execution proceeds.  With ``resume=True`` the
        journal is replayed first — accessions with a terminal record
        are *not* re-run; their results are reconstructed from the
        journal (``resumed=True``) and interleaved at their submission
        positions, so an interrupted batch resumed from its journal
        returns byte-identical per-accession outcomes and count
        matrices versus an uninterrupted run.  A journal written by a
        pipeline whose output-affecting config differs raises
        :class:`~repro.core.journal.JournalIncompatible`.  Execution
        shape is *not* fingerprinted: streamed and sequential runs
        resume each other's journals freely.

        Under a drain request (:meth:`request_drain`), accessions not
        yet started are skipped — the returned list then covers only
        replayed, finished, and ``DRAINED`` work, and the journal holds
        everything a resume needs to complete the batch.
        """
        options = self._coerce_options(
            options, max_parallel=max_parallel, journal=journal, resume=resume
        )
        run_journal: RunJournal | None = None
        if options.journal is not None:
            run_journal = (
                options.journal
                if isinstance(options.journal, RunJournal)
                else RunJournal(options.journal)
            )
        replayed: dict[str, PipelineResult] = {}
        replayed_shards: dict[str, dict] = {}
        fingerprint = config_fingerprint(self.config)
        if run_journal is not None:
            if options.resume:
                replay = run_journal.replay()
                if replay.n_records and replay.fingerprint != fingerprint:
                    raise JournalIncompatible(
                        str(replay.fingerprint), fingerprint
                    )
                wanted = set(accessions)
                for acc, record in replay.terminal.items():
                    if acc in wanted:
                        replayed[acc] = _result_from_payload(
                            acc, record["result"]
                        )
                replayed_shards = replay.align_shards
            run_journal.record_batch_start(list(accessions), fingerprint)

        self._drain_deadline_base = options.drain_deadline
        self._align_batch_override = options.align_batch_size
        self._backend_override = options.backend
        self._shard_ckpts = []
        self._shard_ckpt_state = (
            (run_journal, replayed_shards, fingerprint)
            if options.shard_checkpoints and run_journal is not None
            else None
        )

        pending = [a for a in accessions if a not in replayed]
        results_map: dict[str, PipelineResult] = dict(replayed)
        map_lock = threading.Lock()

        if options.streaming:
            if self.config.trim is not None:
                raise ValueError(
                    "streaming does not support read trimming: records are "
                    "consumed as they arrive, before the full set exists"
                )
            from repro.core.streaming import StreamedBatchRunner

            executed = StreamedBatchRunner(self, options).run(
                pending, run_journal
            )
            results_map.update(executed)
        elif options.max_parallel == 1 or len(pending) <= 1:
            for accession in pending:
                if self._drain.is_set():
                    break
                results_map[accession] = self._execute_accession(
                    accession, journal=run_journal
                )
        else:
            cursor = iter(pending)

            def worker() -> None:
                while not self._drain.is_set():
                    with map_lock:
                        accession = next(cursor, None)
                    if accession is None:
                        return
                    result = self._execute_accession(
                        accession, journal=run_journal
                    )
                    with map_lock:
                        results_map[accession] = result

            n_workers = min(options.max_parallel, len(pending))
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                futures = [pool.submit(worker) for _ in range(n_workers)]
                for future in futures:
                    future.result()

        results = [results_map[a] for a in accessions if a in results_map]
        with self._results_lock:
            self.results.extend(results)
        self._collect_journal_garbage(run_journal, accessions, results_map)
        return results

    @staticmethod
    def _collect_journal_garbage(
        run_journal: RunJournal | None,
        accessions: list[str],
        results_map: dict[str, PipelineResult],
    ) -> None:
        """Drop the journal's replica prefix once the batch is terminal.

        A replicated journal (see
        :class:`~repro.core.replication.ReplicatedJournal`) keeps
        segment/tail/manifest objects in S3 so a successor instance can
        adopt an interrupted batch.  Once every requested accession has
        a *terminal* result there is nothing left to adopt — the replica
        is garbage, and at atlas scale (thousands of journals) leaking
        it is a real storage bill.  The local journal file is untouched:
        it remains the durable record of the run.  No-op for plain
        journals, incomplete batches, and drained runs.
        """
        collect = getattr(run_journal, "collect_garbage", None)
        if collect is None:
            return
        done = all(
            a in results_map and results_map[a].status.terminal
            for a in accessions
        )
        if done:
            collect()

    def _shard_checkpointer(self, accession: str):
        """Build the align-shard checkpointer for one accession.

        None unless the current batch enabled ``shard_checkpoints`` —
        :class:`~repro.core.stages.AlignStage` calls this per attempt so
        a retried alignment reuses shards the failed attempt already
        journaled (the cached dict is shared across attempts).
        """
        if self._shard_ckpt_state is None:
            return None
        from repro.core.replication import ShardCheckpointer

        run_journal, shards, fingerprint = self._shard_ckpt_state
        ckpt = ShardCheckpointer(
            run_journal,
            accession,
            fingerprint,
            shards.setdefault(accession, {}),
        )
        hook = self._shard_record_hook
        if hook is not None:
            ckpt.on_record = lambda s, e, acc=accession: hook(acc, s, e)
        self._shard_ckpts.append(ckpt)
        return ckpt

    def shard_checkpoint_summary(self) -> dict[str, int]:
        """Rework accounting for the last batch: shards replayed from the
        journal (``hits``) vs aligned and checkpointed (``recorded``)."""
        return {
            "hits": sum(c.hits for c in self._shard_ckpts),
            "recorded": sum(c.recorded for c in self._shard_ckpts),
        }

    @staticmethod
    def _coerce_options(
        options: BatchOptions | None, *, max_parallel, journal, resume
    ) -> BatchOptions:
        """Merge the deprecated kwargs into a :class:`BatchOptions`.

        Passing both ``options`` and any legacy kwarg is an error (two
        sources of truth); passing only legacy kwargs warns once and
        builds the equivalent bundle.
        """
        legacy = {
            name: value
            for name, value in (
                ("max_parallel", max_parallel),
                ("journal", journal),
                ("resume", resume),
            )
            if value is not _UNSET
        }
        if options is not None:
            if legacy:
                raise ValueError(
                    "pass either BatchOptions or the deprecated kwargs, "
                    f"not both (got options and {sorted(legacy)})"
                )
            return options
        if legacy:
            warnings.warn(
                "run_batch(max_parallel=/journal=/resume=) is deprecated; "
                "pass BatchOptions instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return BatchOptions(**legacy)

    # -- step 4: joint normalization -----------------------------------------

    def build_count_matrix(self) -> CountMatrix:
        """Assemble accepted runs' GeneCounts into a gene × sample matrix."""
        columns = {
            r.accession: r.counts
            for r in self.results
            if r.status.produced_counts and r.counts is not None
        }
        if not columns:
            raise ValueError("no accepted runs with counts to normalize")
        return CountMatrix.from_columns(columns)

    def normalize(self) -> tuple[CountMatrix, np.ndarray, np.ndarray]:
        """DESeq2 step: returns (matrix, size_factors, normalized_counts)."""
        return Deseq2Stage().run(self)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Run-status tally, plus the total retry count across all steps."""
        tally = {status.value: 0 for status in RunStatus}
        for r in self.results:
            tally[r.status.value] += 1
        tally["retries"] = self.retry_ledger.total
        return tally

    def retries_by_step(self) -> dict[str, int]:
        """Retry counts bucketed by step name (prefetch/fasterq_dump/align)."""
        return self.retry_ledger.by_step()


# --------------------------------------------------------------------------
# journal payloads
# --------------------------------------------------------------------------


def _result_payload(result: PipelineResult) -> dict:
    """The JSON-safe commit record for one terminal result.

    Holds everything a resumed batch needs to replay the result without
    re-running it: status, the count column (what the count matrix
    consumes), the ``Log.final.out`` statistics, timings, and — for
    FAILED results — the failure record.  Per-read outcomes and progress
    snapshots are deliberately not journaled (bulky, and nothing
    downstream of a terminal accession reads them).
    """
    final = result.star_result.final if result.star_result is not None else None
    failure = result.failure
    return {
        "status": result.status.value,
        "counts": result.counts,
        "paired": result.paired,
        "fastq_bytes": result.fastq_bytes,
        "retries": result.retries,
        "streamed": result.streamed,
        "download_bytes_total": result.download_bytes_total,
        "download_bytes_saved": result.download_bytes_saved,
        "timing": {
            "prefetch": result.timing.prefetch,
            "fasterq_dump": result.timing.fasterq_dump,
            "star": result.timing.star,
        },
        "final": final_stats_to_payload(final) if final is not None else None,
        "aborted": (
            result.star_result.aborted
            if result.star_result is not None
            else False
        ),
        "failure": (
            {
                "step": failure.step,
                "key": failure.key,
                "attempts": failure.attempts,
                "elapsed_seconds": failure.elapsed_seconds,
                "error": failure.error,
                "error_chain": list(failure.error_chain),
                "permanent": failure.permanent,
            }
            if failure is not None
            else None
        ),
    }


def _result_from_payload(accession: str, payload: dict) -> PipelineResult:
    """Rebuild a replayed :class:`PipelineResult` from its commit record."""
    final_payload = payload.get("final")
    star_result = (
        ReplayedOutcome(
            final=final_stats_from_payload(final_payload),
            aborted=bool(payload.get("aborted", False)),
        )
        if final_payload is not None
        else None
    )
    failure_payload = payload.get("failure")
    failure = (
        FailureRecord(**failure_payload) if failure_payload is not None else None
    )
    timing = payload.get("timing") or {}
    return PipelineResult(
        accession=accession,
        status=RunStatus(payload["status"]),
        timing=StepTiming(
            prefetch=float(timing.get("prefetch", 0.0)),
            fasterq_dump=float(timing.get("fasterq_dump", 0.0)),
            star=float(timing.get("star", 0.0)),
        ),
        star_result=star_result,
        fastq_bytes=int(payload.get("fastq_bytes", 0)),
        counts=payload.get("counts"),
        paired=bool(payload.get("paired", False)),
        failure=failure,
        retries=int(payload.get("retries", 0)),
        resumed=True,
        streamed=bool(payload.get("streamed", False)),
        download_bytes_total=int(payload.get("download_bytes_total", 0)),
        download_bytes_saved=int(payload.get("download_bytes_saved", 0)),
    )


# --------------------------------------------------------------------------
# signal-driven drain
# --------------------------------------------------------------------------


@contextlib.contextmanager
def drain_on_signals(
    pipeline: TranscriptomicsAtlasPipeline,
    *,
    signals: tuple[int, ...] = (signal_module.SIGTERM, signal_module.SIGINT),
    deadline: float | None = None,
):
    """Install handlers that convert SIGTERM/SIGINT into a graceful drain.

    The first signal requests a drain (stop admitting accessions, bound
    in-flight work by the deadline, flush the journal as each accession
    commits); a second signal restores abortive behaviour by raising
    :class:`KeyboardInterrupt`.  On exit the previous handlers are
    restored and the engine is wound down if a drain was requested —
    mirroring how the paper's workers treat the spot two-minute notice.

    No-op outside the main thread (Python only delivers signals there).
    """
    fired = {"count": 0}

    def handler(signum, frame) -> None:
        fired["count"] += 1
        if fired["count"] > 1:
            raise KeyboardInterrupt
        pipeline.request_drain(deadline=deadline)

    previous: dict[int, object] = {}
    try:
        for sig in signals:
            previous[sig] = signal_module.signal(sig, handler)
    except ValueError:  # not the main thread: leave handlers untouched
        for sig, old in previous.items():
            signal_module.signal(sig, old)
        previous = {}
    try:
        yield pipeline
    finally:
        for sig, old in previous.items():
            signal_module.signal(sig, old)
        if pipeline.draining:
            pipeline.drain(deadline)
