"""The Transcriptomics Atlas pipeline (Fig. 1), over the real local toolchain.

Four steps per SRA accession:

1. ``prefetch`` — download the ``.sra`` container from the repository;
2. ``fasterq-dump`` — convert it to FASTQ (paired archives split into
   ``_1``/``_2`` files, detected from the container magic as the real
   tool does);
3. STAR alignment with ``--quantMode GeneCounts`` — monitored by the
   early-stopping policy; paired runs go through the pairing façade;
4. DESeq2 count normalization — per-sample counts are collected and
   normalized jointly with median-of-ratios once the batch completes.

This class is the *local* (workstation/HPC) embodiment the paper's
conclusions mention; :mod:`repro.core.atlas` embeds the same step
structure in the cloud simulation.
"""

from __future__ import annotations

import enum
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.align.engine import ParallelStarAligner
from repro.align.star import StarAligner, StarRunResult
from repro.core.early_stopping import EarlyStoppingPolicy, EarlyStopMonitor
from repro.quant.deseq2 import estimate_size_factors, normalize_counts
from repro.quant.matrix import CountMatrix
from repro.reads.fastq import iter_fastq
from repro.reads.sra import SraRepository, fasterq_dump, prefetch
from repro.reads.trim import ReadTrimmer, TrimConfig, TrimStats


class RunStatus(enum.Enum):
    """Terminal status of one accession's pipeline run."""

    ACCEPTED = "accepted"
    REJECTED_EARLY = "rejected_early"  # aborted by the monitor
    REJECTED_FINAL = "rejected_final"  # completed but below the acceptance bar

    @property
    def produced_counts(self) -> bool:
        return self is RunStatus.ACCEPTED


@dataclass(frozen=True)
class StepTiming:
    """Wall-clock seconds per pipeline step."""

    prefetch: float
    fasterq_dump: float
    star: float

    @property
    def total(self) -> float:
        return self.prefetch + self.fasterq_dump + self.star


@dataclass
class PipelineResult:
    """Everything one accession's run produced."""

    accession: str
    status: RunStatus
    timing: StepTiming
    #: single-end StarRunResult or paired PairedRunResult — both expose
    #: ``final``, ``aborted``, ``gene_counts`` and ``mapped_fraction``
    star_result: StarRunResult
    fastq_bytes: int
    counts: dict[str, int] | None = None
    trim_stats: TrimStats | None = None
    paired: bool = False

    @property
    def mapped_fraction(self) -> float:
        return self.star_result.mapped_fraction


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-level options."""

    early_stopping: EarlyStoppingPolicy | None = field(
        default_factory=EarlyStoppingPolicy
    )
    #: atlas acceptance bar on the final mapping rate, applied whether or
    #: not early stopping is on (None disables filtering)
    acceptance_threshold: float | None = 0.30
    #: strandedness column of ReadsPerGene.out.tab used for the atlas
    counts_column: str = "unstranded"
    #: keep STAR output files on disk under the workspace
    write_outputs: bool = True
    #: optional QC trimming between fasterq-dump and STAR
    trim: "TrimConfig | None" = None
    #: alignment worker processes; >1 routes the STAR step through the
    #: shared-memory :class:`~repro.align.engine.ParallelStarAligner`
    #: (the index is published to shared memory once per pipeline and
    #: reused across accessions, as the paper's instances do)
    workers: int = 1
    #: reads per batch dispatched to an alignment worker
    align_batch_size: int = 64

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.align_batch_size < 1:
            raise ValueError("align_batch_size must be >= 1")


class TranscriptomicsAtlasPipeline:
    """Runs accessions end to end against a repository and an aligner."""

    def __init__(
        self,
        repository: SraRepository,
        aligner: StarAligner,
        workspace: Path | str,
        *,
        config: PipelineConfig | None = None,
    ) -> None:
        self.repository = repository
        self.aligner = aligner
        self.workspace = Path(workspace)
        self.workspace.mkdir(parents=True, exist_ok=True)
        self.config = config or PipelineConfig()
        self.results: list[PipelineResult] = []
        self._engine: ParallelStarAligner | None = None
        self._engine_lock = threading.Lock()

    # -- parallel engine lifecycle -------------------------------------------

    def _get_engine(self) -> ParallelStarAligner | None:
        """The shared alignment engine (None when ``config.workers == 1``).

        Created on first use and kept for the pipeline's lifetime so the
        shared-memory index publication and worker pool are paid once,
        not per accession.  Thread-safe for parallel ``run_batch``.
        """
        if self.config.workers <= 1:
            return None
        with self._engine_lock:
            if self._engine is None:
                self._engine = ParallelStarAligner(
                    self.aligner.index,
                    self.aligner.parameters,
                    workers=self.config.workers,
                    batch_size=self.config.align_batch_size,
                ).start()
            return self._engine

    def close(self) -> None:
        """Release the worker pool and shared-memory blocks (idempotent)."""
        with self._engine_lock:
            if self._engine is not None:
                self._engine.close()
                self._engine = None

    def __enter__(self) -> "TranscriptomicsAtlasPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single accession --------------------------------------------------

    def run_accession(self, accession: str) -> PipelineResult:
        """Execute all four steps for one accession."""
        result = self._execute_accession(accession)
        self.results.append(result)
        return result

    def _execute_accession(self, accession: str) -> PipelineResult:
        """All four steps, without touching shared pipeline state."""
        cfg = self.config
        work = self.workspace / accession
        work.mkdir(parents=True, exist_ok=True)

        t0 = time.monotonic()
        sra_path = prefetch(self.repository, accession, work)
        t1 = time.monotonic()
        paired = sra_path.read_bytes()[:4] == b"SRAP"
        if paired:
            from repro.reads.paired import fasterq_dump_paired

            fastq_path, fastq_path_2 = fasterq_dump_paired(sra_path, work)
        else:
            fastq_path = fasterq_dump(sra_path, work)
            fastq_path_2 = None
        t2 = time.monotonic()

        monitor = (
            EarlyStopMonitor(policy=cfg.early_stopping)
            if cfg.early_stopping is not None
            else None
        )
        hook = monitor.hook if monitor is not None else None
        engine = self._get_engine()
        trim_stats = None
        if paired:
            mate1 = list(iter_fastq(fastq_path))
            mate2 = list(iter_fastq(fastq_path_2))
            if engine is not None:
                star_result = engine.run_paired(mate1, mate2, monitor=hook)
            else:
                from repro.align.paired import PairedStarAligner

                star_result = PairedStarAligner(self.aligner).run(
                    mate1, mate2, monitor=hook
                )
        else:
            records = list(iter_fastq(fastq_path))
            if cfg.trim is not None:
                records, trim_stats = ReadTrimmer(cfg.trim).trim(records)
            aligner = engine if engine is not None else self.aligner
            star_result = aligner.run(
                records,
                monitor=hook,
                out_dir=(work / "star") if cfg.write_outputs else None,
            )
        t3 = time.monotonic()

        if star_result.aborted:
            status = RunStatus.REJECTED_EARLY
        elif (
            cfg.acceptance_threshold is not None
            and star_result.mapped_fraction < cfg.acceptance_threshold
        ):
            status = RunStatus.REJECTED_FINAL
        else:
            status = RunStatus.ACCEPTED

        counts = None
        if status.produced_counts and star_result.gene_counts is not None:
            counts = star_result.gene_counts.column_vector(cfg.counts_column)

        result = PipelineResult(
            accession=accession,
            status=status,
            timing=StepTiming(
                prefetch=t1 - t0, fasterq_dump=t2 - t1, star=t3 - t2
            ),
            star_result=star_result,
            fastq_bytes=fastq_path.stat().st_size
            + (fastq_path_2.stat().st_size if fastq_path_2 is not None else 0),
            counts=counts,
            trim_stats=trim_stats,
            paired=paired,
        )
        return result

    def run_batch(
        self, accessions: list[str], *, max_parallel: int = 1
    ) -> list[PipelineResult]:
        """Run several accessions (one instance's view).

        ``max_parallel > 1`` overlaps accessions with a thread pool: the
        prefetch/dump steps are I/O-shaped and the alignment step hands
        its CPU work to the engine's worker *processes*, so threads only
        coordinate.  Results (and ``self.results``) keep the submission
        order regardless of completion order, so downstream count
        matrices are reproducible.
        """
        if max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if max_parallel == 1 or len(accessions) <= 1:
            return [self.run_accession(a) for a in accessions]
        with ThreadPoolExecutor(max_workers=max_parallel) as pool:
            results = list(pool.map(self._execute_accession, accessions))
        self.results.extend(results)
        return results

    # -- step 4: joint normalization -----------------------------------------

    def build_count_matrix(self) -> CountMatrix:
        """Assemble accepted runs' GeneCounts into a gene × sample matrix."""
        columns = {
            r.accession: r.counts
            for r in self.results
            if r.status.produced_counts and r.counts is not None
        }
        if not columns:
            raise ValueError("no accepted runs with counts to normalize")
        return CountMatrix.from_columns(columns)

    def normalize(self) -> tuple[CountMatrix, np.ndarray, np.ndarray]:
        """DESeq2 step: returns (matrix, size_factors, normalized_counts)."""
        matrix = self.build_count_matrix().drop_all_zero_genes()
        factors = estimate_size_factors(matrix)
        return matrix, factors, normalize_counts(matrix, factors)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Run-status tally."""
        tally = {status.value: 0 for status in RunStatus}
        for r in self.results:
            tally[r.status.value] += 1
        return tally
