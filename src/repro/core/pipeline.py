"""The Transcriptomics Atlas pipeline (Fig. 1), over the real local toolchain.

Four steps per SRA accession:

1. ``prefetch`` — download the ``.sra`` container from the repository;
2. ``fasterq-dump`` — convert it to FASTQ (paired archives split into
   ``_1``/``_2`` files, detected from the container magic as the real
   tool does);
3. STAR alignment with ``--quantMode GeneCounts`` — monitored by the
   early-stopping policy; executed through whichever
   :class:`~repro.align.backend.AlignerBackend` fits the accession;
4. DESeq2 count normalization — per-sample counts are collected and
   normalized jointly with median-of-ratios once the batch completes.

Every step runs under the :mod:`repro.core.resilience` layer: transient
failures are retried with backoff, permanent ones produce a
:class:`~repro.core.resilience.FailureRecord` on a ``FAILED`` result
instead of aborting the batch — one result per accession, always, in
submission order.

This class is the *local* (workstation/HPC) embodiment the paper's
conclusions mention; :mod:`repro.core.atlas` embeds the same step
structure in the cloud simulation.
"""

from __future__ import annotations

import enum
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.align.backend import ReadBatch, resolve_backend
from repro.align.engine import ParallelStarAligner
from repro.align.outcome import AlignmentOutcome
from repro.align.star import StarAligner
from repro.core.early_stopping import EarlyStoppingPolicy, EarlyStopMonitor
from repro.core.resilience import (
    FailureRecord,
    FaultPlan,
    RetryLedger,
    RetryPolicy,
    StepFailed,
    run_with_retry,
)
from repro.quant.deseq2 import estimate_size_factors, normalize_counts
from repro.quant.matrix import CountMatrix
from repro.reads.fastq import iter_fastq
from repro.reads.sra import SraRepository, fasterq_dump, prefetch
from repro.reads.trim import ReadTrimmer, TrimConfig, TrimStats
from repro.util.rng import derive_rng


class RunStatus(enum.Enum):
    """Terminal status of one accession's pipeline run."""

    ACCEPTED = "accepted"
    REJECTED_EARLY = "rejected_early"  # aborted by the monitor
    REJECTED_FINAL = "rejected_final"  # completed but below the acceptance bar
    FAILED = "failed"  # a step exhausted its retry policy

    @property
    def produced_counts(self) -> bool:
        return self is RunStatus.ACCEPTED


@dataclass(frozen=True)
class StepTiming:
    """Wall-clock seconds per pipeline step (retries included)."""

    prefetch: float
    fasterq_dump: float
    star: float

    @property
    def total(self) -> float:
        return self.prefetch + self.fasterq_dump + self.star


@dataclass
class PipelineResult:
    """Everything one accession's run produced."""

    accession: str
    status: RunStatus
    timing: StepTiming
    #: the run-level result (None only when ``status is FAILED``)
    star_result: AlignmentOutcome | None
    fastq_bytes: int
    counts: dict[str, int] | None = None
    trim_stats: TrimStats | None = None
    paired: bool = False
    #: populated when ``status is FAILED``: which step died, and how
    failure: FailureRecord | None = None
    #: retries spent across this accession's steps
    retries: int = 0

    @property
    def mapped_fraction(self) -> float:
        if self.star_result is None:
            return 0.0
        return self.star_result.mapped_fraction


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-level options."""

    early_stopping: EarlyStoppingPolicy | None = field(
        default_factory=EarlyStoppingPolicy
    )
    #: atlas acceptance bar on the final mapping rate, applied whether or
    #: not early stopping is on (None disables filtering)
    acceptance_threshold: float | None = 0.30
    #: strandedness column of ReadsPerGene.out.tab used for the atlas
    counts_column: str = "unstranded"
    #: keep STAR output files on disk under the workspace
    write_outputs: bool = True
    #: optional QC trimming between fasterq-dump and STAR
    trim: "TrimConfig | None" = None
    #: alignment worker processes; >1 routes the STAR step through the
    #: shared-memory :class:`~repro.align.engine.ParallelStarAligner`
    #: (the index is published to shared memory once per pipeline and
    #: reused across accessions, as the paper's instances do)
    workers: int = 1
    #: reads per batch dispatched to an alignment worker
    align_batch_size: int = 64
    #: seconds of no-progress after a worker loss before the engine
    #: declares its pool wedged and degrades to serial (then rebuilds it)
    engine_stall_timeout: float = 5.0
    #: retry/backoff/deadline policy applied to every step
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(base_delay=0.05, max_delay=2.0)
    )
    #: scripted fault injection (chaos testing); None = no faults
    fault_plan: FaultPlan | None = None
    #: seed for the per-accession backoff-jitter streams
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.align_batch_size < 1:
            raise ValueError("align_batch_size must be >= 1")


class TranscriptomicsAtlasPipeline:
    """Runs accessions end to end against a repository and an aligner."""

    def __init__(
        self,
        repository: SraRepository,
        aligner: StarAligner,
        workspace: Path | str,
        *,
        config: PipelineConfig | None = None,
    ) -> None:
        self.repository = repository
        self.aligner = aligner
        self.workspace = Path(workspace)
        self.workspace.mkdir(parents=True, exist_ok=True)
        self.config = config or PipelineConfig()
        self.results: list[PipelineResult] = []
        self.retry_ledger = RetryLedger()
        self._engine: ParallelStarAligner | None = None
        self._engine_lock = threading.Lock()
        self._results_lock = threading.Lock()

    # -- parallel engine lifecycle -------------------------------------------

    def _get_engine(self) -> ParallelStarAligner | None:
        """The shared alignment engine (None when ``config.workers == 1``).

        Created on first use and kept for the pipeline's lifetime so the
        shared-memory index publication and worker pool are paid once,
        not per accession.  Thread-safe for parallel ``run_batch``.
        """
        if self.config.workers <= 1:
            return None
        with self._engine_lock:
            if self._engine is None:
                self._engine = ParallelStarAligner(
                    self.aligner.index,
                    self.aligner.parameters,
                    workers=self.config.workers,
                    batch_size=self.config.align_batch_size,
                    stall_timeout=self.config.engine_stall_timeout,
                ).start()
            return self._engine

    def close(self) -> None:
        """Release the worker pool and shared-memory blocks (idempotent)."""
        with self._engine_lock:
            if self._engine is not None:
                self._engine.close()
                self._engine = None

    def __enter__(self) -> "TranscriptomicsAtlasPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single accession --------------------------------------------------

    def run_accession(self, accession: str) -> PipelineResult:
        """Execute all four steps for one accession."""
        result = self._execute_accession(accession)
        with self._results_lock:
            self.results.append(result)
        return result

    def _execute_accession(self, accession: str) -> PipelineResult:
        """All four steps, without touching shared pipeline state.

        Never raises: a step that exhausts its retry policy (or any
        unexpected internal error) is converted to a ``FAILED`` result
        carrying a :class:`FailureRecord`, so batch runs keep every
        other accession's work.
        """
        cfg = self.config
        work = self.workspace / accession
        work.mkdir(parents=True, exist_ok=True)
        rng = derive_rng(cfg.retry_seed, f"retry:{accession}")
        timings = {"prefetch": 0.0, "fasterq_dump": 0.0, "star": 0.0}
        retries = {"n": 0}
        state = {"paired": False, "fastq_bytes": 0}

        def on_retry(step: str, attempt: int, exc: BaseException, delay: float):
            retries["n"] += 1
            self.retry_ledger.record(step)

        def attempt(step: str, timing_key: str, fn):
            started = time.monotonic()
            try:
                return run_with_retry(
                    fn,
                    policy=cfg.retry,
                    step=step,
                    key=accession,
                    rng=rng,
                    on_retry=on_retry,
                )
            finally:
                timings[timing_key] += time.monotonic() - started

        try:
            return self._run_steps(accession, work, attempt, state, timings, retries)
        except StepFailed as exc:
            failure = exc.record
        except Exception as exc:  # defensive: isolate unexpected errors too
            failure = FailureRecord(
                step="internal",
                key=accession,
                attempts=1,
                elapsed_seconds=0.0,
                error=repr(exc),
                error_chain=[repr(exc)],
            )
        return PipelineResult(
            accession=accession,
            status=RunStatus.FAILED,
            timing=StepTiming(**timings),
            star_result=None,
            fastq_bytes=state["fastq_bytes"],
            paired=state["paired"],
            failure=failure,
            retries=retries["n"],
        )

    def _run_steps(
        self,
        accession: str,
        work: Path,
        attempt,
        state: dict,
        timings: dict,
        retries: dict,
    ) -> PipelineResult:
        """The happy path: prefetch → dump → align → classify."""
        cfg = self.config

        sra_path = attempt(
            "prefetch",
            "prefetch",
            lambda: prefetch(
                self.repository, accession, work, fault_plan=cfg.fault_plan
            ),
        )
        paired = sra_path.read_bytes()[:4] == b"SRAP"
        state["paired"] = paired

        if paired:
            from repro.reads.paired import fasterq_dump_paired

            fastq_path, fastq_path_2 = attempt(
                "fasterq_dump",
                "fasterq_dump",
                lambda: fasterq_dump_paired(
                    sra_path, work, fault_plan=cfg.fault_plan
                ),
            )
        else:
            fastq_path = attempt(
                "fasterq_dump",
                "fasterq_dump",
                lambda: fasterq_dump(sra_path, work, fault_plan=cfg.fault_plan),
            )
            fastq_path_2 = None
        fastq_bytes = fastq_path.stat().st_size + (
            fastq_path_2.stat().st_size if fastq_path_2 is not None else 0
        )
        state["fastq_bytes"] = fastq_bytes

        trim_stats = None
        if paired:
            reads = ReadBatch(
                records=list(iter_fastq(fastq_path)),
                mate2=list(iter_fastq(fastq_path_2)),
            )
        else:
            records = list(iter_fastq(fastq_path))
            if cfg.trim is not None:
                records, trim_stats = ReadTrimmer(cfg.trim).trim(records)
            reads = ReadBatch(records=records)

        engine = self._get_engine()
        if (
            engine is not None
            and cfg.fault_plan is not None
            and cfg.fault_plan.consume("engine_worker", accession) is not None
        ):
            # scripted chaos: SIGKILL one pool worker right before this
            # accession's alignment, exercising the engine's recovery path
            engine.kill_worker()
        backend = resolve_backend(cfg, self.aligner, engine, paired=paired)
        out_dir = (work / "star") if (cfg.write_outputs and not paired) else None

        def align_once() -> AlignmentOutcome:
            if cfg.fault_plan is not None:
                cfg.fault_plan.check("align", accession)
            # the monitor is stateful — build a fresh one per attempt so a
            # retried alignment sees the same cadence as an unfaulted run
            monitor = (
                EarlyStopMonitor(policy=cfg.early_stopping)
                if cfg.early_stopping is not None
                else None
            )
            hook = monitor.hook if monitor is not None else None
            return backend.align(reads, monitor=hook, out_dir=out_dir)

        star_result = attempt("align", "star", align_once)

        if star_result.aborted:
            status = RunStatus.REJECTED_EARLY
        elif (
            cfg.acceptance_threshold is not None
            and star_result.mapped_fraction < cfg.acceptance_threshold
        ):
            status = RunStatus.REJECTED_FINAL
        else:
            status = RunStatus.ACCEPTED

        counts = None
        if status.produced_counts and star_result.gene_counts is not None:
            counts = star_result.gene_counts.column_vector(cfg.counts_column)

        return PipelineResult(
            accession=accession,
            status=status,
            timing=StepTiming(**timings),
            star_result=star_result,
            fastq_bytes=fastq_bytes,
            counts=counts,
            trim_stats=trim_stats,
            paired=paired,
            retries=retries["n"],
        )

    def run_batch(
        self, accessions: list[str], *, max_parallel: int = 1
    ) -> list[PipelineResult]:
        """Run several accessions (one instance's view).

        ``max_parallel > 1`` overlaps accessions with a thread pool: the
        prefetch/dump steps are I/O-shaped and the alignment step hands
        its CPU work to the engine's worker *processes*, so threads only
        coordinate.  Each accession's result is collected from its own
        future — a failure (now a ``FAILED`` result, never an exception)
        cannot drop completed work, and both the returned list and
        ``self.results`` keep submission order regardless of completion
        order, so downstream count matrices are reproducible.
        """
        if max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if max_parallel == 1 or len(accessions) <= 1:
            return [self.run_accession(a) for a in accessions]
        with ThreadPoolExecutor(max_workers=max_parallel) as pool:
            futures = [
                pool.submit(self._execute_accession, a) for a in accessions
            ]
            results = []
            for accession, future in zip(accessions, futures):
                try:
                    results.append(future.result())
                except Exception as exc:  # pragma: no cover - defensive
                    results.append(self._internal_failure(accession, exc))
        with self._results_lock:
            self.results.extend(results)
        return results

    @staticmethod
    def _internal_failure(accession: str, exc: BaseException) -> PipelineResult:
        return PipelineResult(
            accession=accession,
            status=RunStatus.FAILED,
            timing=StepTiming(prefetch=0.0, fasterq_dump=0.0, star=0.0),
            star_result=None,
            fastq_bytes=0,
            failure=FailureRecord(
                step="internal",
                key=accession,
                attempts=1,
                elapsed_seconds=0.0,
                error=repr(exc),
                error_chain=[repr(exc)],
            ),
        )

    # -- step 4: joint normalization -----------------------------------------

    def build_count_matrix(self) -> CountMatrix:
        """Assemble accepted runs' GeneCounts into a gene × sample matrix."""
        columns = {
            r.accession: r.counts
            for r in self.results
            if r.status.produced_counts and r.counts is not None
        }
        if not columns:
            raise ValueError("no accepted runs with counts to normalize")
        return CountMatrix.from_columns(columns)

    def normalize(self) -> tuple[CountMatrix, np.ndarray, np.ndarray]:
        """DESeq2 step: returns (matrix, size_factors, normalized_counts)."""
        matrix = self.build_count_matrix().drop_all_zero_genes()
        factors = estimate_size_factors(matrix)
        return matrix, factors, normalize_counts(matrix, factors)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Run-status tally, plus the total retry count across all steps."""
        tally = {status.value: 0 for status in RunStatus}
        for r in self.results:
            tally[r.status.value] += 1
        tally["retries"] = self.retry_ledger.total
        return tally

    def retries_by_step(self) -> dict[str, int]:
        """Retry counts bucketed by step name (prefetch/fasterq_dump/align)."""
        return self.retry_ledger.by_step()
