"""Serverless (FaaS) embodiment of the atlas campaign — the third axis.

:func:`~repro.core.atlas.run_atlas` models the paper's Fig. 2
architecture: an AutoScalingGroup of big-memory instances draining an
SQS queue.  This module models the *serverless* alternative the paper's
conclusions gesture at — scatter-gather over short-lived function
invocations — so the two can be compared on the same accession set:

* a driver splits each run's reads into shards sized to a target
  duration (amortizing cold starts against the 15-minute execution cap),
  fans them out as function invocations, and gathers the partial counts;
* the :class:`~repro.cloud.faas.FaasService` is authoritative for
  admission and settlement: cold vs warm starts from its keep-alive
  container pool, per-GB-second + per-request billing, and the execution
  cap.  Shards whose *actual* duration (run-to-run noise included)
  overruns the cap are killed at the cap, billed in full, and
  re-scattered in halves — the ``cap_reshards`` axis;
* early stopping scatters the check fraction first and gathers before
  committing the rest, so an aborted run bills only the scanned prefix.

Modeling assumptions, stated once: reads are already staged in S3 (both
architectures share that ingestion cost, so it cancels out of the
comparison); the STAR index is baked into the function image as a
memory-mapped layer whose attach time is part of the cold start; and
function CPU scales with configured memory at the usual ~1 vCPU per
1769 MB.

``hybrid`` routes each job by size — small runs to functions, large
runs to the instance fleet — capturing the regime where per-request
overhead and the execution cap make pure FaaS lose to instances on big
single-cell archives while still winning on small bulk runs.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.faas import (
    ExecutionCapExceeded,
    FaasBill,
    FaasLimits,
    FaasService,
)
from repro.core.atlas import (
    AtlasConfig,
    AtlasJob,
    AtlasRunReport,
    JobRecord,
    run_atlas,
)
from repro.core.early_stopping import Decision
from repro.core.pipeline import RunStatus
from repro.genome.ensembl import release_spec
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_positive

__all__ = [
    "ARCHITECTURES",
    "ArchitectureComparison",
    "ArchitecturePoint",
    "FaasAtlasConfig",
    "FaasAtlasReport",
    "compare_architectures",
    "run_faas_atlas",
]

#: the architecture axis the CLI exposes
ARCHITECTURES = ("asg", "faas", "hybrid")

#: AWS Lambda allocates CPU proportionally to memory at this rate
_MEMORY_MB_PER_VCPU = 1769.0


@dataclass(frozen=True)
class FaasAtlasConfig:
    """The serverless side of the architecture comparison."""

    #: function memory (drives both the GB-second rate and the vCPU share)
    memory_mb: int = 10240
    #: cold start: runtime init + attaching the baked-in index layer
    cold_start_seconds: float = 30.0
    limits: FaasLimits = field(default_factory=FaasLimits)
    #: driver-side target duration per shard — comfortably under the cap,
    #: but close enough that run-to-run noise pushes the tail over it
    shard_seconds_target: float = 720.0
    #: fixed per-invocation overhead (payload decode, S3 ranged GET)
    invoke_overhead_seconds: float = 2.0
    #: request payload: an S3 span reference, not the reads themselves
    request_bytes: int = 1024
    #: response payload per shard (the partial count vector)
    response_bytes: int = 512 * 1024
    #: per-shard lognormal duration noise on top of the job's own draw
    shard_noise_sigma: float = 0.10
    function_name: str = "star-align"

    def __post_init__(self) -> None:
        check_positive("memory_mb", self.memory_mb)
        check_positive("shard_seconds_target", self.shard_seconds_target)
        if self.shard_seconds_target > self.limits.max_execution_seconds:
            raise ValueError(
                "shard_seconds_target must not exceed the execution cap"
            )

    @property
    def vcpus(self) -> int:
        return max(1, int(self.memory_mb // _MEMORY_MB_PER_VCPU))


@dataclass
class FaasAtlasReport:
    """Campaign-level results of the serverless embodiment."""

    jobs: list[JobRecord]
    makespan_seconds: float
    bill: FaasBill
    invocations: int
    cold_starts: int
    warm_starts: int
    cold_start_share: float
    cap_reshards: int
    peak_concurrency: int
    #: billed function compute seconds across the campaign
    function_seconds: float

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_terminated(self) -> int:
        return sum(1 for j in self.jobs if j.status is RunStatus.REJECTED_EARLY)

    @property
    def n_failed(self) -> int:
        return sum(1 for j in self.jobs if j.status is RunStatus.FAILED)

    @property
    def total_usd(self) -> float:
        return self.bill.total_usd

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.n_jobs / (self.makespan_seconds / 3600.0)


def _resolve_status(
    job: AtlasJob, config: AtlasConfig
) -> tuple[float | None, RunStatus]:
    """(stop_fraction, status) from the trajectory + policy alone.

    Identical decision logic to
    :func:`~repro.core.atlas.simulate_star_step` — statuses depend only
    on the mapping-rate trajectory, so the same accession terminates (or
    is rejected) under every architecture.
    """
    stop_fraction: float | None = None
    status = RunStatus.ACCEPTED
    if config.early_stopping is not None:
        n = config.n_progress_snapshots
        for i in range(1, n + 1):
            f = i / n
            rate = job.trajectory.rate_at(f)
            if config.early_stopping.decide_rate(rate, f) is Decision.ABORT:
                stop_fraction = f
                status = RunStatus.REJECTED_EARLY
                break
    if (
        stop_fraction is None
        and config.acceptance_threshold is not None
        and job.trajectory.rate_at(1.0) < config.acceptance_threshold
    ):
        status = RunStatus.REJECTED_FINAL
    return stop_fraction, status


def run_faas_atlas(
    jobs: list[AtlasJob],
    config: AtlasConfig,
    faas: FaasAtlasConfig | None = None,
) -> FaasAtlasReport:
    """Run the accession set through the scatter-gather FaaS architecture.

    Deterministic given ``config.seed``.  The scheduler is a simple
    list-scheduling simulation: up to ``limits.max_concurrency`` shards
    run at once, each shard occupying a concurrency slot for its cold
    start plus its (cap-clamped) duration; completions are settled
    against the service in time order, so the warm-pool and billing
    accounting see the same schedule the makespan is computed from.
    """
    if not jobs:
        raise ValueError("no jobs to run")
    faas = faas or FaasAtlasConfig()
    service = FaasService(limits=faas.limits)
    fn = service.create_function(
        faas.function_name,
        memory_mb=faas.memory_mb,
        cold_start_seconds=faas.cold_start_seconds,
    )
    rng = ensure_rng(config.seed)
    job_rng_root = derive_rng(rng, "jobs")
    spec = release_spec(config.release)
    model = config.star_model
    cap = faas.limits.max_execution_seconds
    # driver-side expectation (no noise): what shard sizing is based on
    expected_throughput = model.throughput(spec, faas.vcpus)

    # one concurrency slot per allowed in-flight invocation; each entry
    # is the time the slot frees up
    slots = [0.0] * faas.limits.max_concurrency
    heapq.heapify(slots)

    # (job_index, lo_read, n_reads) work items; splits re-enter at the
    # front so a cap-overrun job finishes before new jobs fan out
    pending: deque[tuple[int, int, int]] = deque()
    job_state: list[dict] = []
    for idx, job in enumerate(jobs):
        jrng = derive_rng(job_rng_root, job.accession)
        job_noise = (
            float(
                jrng.lognormal(
                    mean=-0.5 * model.noise_sigma**2, sigma=model.noise_sigma
                )
            )
            if model.noise_sigma > 0
            else 1.0
        )
        stop_fraction, status = _resolve_status(job, config)
        n_reads = max(1, job.n_reads)
        bytes_per_read = max(1.0, job.fastq_bytes / n_reads)
        seconds_per_read = bytes_per_read / expected_throughput
        shard_reads = max(
            1, int(faas.shard_seconds_target / seconds_per_read)
        )
        reads_to_scan = (
            n_reads
            if stop_fraction is None
            else max(1, math.ceil(stop_fraction * n_reads))
        )
        n_shards_full = math.ceil(n_reads / shard_reads)
        job_state.append(
            {
                "noise": job_noise,
                "rng": jrng,
                "status": status,
                "stop_fraction": stop_fraction,
                "seconds_per_read": seconds_per_read,
                "started_at": None,
                "finish": 0.0,
                "billed": 0.0,
                "failure": "",
                "full_seconds": (
                    n_reads * seconds_per_read * job_noise
                    + n_shards_full * faas.invoke_overhead_seconds
                ),
            }
        )
        for lo in range(0, reads_to_scan, shard_reads):
            pending.append((idx, lo, min(shard_reads, reads_to_scan - lo)))

    # deferred completions: settled against the service once the clock
    # (the next shard's start time) has passed their end time, so the
    # warm pool never sees a container returned "from the future"
    active: list[tuple[float, int, object, float, int, int, int]] = []
    cap_reshards = 0
    peak_concurrency = 0
    tiebreak = 0

    def settle(inv, duration: float, idx: int, lo: int, n: int, t_end: float):
        nonlocal cap_reshards
        state = job_state[idx]
        try:
            fn.complete(inv, duration, faas.response_bytes, now=t_end)
        except ExecutionCapExceeded:
            cap_reshards += 1
            if n <= 1:
                state["status"] = RunStatus.FAILED
                state["failure"] = (
                    "ExecutionCapExceeded: a single-read shard exceeds "
                    "the execution cap"
                )
            else:
                half = n // 2
                pending.appendleft((idx, lo + half, n - half))
                pending.appendleft((idx, lo, half))
        state["billed"] += min(duration, cap)
        state["finish"] = max(state["finish"], t_end)

    def settle_due(limit: float) -> None:
        while active and active[0][0] <= limit:
            t_end, _, inv, duration, idx, lo, n = heapq.heappop(active)
            settle(inv, duration, idx, lo, n, t_end)

    while pending or active:
        if not pending:
            settle_due(math.inf)
            continue
        idx, lo, n = pending.popleft()
        state = job_state[idx]
        if state["status"] is RunStatus.FAILED:
            continue  # a sibling shard already failed the job
        t0 = heapq.heappop(slots)
        settle_due(t0)
        invocation = fn.invoke(faas.request_bytes, now=t0)
        shard_noise = (
            float(
                state["rng"].lognormal(
                    mean=-0.5 * faas.shard_noise_sigma**2,
                    sigma=faas.shard_noise_sigma,
                )
            )
            if faas.shard_noise_sigma > 0
            else 1.0
        )
        duration = (
            faas.invoke_overhead_seconds
            + n * state["seconds_per_read"] * state["noise"] * shard_noise
        )
        t_end = t0 + invocation.cold_start_seconds + min(duration, cap)
        if state["started_at"] is None:
            state["started_at"] = t0
        tiebreak += 1
        heapq.heappush(
            active, (t_end, tiebreak, invocation, duration, idx, lo, n)
        )
        heapq.heappush(slots, t_end)
        peak_concurrency = max(peak_concurrency, len(active))

    records: list[JobRecord] = []
    makespan = 0.0
    for job, state in zip(jobs, job_state):
        finished_at = state["finish"] + config.normalize_seconds
        makespan = max(makespan, finished_at)
        records.append(
            JobRecord(
                accession=job.accession,
                status=state["status"],
                library=job.library,
                started_at=float(state["started_at"] or 0.0),
                finished_at=finished_at,
                star_seconds=state["billed"],
                star_seconds_if_full=state["full_seconds"],
                stop_fraction=state["stop_fraction"],
                instance_id=f"faas:{fn.name}",
                failure=state["failure"],
            )
        )

    return FaasAtlasReport(
        jobs=records,
        makespan_seconds=makespan,
        bill=service.bill(),
        invocations=fn.invocations,
        cold_starts=fn.cold_starts,
        warm_starts=fn.warm_starts,
        cold_start_share=fn.cold_start_share,
        cap_reshards=cap_reshards,
        peak_concurrency=peak_concurrency,
        function_seconds=fn.billed_seconds,
    )


# --------------------------------------------------------------------------
# the architecture comparison
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ArchitecturePoint:
    """One architecture's campaign summary over the shared accession set."""

    architecture: str
    n_jobs: int
    cost_usd: float
    makespan_seconds: float
    cold_start_share: float
    cap_reshards: int
    n_faas_jobs: int
    n_asg_jobs: int
    n_terminated: int
    n_failed: int

    @property
    def cost_per_accession_usd(self) -> float:
        if self.n_jobs == 0:
            return 0.0
        return self.cost_usd / self.n_jobs

    @property
    def makespan_hours(self) -> float:
        return self.makespan_seconds / 3600.0


@dataclass
class ArchitectureComparison:
    """Cost/makespan across architectures for one accession set."""

    points: list[ArchitecturePoint]
    #: hybrid routing bound: jobs with at most this many reads go to FaaS
    hybrid_read_threshold: int

    def point(self, architecture: str) -> ArchitecturePoint:
        for p in self.points:
            if p.architecture == architecture:
                return p
        raise KeyError(architecture)

    def to_table(self) -> str:
        from repro.util.tables import Table

        table = Table(
            [
                "architecture",
                "jobs (faas/asg)",
                "cost ($)",
                "$/accession",
                "makespan (h)",
                "cold-start share",
                "cap re-shards",
                "terminated",
                "failed",
            ],
            title="Architecture comparison — same accession set",
        )
        for p in self.points:
            table.add_row(
                [
                    p.architecture,
                    f"{p.n_jobs} ({p.n_faas_jobs}/{p.n_asg_jobs})",
                    f"{p.cost_usd:.2f}",
                    f"{p.cost_per_accession_usd:.4f}",
                    f"{p.makespan_hours:.2f}",
                    f"{p.cold_start_share:.3f}",
                    p.cap_reshards,
                    p.n_terminated,
                    p.n_failed,
                ]
            )
        return table.render()


def _asg_point(report: AtlasRunReport) -> dict:
    return {
        "cost_usd": report.cost.total_usd,
        "makespan_seconds": report.makespan_seconds,
        "n_terminated": report.n_terminated,
        "n_failed": report.n_failed,
    }


def compare_architectures(
    jobs: list[AtlasJob],
    config: AtlasConfig,
    *,
    architectures: tuple[str, ...] = ARCHITECTURES,
    faas: FaasAtlasConfig | None = None,
    hybrid_read_threshold: int | None = None,
) -> ArchitectureComparison:
    """Run the same accession set under each requested architecture.

    ``hybrid_read_threshold`` defaults to the corpus median read count:
    the half of the corpus made of small runs goes to functions, the
    big half to the instance fleet.
    """
    unknown = set(architectures) - set(ARCHITECTURES)
    if unknown:
        raise ValueError(
            f"unknown architectures {sorted(unknown)}; "
            f"choose from {ARCHITECTURES}"
        )
    if not jobs:
        raise ValueError("no jobs to run")
    faas = faas or FaasAtlasConfig()
    if hybrid_read_threshold is None:
        hybrid_read_threshold = int(np.median([j.n_reads for j in jobs]))

    points: list[ArchitecturePoint] = []
    for arch in architectures:
        if arch == "asg":
            report = run_atlas(jobs, config)
            points.append(
                ArchitecturePoint(
                    architecture="asg",
                    n_jobs=len(jobs),
                    n_faas_jobs=0,
                    n_asg_jobs=len(jobs),
                    cold_start_share=0.0,
                    cap_reshards=0,
                    **_asg_point(report),
                )
            )
        elif arch == "faas":
            freport = run_faas_atlas(jobs, config, faas)
            points.append(
                ArchitecturePoint(
                    architecture="faas",
                    n_jobs=len(jobs),
                    cost_usd=freport.total_usd,
                    makespan_seconds=freport.makespan_seconds,
                    cold_start_share=freport.cold_start_share,
                    cap_reshards=freport.cap_reshards,
                    n_faas_jobs=len(jobs),
                    n_asg_jobs=0,
                    n_terminated=freport.n_terminated,
                    n_failed=freport.n_failed,
                )
            )
        else:  # hybrid
            small = [j for j in jobs if j.n_reads <= hybrid_read_threshold]
            large = [j for j in jobs if j.n_reads > hybrid_read_threshold]
            cost = 0.0
            makespan = 0.0
            cold_share = 0.0
            reshards = 0
            terminated = failed = 0
            if small:
                freport = run_faas_atlas(small, config, faas)
                cost += freport.total_usd
                makespan = max(makespan, freport.makespan_seconds)
                cold_share = freport.cold_start_share
                reshards = freport.cap_reshards
                terminated += freport.n_terminated
                failed += freport.n_failed
            if large:
                report = run_atlas(large, config)
                cost += report.cost.total_usd
                makespan = max(makespan, report.makespan_seconds)
                terminated += report.n_terminated
                failed += report.n_failed
            points.append(
                ArchitecturePoint(
                    architecture="hybrid",
                    n_jobs=len(jobs),
                    cost_usd=cost,
                    makespan_seconds=makespan,
                    cold_start_share=cold_share,
                    cap_reshards=reshards,
                    n_faas_jobs=len(small),
                    n_asg_jobs=len(large),
                    n_terminated=terminated,
                    n_failed=failed,
                )
            )
    return ArchitectureComparison(
        points=points, hybrid_read_threshold=hybrid_read_threshold
    )
