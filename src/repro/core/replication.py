"""Distributed durability: S3-replicated journal, leases, shard checkpoints.

The journal (:mod:`repro.core.journal`) makes a batch survive *process*
death, but it lives on the instance's own disk — lose the instance and
the journal goes with it.  The paper's HTC setting runs fleets of spot
instances where the unit of failure is the instance, so this module
lifts durability one level up, onto the simulated S3 service
(:mod:`repro.cloud.s3`):

* :class:`SegmentReplicator` / :class:`ReplicatedJournal` — every
  fsync'd journal line is mirrored to S3 *before the append returns*
  (fsync-ordered).  Lines accumulate in a mutable ``tail`` object and
  are periodically sealed into immutable, content-addressed segment
  objects (``seg/NNNNNN-<sha256[:16]>``) tracked by a ``manifest``;
  critical records (terminals, shard checkpoints) seal eagerly so the
  cheap-to-list segment set always covers the important history.

* :func:`reconstruct_journal` — a *different* instance rebuilds the
  byte-exact journal from segments + tail and resumes the batch.
  Segment hashes are verified against their keys on the way down
  (:class:`ReplicaCorrupt` on mismatch).

* :class:`BatchLease` — adoption guard.  A lease object in S3 carries a
  monotonically increasing **fencing token**; creation uses a
  conditional put (``if_none_match="*"``) so two would-be adopters
  cannot both win, and every publish re-checks the token so a stale
  holder that wakes up after its lease expired gets :class:`FencedOut`
  instead of clobbering the adopter's results.  Tokens never reset:
  release marks the lease expired but keeps the counter.

* :class:`ShardCheckpointer` + the ``align.shard`` record — partial-
  batch recovery inside the align step.  Completed read shards are
  journaled with their serialized outcomes, keyed by accession + shard
  bounds + config fingerprint; resume feeds only unfinished shards to
  the engine pool and merges checkpointed outcomes byte-identically, so
  rework after instance loss is bounded by one in-flight shard per
  worker rather than a whole accession.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.align.counts import GeneCountsPartial
from repro.align.paired import PairedOutcome, PairStatus
from repro.align.star import AlignmentStatus, ReadAlignment
from repro.cloud.s3 import PreconditionFailed, S3Bucket
from repro.core.journal import RunJournal
from repro.genome.annotation import Strand
from repro.genome.model import SequenceRegion

__all__ = [
    "BatchLease",
    "FencedOut",
    "LeaseHeld",
    "ReplicaCorrupt",
    "ReplicatedJournal",
    "SegmentReplicator",
    "ShardCheckpointer",
    "decode_shard_payload",
    "encode_shard_payload",
    "reconstruct_journal",
]

#: record types sealed into a segment immediately (see module docstring)
CRITICAL_RECORD_TYPES = frozenset({"completed", "failed", "align.shard"})

#: default number of buffered lines that forces a segment seal
DEFAULT_SEGMENT_RECORDS = 64


class ReplicaCorrupt(RuntimeError):
    """A replicated segment's content does not match its content address."""


class LeaseHeld(RuntimeError):
    """The batch lease is held by a live holder; adoption must wait."""

    def __init__(self, holder: str, token: int, expires_at: float) -> None:
        self.holder = holder
        self.token = token
        self.expires_at = expires_at
        super().__init__(
            f"lease held by {holder!r} (token {token}) until {expires_at:.3f}"
        )


class FencedOut(RuntimeError):
    """This holder's fencing token is stale: another instance adopted.

    Raised on publish/renew by a holder whose lease expired and was
    taken over — its late writes must not reach the results bucket.
    """

    def __init__(self, holder: str, token: int, current_token: int) -> None:
        self.holder = holder
        self.token = token
        self.current_token = current_token
        super().__init__(
            f"holder {holder!r} token {token} fenced out by token "
            f"{current_token}"
        )


# --------------------------------------------------------------------------
# segment replication
# --------------------------------------------------------------------------


def _segment_key(prefix: str, seq: int, data: bytes) -> str:
    digest = hashlib.sha256(data).hexdigest()[:16]
    return f"{prefix}/seg/{seq:06d}-{digest}"


class SegmentReplicator:
    """Mirrors journal lines to S3 with per-append durability.

    Every observed line lands in S3 before :meth:`observe` returns:
    either inside a freshly sealed immutable segment, or in the mutable
    ``tail`` object that is overwritten on each non-sealing append.
    Attaching to a prefix with an existing tail seals it first, so a
    resuming instance never overwrites lines it did not buffer itself.
    """

    def __init__(
        self,
        bucket: S3Bucket,
        prefix: str,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.bucket = bucket
        self.prefix = prefix.rstrip("/")
        self.segment_records = segment_records
        self.clock = clock
        self._buffer: list[str] = []
        self.segments_sealed = 0
        self.tail_writes = 0
        existing = bucket.keys(f"{self.prefix}/seg/")
        self._next_seq = len(existing)
        tail = bucket.head(self.tail_key)
        if tail is not None and tail.payload:
            # lines a previous holder buffered but never sealed; they are
            # part of the durable history, so promote them to a segment
            # before this holder starts overwriting the tail
            self._seal(str(tail.payload))

    @property
    def tail_key(self) -> str:
        return f"{self.prefix}/tail"

    @property
    def manifest_key(self) -> str:
        return f"{self.prefix}/manifest"

    def observe(self, line: str, record: dict[str, Any]) -> None:
        """Replicate one just-fsync'd journal line (called under the
        journal's append lock, so ordering matches the file)."""
        self._buffer.append(line)
        if (
            record.get("t") in CRITICAL_RECORD_TYPES
            or len(self._buffer) >= self.segment_records
        ):
            self._seal("".join(self._buffer))
            self._buffer.clear()
        else:
            self._put_tail("".join(self._buffer))

    def flush(self) -> None:
        """Seal any buffered lines (e.g. before releasing the lease)."""
        if self._buffer:
            self._seal("".join(self._buffer))
            self._buffer.clear()

    def _seal(self, text: str) -> None:
        data = text.encode("utf-8")
        now = self.clock()
        key = _segment_key(self.prefix, self._next_seq, data)
        self.bucket.put(key, len(data), now=now, payload=text)
        self._next_seq += 1
        self.segments_sealed += 1
        manifest = {
            "segments": self.bucket.keys(f"{self.prefix}/seg/"),
            "sealed": self._next_seq,
        }
        blob = json.dumps(manifest)
        self.bucket.put(self.manifest_key, len(blob), now=now, payload=manifest)
        self._put_tail("")

    def _put_tail(self, text: str) -> None:
        # the tail is overwritten on every non-sealing append; a torn
        # durable write just means the successor loses unsealed lines it
        # could not rely on anyway, so skip the atomic-rename cost
        self.bucket.put(
            self.tail_key,
            len(text.encode("utf-8")),
            now=self.clock(),
            payload=text,
            atomic=False,
        )
        self.tail_writes += 1

    def drop_prefix(self) -> int:
        """Delete every replica object under this prefix; returns the count.

        The garbage-collection path for a batch that reached terminal
        state: segments accumulate per batch prefix forever otherwise.
        The tail and manifest go too — a later :func:`reconstruct_journal`
        of the dropped prefix yields an empty journal, which is correct
        (there is nothing left to adopt).  Unsealed buffered lines are
        discarded, so only call this once the batch outcome is durable
        elsewhere (the local journal and the results store).
        """
        self._buffer.clear()
        dropped = 0
        for key in self.bucket.keys(f"{self.prefix}/seg/"):
            dropped += int(self.bucket.delete(key))
        dropped += int(self.bucket.delete(self.tail_key))
        dropped += int(self.bucket.delete(self.manifest_key))
        self._next_seq = 0
        return dropped


class ReplicatedJournal(RunJournal):
    """A :class:`RunJournal` whose appends are mirrored to S3.

    The local file stays the fast path (replay reads it directly); the
    S3 copy exists so a *different* instance can reconstruct it after
    this one dies.  Replication happens in :meth:`_after_append`, i.e.
    after the local fsync and before the append returns.
    """

    def __init__(
        self,
        path: Path | str,
        bucket: S3Bucket,
        prefix: str,
        *,
        fsync: bool = True,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        super().__init__(path, fsync=fsync)
        self.replicator = SegmentReplicator(
            bucket, prefix, segment_records=segment_records, clock=clock
        )

    def _after_append(self, line: str, record: dict[str, Any]) -> None:
        self.replicator.observe(line, record)

    def close(self) -> None:
        self.replicator.flush()
        super().close()

    def collect_garbage(self) -> int:
        """Drop this batch's S3 replica (segments, tail, manifest).

        Called by the pipeline once every accession in the batch has a
        terminal record: nothing is left for another instance to adopt,
        and the local journal file (which is *not* touched) remains the
        durable record of what happened.  Returns the number of replica
        objects deleted.
        """
        return self.replicator.drop_prefix()


def reconstruct_journal(
    bucket: S3Bucket, prefix: str, dest: Path | str
) -> RunJournal:
    """Rebuild a journal file from its S3 replica, on a fresh instance.

    Concatenates the manifest's segments (plus any sealed after the
    manifest's last write — the crash window between a segment put and
    its manifest update) and the tail, verifying each segment against
    its content address.  The result replays identically to the dead
    instance's local file.
    """
    prefix = prefix.rstrip("/")
    manifest_obj = bucket.head(f"{prefix}/manifest")
    listed = bucket.keys(f"{prefix}/seg/")
    if manifest_obj is not None and manifest_obj.payload:
        keys = list(manifest_obj.payload["segments"])
        keys.extend(k for k in listed if k not in set(keys))
    else:
        keys = listed
    parts: list[str] = []
    for key in keys:
        text = bucket.get(key).payload or ""
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        if not key.endswith(digest):
            raise ReplicaCorrupt(
                f"segment {key} content hashes to {digest}; replica is "
                "damaged"
            )
        parts.append(text)
    tail = bucket.head(f"{prefix}/tail")
    if tail is not None and tail.payload:
        parts.append(str(tail.payload))
    dest = Path(dest)
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text("".join(parts), encoding="utf-8")
    return RunJournal(dest)


# --------------------------------------------------------------------------
# lease + fencing
# --------------------------------------------------------------------------


@dataclass
class BatchLease:
    """A held (or once-held) lease on a batch's journal prefix.

    ``token`` is this holder's fencing token.  All mutations re-read the
    lease object and compare tokens first, so operations by a holder
    that lost the lease raise :class:`FencedOut` instead of going
    through.
    """

    bucket: S3Bucket
    key: str
    holder: str
    token: int
    expires_at: float

    # -- acquisition -------------------------------------------------------

    @classmethod
    def acquire(
        cls,
        bucket: S3Bucket,
        key: str,
        holder: str,
        *,
        now: float,
        ttl: float,
    ) -> "BatchLease":
        """Take the lease, by creation or by succession.

        Creation uses a conditional put so concurrent first-comers
        serialize on S3; succession (the previous lease expired or was
        released) bumps the fencing token.  A live foreign holder means
        :class:`LeaseHeld`.
        """
        payload = {
            "holder": holder,
            "token": 1,
            "acquired_at": now,
            "expires_at": now + ttl,
        }
        blob = json.dumps(payload)
        try:
            bucket.put(
                key, len(blob), now=now, payload=payload, if_none_match="*"
            )
            return cls(bucket, key, holder, 1, now + ttl)
        except PreconditionFailed:
            pass
        current = bucket.get(key).payload
        if current["expires_at"] > now and current["holder"] != holder:
            raise LeaseHeld(
                current["holder"], current["token"], current["expires_at"]
            )
        token = current["token"] + 1
        payload = {
            "holder": holder,
            "token": token,
            "acquired_at": now,
            "expires_at": now + ttl,
        }
        bucket.put(key, len(json.dumps(payload)), now=now, payload=payload)
        return cls(bucket, key, holder, token, now + ttl)

    # -- token checks ------------------------------------------------------

    def verify(self) -> None:
        """Raise :class:`FencedOut` unless this token is still current."""
        current = self.bucket.get(self.key).payload
        if current["token"] != self.token:
            raise FencedOut(self.holder, self.token, current["token"])

    def renew(self, *, now: float, ttl: float) -> None:
        """Extend the lease (heartbeat); fenced holders cannot renew."""
        self.verify()
        self.expires_at = now + ttl
        payload = {
            "holder": self.holder,
            "token": self.token,
            "acquired_at": now,
            "expires_at": self.expires_at,
        }
        self.bucket.put(
            self.key, len(json.dumps(payload)), now=now, payload=payload
        )

    def release(self, *, now: float) -> None:
        """Give the lease up cleanly.

        The object is overwritten as expired rather than deleted so the
        fencing token survives for the next holder — deleting would let
        tokens restart at 1 and un-fence a stale writer.
        """
        self.verify()
        payload = {
            "holder": self.holder,
            "token": self.token,
            "acquired_at": now,
            "expires_at": now,
        }
        self.bucket.put(
            self.key, len(json.dumps(payload)), now=now, payload=payload
        )

    def publish(
        self,
        results_bucket: S3Bucket,
        key: str,
        size_bytes: float,
        *,
        now: float,
        payload: Any = None,
    ) -> None:
        """Token-checked result publish: the write path fencing guards.

        A stale holder (its lease adopted by another instance) raises
        :class:`FencedOut` here and its result never lands.
        """
        self.verify()
        results_bucket.put(key, size_bytes, now=now, payload=payload)


# --------------------------------------------------------------------------
# shard payload codecs
# --------------------------------------------------------------------------


def _encode_outcome(o: ReadAlignment) -> list:
    return [
        o.read_id,
        o.status.value,
        o.strand.value if o.strand is not None else None,
        o.score,
        o.n_loci,
        o.mismatches,
        [[b.contig, b.start, b.end] for b in o.blocks],
        o.spliced,
    ]


def _decode_outcome(v: list) -> ReadAlignment:
    read_id, status, strand, score, n_loci, mismatches, blocks, spliced = v
    return ReadAlignment(
        read_id=read_id,
        status=AlignmentStatus(status),
        strand=Strand(strand) if strand is not None else None,
        score=score,
        n_loci=n_loci,
        mismatches=mismatches,
        blocks=tuple(SequenceRegion(c, s, e) for c, s, e in blocks),
        spliced=spliced,
    )


def _encode_partial(p: GeneCountsPartial | None) -> dict | None:
    if p is None:
        return None
    return {
        "nu": p.n_unmapped,
        "nm": p.n_multimapping,
        "nf": dict(p.n_no_feature),
        "na": dict(p.n_ambiguous),
        "gc": {g: dict(cols) for g, cols in p.gene_counts.items()},
    }


def _decode_partial(v: dict | None) -> GeneCountsPartial | None:
    if v is None:
        return None
    return GeneCountsPartial(
        n_unmapped=v["nu"],
        n_multimapping=v["nm"],
        n_no_feature=dict(v["nf"]),
        n_ambiguous=dict(v["na"]),
        gene_counts={g: dict(cols) for g, cols in v["gc"].items()},
    )


def _encode_pair(o: PairedOutcome) -> list:
    return [
        o.pair_id,
        o.status.value,
        _encode_outcome(o.mate1),
        _encode_outcome(o.mate2),
        o.template_length,
    ]


def _decode_pair(v: list) -> PairedOutcome:
    pair_id, status, mate1, mate2, template_length = v
    return PairedOutcome(
        pair_id=pair_id,
        status=PairStatus(status),
        mate1=_decode_outcome(mate1),
        mate2=_decode_outcome(mate2),
        template_length=template_length,
    )


def encode_shard_payload(
    outcomes: list,
    partial: GeneCountsPartial | None,
    seed_stats: dict,
) -> dict:
    """JSON-safe form of one worker batch result (the ``shard`` field of
    an ``align.shard`` record).

    Accepts both library layouts: single-end :class:`ReadAlignment`
    lists land under ``"o"``, paired :class:`PairedOutcome` lists under
    ``"po"`` — so a paired checkpoint can never be mistaken for a
    single-end one on replay.
    """
    stats = dict(seed_stats)
    # JSON stringifies int dict keys; keep them explicit so decode is exact
    stats["fallback_depths"] = {
        str(d): c for d, c in seed_stats["fallback_depths"].items()
    }
    payload: dict[str, Any] = {
        "gc": _encode_partial(partial),
        "ss": stats,
    }
    if outcomes and isinstance(outcomes[0], PairedOutcome):
        payload["po"] = [_encode_pair(o) for o in outcomes]
    else:
        payload["o"] = [_encode_outcome(o) for o in outcomes]
    return payload


def decode_shard_payload(
    payload: dict,
) -> tuple[list, GeneCountsPartial | None, dict]:
    """Inverse of :func:`encode_shard_payload`: yields the exact tuple the
    engine's worker entry point would have returned."""
    stats = dict(payload["ss"])
    stats["fallback_depths"] = {
        int(d): c for d, c in stats["fallback_depths"].items()
    }
    if "po" in payload:
        outcomes = [_decode_pair(v) for v in payload["po"]]
    else:
        outcomes = [_decode_outcome(v) for v in payload["o"]]
    return (
        outcomes,
        _decode_partial(payload["gc"]),
        stats,
    )


# --------------------------------------------------------------------------
# shard checkpointing
# --------------------------------------------------------------------------


class ShardCheckpointer:
    """The engine's window onto journal shard checkpoints for one accession.

    ``cached`` holds the ``align.shard`` records a resume replayed
    (``JournalReplay.align_shards[accession]``); :meth:`load` serves a
    shard from it only when the bounds match exactly *and* the config
    fingerprint agrees — anything else is a miss and the shard re-runs,
    which is always safe (checkpoints are an optimization, never a
    correctness dependency).
    """

    def __init__(
        self,
        journal: RunJournal,
        accession: str,
        fingerprint: str,
        cached: dict[tuple[int, int], dict[str, Any]] | None = None,
    ) -> None:
        self.journal = journal
        self.accession = accession
        self.fingerprint = fingerprint
        # kept by reference: the pipeline shares one dict across retry
        # attempts, so shards a failed attempt journaled are replayed by
        # the next attempt without re-reading the file
        self._cached = cached if cached is not None else {}
        #: shards served from the journal instead of re-aligned
        self.hits = 0
        #: shards checkpointed by this run
        self.recorded = 0
        #: observer invoked after each checkpoint append (fault injection
        #: and the kill-instance chaos's deterministic SIGKILL hook)
        self.on_record: Callable[[int, int], None] | None = None

    def load(
        self, start: int, end: int
    ) -> tuple[list[ReadAlignment], GeneCountsPartial | None, dict] | None:
        record = self._cached.get((start, end))
        if record is None or record.get("fp") != self.fingerprint:
            return None
        self.hits += 1
        return decode_shard_payload(record["shard"])

    def record(
        self,
        start: int,
        end: int,
        outcomes: list[ReadAlignment],
        partial: GeneCountsPartial | None,
        seed_stats: dict,
    ) -> None:
        if (start, end) in self._cached:
            return  # already durable; re-journaling it would only bloat
        payload = encode_shard_payload(outcomes, partial, seed_stats)
        self.journal.record_align_shard(
            self.accession, start, end, self.fingerprint, payload
        )
        self._cached[(start, end)] = {"fp": self.fingerprint, "shard": payload}
        self.recorded += 1
        if self.on_record is not None:
            self.on_record(start, end)
