"""Right-sizing advisor (§III-A consequence).

"Using a much smaller index allows us to use smaller and cheaper
instances, reduces the initial overhead associated with downloading and
loading index to shared memory."  This module turns an Ensembl release
choice into an instance recommendation and quantifies both effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.align.index import GenomeIndex
from repro.cloud.ec2 import InstanceType, cheapest_fitting, instance_type
from repro.genome.ensembl import EnsemblRelease, ReleaseSpec, release_spec
from repro.perf.index_model import IndexModel
from repro.perf.star_model import StarPerfModel
from repro.perf.transfer import TransferModel
from repro.util.units import Bytes, Duration


@dataclass(frozen=True)
class RightSizingChoice:
    """Recommendation for one release."""

    release: int
    index_bytes: Bytes
    memory_required_bytes: Bytes
    instance: InstanceType
    init_overhead_seconds: Duration  # index download + shm load
    star_seconds_mean_file: Duration
    hourly_usd: float

    @property
    def cost_per_mean_file_usd(self) -> float:
        """On-demand cost of aligning one mean-size file on this choice."""
        return self.star_seconds_mean_file / 3600.0 * self.hourly_usd


class RightSizingAdvisor:
    """Chooses instances from index memory footprints."""

    def __init__(
        self,
        *,
        index_model: IndexModel | None = None,
        star_model: StarPerfModel | None = None,
        transfer_model: TransferModel | None = None,
        family: str = "r6a",
        min_vcpus: int = 8,
        memory_overhead_bytes: Bytes = 6e9,
    ) -> None:
        self.index_model = index_model or IndexModel()
        self.star_model = star_model or StarPerfModel()
        self.transfer_model = transfer_model or TransferModel()
        self.family = family
        self.min_vcpus = min_vcpus
        self.memory_overhead_bytes = memory_overhead_bytes

    def memory_required(self, spec: ReleaseSpec) -> Bytes:
        """RAM needed: index resident in shared memory plus working set."""
        return self.index_model.memory_required_bytes(
            spec, overhead=self.memory_overhead_bytes
        )

    def measured_memory_required(self, index: GenomeIndex) -> Bytes:
        """RAM budget for running the in-process aligner on a *concrete* index.

        Unlike :meth:`memory_required` (the paper-calibrated analytic
        model), this accounts the measured index plus what the aligner
        keeps resident before its first query: the packed search context
        (a bytes genome copy; the suffix-array view is zero-copy over
        the index's own int64 array) and the prefix jump table.  The
        packed representation cut the old ~40 B/position Python-list
        overhead to 0 extra bytes, so this budget now tracks the index
        arrays themselves — the number a too-small instance actually
        OOMs against.
        """
        return (
            index.size_bytes(include_search_context=True)
            + self.memory_overhead_bytes
        )

    def measured_instance(self, index: GenomeIndex) -> InstanceType:
        """Cheapest instance whose RAM fits :meth:`measured_memory_required`."""
        return cheapest_fitting(
            self.measured_memory_required(index),
            family=self.family,
            min_vcpus=self.min_vcpus,
        )

    def init_overhead_seconds(self, spec: ReleaseSpec) -> Duration:
        """Instance init phase: download index from S3 + load into shm."""
        index_bytes = self.index_model.index_bytes(spec)
        return self.transfer_model.s3_download_seconds(
            index_bytes
        ) + self.index_model.shm_load_seconds(spec)

    def recommend(
        self,
        release: EnsemblRelease | int,
        *,
        mean_fastq_bytes: Bytes,
    ) -> RightSizingChoice:
        """Full recommendation for a release at a given workload size."""
        spec = release_spec(release)
        memory = self.memory_required(spec)
        itype = cheapest_fitting(
            memory, family=self.family, min_vcpus=self.min_vcpus
        )
        star_seconds = self.star_model.predict(
            mean_fastq_bytes, spec, itype.vcpus
        ).total_seconds
        return RightSizingChoice(
            release=spec.release,
            index_bytes=self.index_model.index_bytes(spec),
            memory_required_bytes=memory,
            instance=itype,
            init_overhead_seconds=self.init_overhead_seconds(spec),
            star_seconds_mean_file=star_seconds,
            hourly_usd=itype.on_demand_hourly_usd,
        )

    def compare(
        self,
        old: EnsemblRelease | int,
        new: EnsemblRelease | int,
        *,
        mean_fastq_bytes: Bytes,
    ) -> tuple[RightSizingChoice, RightSizingChoice, float]:
        """(old_choice, new_choice, per-file cost ratio old/new)."""
        a = self.recommend(old, mean_fastq_bytes=mean_fastq_bytes)
        b = self.recommend(new, mean_fastq_bytes=mean_fastq_bytes)
        return a, b, a.cost_per_mean_file_usd / b.cost_per_mean_file_usd

    def fixed_instance_choice(
        self,
        release: EnsemblRelease | int,
        instance_name: str,
        *,
        mean_fastq_bytes: Bytes,
    ) -> RightSizingChoice:
        """Evaluate a pinned instance type (e.g. the paper's r6a.4xlarge).

        Raises ``ValueError`` when the index does not fit its RAM.
        """
        spec = release_spec(release)
        itype = instance_type(instance_name)
        memory = self.memory_required(spec)
        if memory > itype.memory_bytes:
            raise ValueError(
                f"index for release {spec.release} needs "
                f"{memory / 2**30:.1f} GiB; {itype.name} has {itype.memory_gib:.0f} GiB"
            )
        star_seconds = self.star_model.predict(
            mean_fastq_bytes, spec, itype.vcpus
        ).total_seconds
        return RightSizingChoice(
            release=spec.release,
            index_bytes=self.index_model.index_bytes(spec),
            memory_required_bytes=memory,
            instance=itype,
            init_overhead_seconds=self.init_overhead_seconds(spec),
            star_seconds_mean_file=star_seconds,
            hourly_usd=itype.on_demand_hourly_usd,
        )
