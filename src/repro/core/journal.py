"""Crash-consistent run journal: the pipeline's write-ahead durability log.

The paper's atlas tolerates losing whole spot instances because SQS
redelivers their in-flight accessions (§II); the *local* pipeline had no
equivalent until now — a SIGKILL threw away every completed accession in
the batch.  This module supplies the missing layer:

* :class:`RunJournal` — an append-only JSONL file with atomic, fsync'd
  appends.  Every record is one line, written with a single ``write``
  call and flushed to disk before the pipeline proceeds, so the journal
  is always a prefix of the truth: a crash can at worst leave a *torn
  tail* (one partial final line), never a corrupt middle.

* :func:`replay` semantics (``RunJournal.replay``) — rebuilds the batch
  state from the log, tolerating the torn tail, duplicate terminal
  records (a resumed run re-appends ``completed`` for replayed work),
  and an empty file.  Mid-file corruption is *not* tolerated: that means
  something other than a crash wrote the file, and resuming from it
  would silently lose work — :class:`JournalCorrupt` is raised instead.

* :func:`config_fingerprint` — a stable hash of every
  :class:`~repro.core.pipeline.PipelineConfig` field that affects
  per-accession *output* (not timing).  A journal written under one
  fingerprint refuses to resume under another
  (:class:`JournalIncompatible`), because replayed results would not
  match what the new config produces.

Record vocabulary (the ``t`` field): ``batch-start``, ``started``,
``step-done``, ``align.shard``, ``completed``, ``failed``, ``drained``.
``completed`` and ``failed`` are *terminal* — resume replays them
verbatim; ``started``/``step-done``/``drained`` mark in-flight work that
resume re-runs idempotently (every pipeline step is re-runnable from
scratch).  ``align.shard`` records sit in between: they checkpoint
completed read shards *within* the align step so resume re-dispatches
only unfinished shards (see :mod:`repro.core.replication`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.align.progress import FinalLogStats

if TYPE_CHECKING:
    from repro.core.pipeline import PipelineConfig

__all__ = [
    "JournalCorrupt",
    "JournalIncompatible",
    "JournalReplay",
    "JournalWriteError",
    "ReplayedOutcome",
    "RunJournal",
    "TERMINAL_RECORD_TYPES",
    "config_fingerprint",
]

#: journal format version, stamped on every ``batch-start`` record
JOURNAL_VERSION = 1

#: record types that mark an accession as done (replayed on resume)
TERMINAL_RECORD_TYPES = frozenset({"completed", "failed"})


class JournalCorrupt(RuntimeError):
    """The journal has invalid content *before* its final line.

    A crash can only tear the tail of an append-only, fsync-per-record
    log; damage anywhere else means the file is not a journal this code
    wrote, and resuming from it would be unsafe.
    """


class JournalWriteError(RuntimeError):
    """A journal append failed to reach disk.

    Wraps the underlying ``OSError`` (kept as ``__cause__``) with the
    accession and step the record was describing, so a pipeline failure
    record can name *what work* lost durability rather than surfacing a
    bare fsync traceback.
    """

    def __init__(
        self,
        path: Path,
        record_type: str,
        accession: str | None,
        step: str | None,
        cause: OSError,
    ) -> None:
        self.path = path
        self.record_type = record_type
        self.accession = accession
        self.step = step
        where = accession or "<batch>"
        if step:
            where += f"/{step}"
        super().__init__(
            f"journal append of {record_type!r} for {where} failed on "
            f"{path}: {cause}"
        )


class JournalIncompatible(RuntimeError):
    """The journal was written by a pipeline with a different config.

    Replaying ``completed`` records produced under different
    output-affecting settings would silently mix two configurations'
    results in one batch, so resume refuses instead.
    """

    def __init__(self, journal_fingerprint: str, config_hash: str) -> None:
        self.journal_fingerprint = journal_fingerprint
        self.config_fingerprint = config_hash
        super().__init__(
            f"journal was written by config {journal_fingerprint!r} but the "
            f"current pipeline config hashes to {config_hash!r}; refusing to "
            "resume (results would not be comparable)"
        )


def config_fingerprint(config: "PipelineConfig") -> str:
    """Stable hash of the config surface that determines per-accession output.

    Execution-shape knobs (``workers``, ``align_batch_size``, stall and
    drain timeouts, ``write_outputs``) are deliberately excluded: the
    engine guarantees identical results across worker counts, so a batch
    journaled at ``workers=4`` may resume at ``workers=1`` and still
    produce byte-identical outcomes.
    """
    surface = {
        "early_stopping": repr(config.early_stopping),
        "acceptance_threshold": config.acceptance_threshold,
        "counts_column": config.counts_column,
        "trim": repr(config.trim),
        "retry": repr(config.retry),
        "retry_seed": config.retry_seed,
        "fault_plan": (
            config.fault_plan.describe() if config.fault_plan is not None else None
        ),
    }
    blob = json.dumps(surface, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class ReplayedOutcome:
    """An :class:`~repro.align.outcome.AlignmentOutcome` rebuilt from the
    journal instead of a live run.

    Carries the ``Log.final.out`` statistics the original run recorded;
    per-read outcomes and progress snapshots are not journaled (they are
    bulky and nothing downstream of a *completed* accession needs them),
    so ``progress`` is empty and ``gene_counts`` is None — the pipeline
    keeps the count *column* on the result itself.
    """

    final: FinalLogStats
    progress: list = field(default_factory=list)
    gene_counts: None = None
    aborted: bool = False

    @property
    def mapped_fraction(self) -> float:
        return self.final.mapped_fraction


@dataclass
class JournalReplay:
    """Everything :meth:`RunJournal.replay` recovered from the log."""

    #: config fingerprint from the most recent ``batch-start`` (None when
    #: the journal has no batch record yet)
    fingerprint: str | None = None
    #: accession list of the most recent ``batch-start``
    accessions: list[str] = field(default_factory=list)
    #: accession → first terminal record (``completed`` or ``failed``)
    terminal: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: accessions with a ``started`` but no terminal record, in order
    in_flight: list[str] = field(default_factory=list)
    #: accession → steps journaled as done before the crash
    steps_done: dict[str, list[str]] = field(default_factory=dict)
    #: accession → (shard start, shard end) → ``align.shard`` record;
    #: completed read-shard outcomes the engine can merge instead of
    #: re-aligning (first record per shard wins, like terminals)
    align_shards: dict[str, dict[tuple[int, int], dict[str, Any]]] = field(
        default_factory=dict
    )
    #: total well-formed records read
    n_records: int = 0
    #: a partial final line was dropped (torn write at crash time)
    torn_tail: bool = False
    #: terminal records ignored because one was already present
    duplicate_terminal: int = 0

    @property
    def completed(self) -> dict[str, dict[str, Any]]:
        """Terminal records that completed (any non-FAILED status)."""
        return {
            acc: rec
            for acc, rec in self.terminal.items()
            if rec["t"] == "completed"
        }

    def pending(self, accessions: list[str]) -> list[str]:
        """The subset of ``accessions`` that still needs to run."""
        return [a for a in accessions if a not in self.terminal]


class RunJournal:
    """Append-only JSONL journal with atomic, fsync'd appends.

    Thread-safe: the pipeline appends from every batch worker thread.
    Each append is one ``write`` call of one complete line followed by
    ``flush`` + ``fsync`` (when ``fsync=True``, the default), so records
    are durable before the work they describe is considered done —
    write-ahead in the step-transition sense: a ``completed`` record on
    disk *is* the commit point for that accession.
    """

    def __init__(self, path: Path | str, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._fh = None
        self.appends = 0

    # -- writing -----------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (a single JSON line).

        I/O failures surface as :class:`JournalWriteError` naming the
        accession/step the record describes; the raw ``OSError`` rides
        along as ``__cause__``.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                fh = self._handle()
                fh.write(line)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            except OSError as exc:
                raise JournalWriteError(
                    self.path,
                    str(record.get("t", "?")),
                    record.get("acc"),
                    record.get("step"),
                    exc,
                ) from exc
            self.appends += 1
            self._after_append(line, record)

    def _after_append(self, line: str, record: dict[str, Any]) -> None:
        """Hook run under the append lock once the record is on disk.

        The base journal does nothing; :class:`repro.core.replication.
        ReplicatedJournal` overrides this to mirror the durable line to
        S3 before the append returns (fsync-ordered replication).
        """

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- typed record helpers ----------------------------------------------

    def record_batch_start(
        self, accessions: list[str], fingerprint: str
    ) -> None:
        self.append(
            {
                "t": "batch-start",
                "v": JOURNAL_VERSION,
                "fp": fingerprint,
                "accessions": list(accessions),
            }
        )

    def record_started(self, accession: str) -> None:
        self.append({"t": "started", "acc": accession})

    def record_step_done(self, accession: str, step: str) -> None:
        self.append({"t": "step-done", "acc": accession, "step": step})

    def record_completed(self, accession: str, payload: dict) -> None:
        self.append({"t": "completed", "acc": accession, "result": payload})

    def record_failed(self, accession: str, payload: dict) -> None:
        self.append({"t": "failed", "acc": accession, "result": payload})

    def record_align_shard(
        self,
        accession: str,
        start: int,
        end: int,
        fingerprint: str,
        payload: dict,
    ) -> None:
        """A read shard ``[start, end)`` finished aligning.

        The payload (serialized outcomes + counters, see
        :mod:`repro.core.replication`) is keyed by accession + shard
        bounds + config fingerprint so resume only reuses it when the
        same reads under the same output-affecting config are in play.
        """
        self.append(
            {
                "t": "align.shard",
                "acc": accession,
                "lo": start,
                "hi": end,
                "fp": fingerprint,
                "shard": payload,
            }
        )

    def record_drained(self, accession: str) -> None:
        """The accession's in-flight work was aborted by a graceful drain
        (non-terminal: resume re-runs it from scratch)."""
        self.append({"t": "drained", "acc": accession})

    # -- recovery ----------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Rebuild batch state from the log (see module docstring)."""
        state = JournalReplay()
        if not self.path.exists():
            return state
        raw = self.path.read_bytes()
        if not raw:
            return state
        lines = raw.split(b"\n")
        # a trailing newline leaves one empty fragment; drop it so the
        # "last line" below is the last record candidate
        if lines and lines[-1] == b"":
            lines.pop()
        last = len(lines) - 1
        for i, line in enumerate(lines):
            if not line.strip():
                if i == last:
                    continue
                raise JournalCorrupt(
                    f"{self.path}: blank line at record {i + 1}"
                )
            try:
                record = json.loads(line)
            except (ValueError, UnicodeDecodeError) as exc:
                if i == last:
                    # torn tail: the crash interrupted the final write
                    state.torn_tail = True
                    break
                raise JournalCorrupt(
                    f"{self.path}: unreadable record {i + 1} before the "
                    f"final line — not crash damage"
                ) from exc
            if not isinstance(record, dict) or "t" not in record:
                if i == last:
                    state.torn_tail = True
                    break
                raise JournalCorrupt(
                    f"{self.path}: record {i + 1} is not a journal record"
                )
            self._apply(state, record)
            state.n_records += 1
        state.in_flight = [
            acc
            for acc in state.steps_done
            if acc not in state.terminal
        ]
        return state

    @staticmethod
    def _apply(state: JournalReplay, record: dict[str, Any]) -> None:
        rtype = record["t"]
        if rtype == "batch-start":
            state.fingerprint = record.get("fp")
            state.accessions = list(record.get("accessions", []))
            return
        acc = record.get("acc")
        if acc is None:
            return
        if rtype == "started":
            state.steps_done.setdefault(acc, [])
        elif rtype == "step-done":
            state.steps_done.setdefault(acc, []).append(record.get("step", ""))
        elif rtype == "align.shard":
            shards = state.align_shards.setdefault(acc, {})
            bounds = (int(record.get("lo", 0)), int(record.get("hi", 0)))
            shards.setdefault(bounds, record)
        elif rtype in TERMINAL_RECORD_TYPES:
            # idempotent re-runs append duplicate terminal records; the
            # first one wins so replay is stable under re-execution
            if acc in state.terminal:
                state.duplicate_terminal += 1
            else:
                state.terminal[acc] = record
        # "drained" needs no state: the accession stays in-flight


def final_stats_to_payload(final: FinalLogStats) -> dict[str, Any]:
    """JSON-safe form of ``Log.final.out`` statistics."""
    return {
        "reads_total": final.reads_total,
        "reads_processed": final.reads_processed,
        "mapped_unique": final.mapped_unique,
        "mapped_multi": final.mapped_multi,
        "too_many_loci": final.too_many_loci,
        "unmapped": final.unmapped,
        "mismatch_rate": final.mismatch_rate,
        "spliced_reads": final.spliced_reads,
        "elapsed_seconds": final.elapsed_seconds,
        "aborted": final.aborted,
    }


def final_stats_from_payload(payload: dict[str, Any]) -> FinalLogStats:
    """Rebuild a :class:`FinalLogStats` from its journalled payload."""
    return FinalLogStats(**payload)
