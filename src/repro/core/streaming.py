"""The streaming stage-overlapped execution shape of ``run_batch``.

Sequential batches run ``prefetch → fasterq-dump → align`` to completion
per accession, so the network idles while STAR runs and the CPU idles
while bytes move.  :class:`StreamedBatchRunner` overlaps them as a small
DAG:

* a single **downloader thread** pulls accessions in submission order,
  streaming each ``.sra`` container through
  :class:`~repro.reads.stream.SraStream` — bytes decompress into FASTQ
  record chunks as they arrive — and pushes chunks into a bounded
  per-accession queue (the backpressure window);
* the **consumer** (caller's thread) aligns accession *k* from its live
  chunk queue while the downloader already streams accession *k+1*
  (``prefetch_depth`` bounds how far ahead it may run);
* early stopping (or a drain deadline) aborting accession *k*'s
  alignment **cancels its in-flight download** at the next chunk
  boundary — the un-moved remainder is reported as
  ``download_bytes_saved`` on the result and in
  :class:`~repro.core.stages.PipelineHealth`.

Results are byte-identical to the sequential path: chunk boundaries
never affect alignment outcomes, record parsing matches the
``fasterq-dump → iter_fastq`` semantics exactly, retry jitter draws from
the same per-accession stream in the same step order, and journal
records interchange freely (execution shape is not fingerprinted).  The
one documented divergence: an accession whose download was cancelled
mid-stream reports the *partial* ``fastq_bytes`` actually decoded —
that is the point of cancelling.

Failure semantics match the sequential harness: prefetch faults retry
under the same policy inside the downloader (each attempt reopens the
stream), ``fasterq_dump`` faults are checked before the first chunk is
handed over, and an ``align`` fault fires before any chunk is consumed
so transient align faults retry safely.  Only a failure *after* chunks
were consumed is unrecoverable mid-stream (the bytes are gone) and
surfaces as a permanent-style step failure.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.align.backend import ReadChunkStream
from repro.core.resilience import StepFailed, run_with_retry
from repro.core.stages import AlignStage, StageContext
from repro.reads.stream import SraStream
from repro.util.rng import derive_rng

if TYPE_CHECKING:
    from repro.core.journal import RunJournal
    from repro.core.pipeline import BatchOptions, PipelineResult

__all__ = ["StreamedBatchRunner"]

#: poll interval for the bounded queues and coordination events; short
#: enough that cancellation feels immediate, long enough to stay cheap
_POLL_SECONDS = 0.05


@dataclass
class _Handle:
    """Shared per-accession state between the downloader and consumer."""

    accession: str
    #: bounded chunk queue: ("chunk", payload) | ("done", None) | ("error", exc)
    items: queue.Queue = field(default_factory=queue.Queue)
    #: consumer → downloader: stop moving bytes for this accession
    cancel: threading.Event = field(default_factory=threading.Event)
    #: downloader → consumer: header parsed (or ``error`` set)
    meta: threading.Event = field(default_factory=threading.Event)
    #: downloader → consumer: this accession's download work is over
    finished: threading.Event = field(default_factory=threading.Event)
    #: the live stream (set just before ``meta``)
    stream: SraStream | None = None
    #: prefetch/dump step failure, raised in the consumer (before meta)
    error: StepFailed | None = None
    #: mid-stream decode/transfer failure (after meta)
    stream_error: BaseException | None = None
    #: guard: a chunk feed is single-use — see module docstring
    consume_started: bool = False
    #: retries spent by the downloader on this accession's steps
    retries: int = 0
    #: wall seconds the downloader spent on this accession
    download_seconds: float = 0.0
    #: seconds the downloader sat blocked on a full chunk queue
    stall_seconds: float = 0.0
    #: per-accession jitter stream, shared with the consumer's align
    #: retries so draw order matches the sequential path exactly
    rng: Any = None


class StreamedBatchRunner:
    """Executes one batch with download/align overlap (see module doc)."""

    def __init__(self, pipeline, options: "BatchOptions") -> None:
        self.pipeline = pipeline
        self.options = options
        #: admits the accession being consumed plus ``prefetch_depth``
        #: lookahead downloads; released as the consumer finishes each
        self._admission = threading.Semaphore(1 + options.prefetch_depth)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- entry point ---------------------------------------------------------

    def run(
        self, pending: list[str], journal: "RunJournal | None"
    ) -> dict[str, "PipelineResult"]:
        """Run ``pending`` accessions; returns results keyed by accession.

        Mirrors the sequential loop's drain contract: a drain request
        stops admission before the next accession; the in-flight one is
        bounded by the drain deadline (its download is cancelled along
        with its alignment).  Accessions never started have no journal
        records, so a resumed batch re-runs exactly them.
        """
        results: dict[str, PipelineResult] = {}
        if not pending:
            return results
        pipeline = self.pipeline
        handles = []
        for accession in pending:
            handle = _Handle(accession)
            handle.items = queue.Queue(maxsize=self.options.buffer_chunks)
            handle.rng = derive_rng(
                pipeline.config.retry_seed, f"retry:{accession}"
            )
            handles.append(handle)
        self._thread = threading.Thread(
            target=self._download_all,
            args=(handles,),
            name="stream-downloader",
            daemon=True,
        )
        self._thread.start()
        try:
            for handle in handles:
                if pipeline._drain.is_set():
                    break
                try:
                    results[handle.accession] = pipeline._run_guarded(
                        handle.accession,
                        journal,
                        lambda harness, h=handle: self._consume(h, harness),
                        rng=handle.rng,
                    )
                finally:
                    self._release_handle(handle)
                    self._admission.release()
        finally:
            self._stop.set()
            for handle in handles:
                self._release_handle(handle)
                # unblock the downloader's admission wait for every
                # handle it may still loop over (over-release is safe)
                self._admission.release()
            self._thread.join(timeout=30.0)
        return results

    @staticmethod
    def _release_handle(handle: _Handle) -> None:
        """Cancel a handle and drain its queue so the downloader exits."""
        handle.cancel.set()
        if handle.stream is not None:
            handle.stream.cancel()
        while True:
            try:
                handle.items.get_nowait()
            except queue.Empty:
                return

    # -- downloader side -----------------------------------------------------

    def _download_all(self, handles: list[_Handle]) -> None:
        for handle in handles:
            self._admission.acquire()
            if self._stop.is_set():
                handle.meta.set()
                handle.finished.set()
                continue
            self._download_one(handle)

    def _download_one(self, handle: _Handle) -> None:
        pipeline = self.pipeline
        cfg = pipeline.config
        options = self.options
        started = time.monotonic()

        def on_retry(step, attempt, exc, delay):
            handle.retries += 1
            pipeline.retry_ledger.record(step)

        def open_stream() -> SraStream:
            # same fault point as the sequential prefetch(); each retry
            # reopens the stream so attempts are independent
            if cfg.fault_plan is not None:
                cfg.fault_plan.check("prefetch", handle.accession)
            return SraStream(
                pipeline.repository,
                handle.accession,
                chunk_bytes=options.download_chunk_bytes,
                chunk_reads=options.chunk_reads,
            ).open()

        def dump_check() -> None:
            # decode happens inline while streaming, but the scripted
            # fault point (and its retry accounting) must keep working
            if cfg.fault_plan is not None:
                cfg.fault_plan.check("fasterq_dump", handle.accession)

        try:
            try:
                stream = run_with_retry(
                    open_stream,
                    policy=cfg.retry,
                    step="prefetch",
                    key=handle.accession,
                    rng=handle.rng,
                    on_retry=on_retry,
                )
                run_with_retry(
                    dump_check,
                    policy=cfg.retry,
                    step="fasterq_dump",
                    key=handle.accession,
                    rng=handle.rng,
                    on_retry=on_retry,
                )
            except StepFailed as exc:
                handle.error = exc
                handle.meta.set()
                return
            handle.stream = stream
            handle.meta.set()
            try:
                for chunk in stream.chunks():
                    if not self._put(handle, ("chunk", chunk)):
                        return
                self._put(handle, ("done", None))
            except Exception as exc:  # decode/transfer failure mid-stream
                handle.stream_error = exc
                self._put(handle, ("error", exc))
        finally:
            handle.download_seconds = time.monotonic() - started
            handle.finished.set()
            stream = handle.stream
            if stream is not None:
                pipeline.stage_health.stage("prefetch").record(
                    items=1,
                    units=stream.bytes_downloaded,
                    busy=max(
                        0.0, handle.download_seconds - handle.stall_seconds
                    ),
                    stall=handle.stall_seconds,
                )
                pipeline.stage_health.record_stream(
                    bytes_total=stream.total_bytes,
                    bytes_saved=stream.bytes_saved,
                    cancelled=stream.cancelled,
                )

    def _put(self, handle: _Handle, item: tuple) -> bool:
        """Enqueue with backpressure; False when cancelled/stopped."""
        metrics = self.pipeline.stage_health.stage("prefetch")
        while True:
            if handle.cancel.is_set() or self._stop.is_set():
                return False
            try:
                metrics.sample_queue(handle.items.qsize())
                handle.items.put(item, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                handle.stall_seconds += _POLL_SECONDS

    # -- consumer side -------------------------------------------------------

    def _consume(self, handle: _Handle, harness) -> "PipelineResult":
        """The body run under the pipeline's retry/journal harness."""
        pipeline = self.pipeline
        self._await_meta(handle)
        harness.retries["n"] += handle.retries
        if handle.error is not None:
            handle.finished.wait()
            harness.timings["prefetch"] += handle.download_seconds
            raise handle.error
        stream = handle.stream
        assert stream is not None
        state = harness.state
        state["streamed"] = True
        state["paired"] = stream.paired
        state["download_bytes_total"] = stream.total_bytes
        if harness.journal is not None:
            # the download/decode steps have settled their retries; the
            # journal keeps the sequential step vocabulary
            harness.journal.record_step_done(handle.accession, "prefetch")
            harness.journal.record_step_done(handle.accession, "fasterq_dump")

        ctx = StageContext(
            pipeline=pipeline,
            accession=handle.accession,
            work=harness.work,
            state=state,
        )
        ctx.paired = stream.paired
        ctx.reads = ReadChunkStream(
            chunks=self._chunks(handle),
            reads_total=stream.n_reads,
            paired=stream.paired,
        )

        def on_abort(record) -> None:
            # early stop / drain: stop moving bytes at the next boundary
            handle.cancel.set()
            stream.cancel()

        ctx.on_align_abort = on_abort
        stage = AlignStage()
        stage.prepare(ctx)
        harness.attempt(
            stage.step_key, stage.timing_key, lambda: stage.run(ctx)
        )
        handle.finished.wait()
        state["fastq_bytes"] = stream.fastq_bytes
        state["download_bytes_saved"] = stream.bytes_saved
        harness.timings["prefetch"] += handle.download_seconds
        pipeline.stage_health.stage("align").record(units=stream.records_out)
        return pipeline._classify(ctx, harness)

    def _await_meta(self, handle: _Handle) -> None:
        while not handle.meta.wait(_POLL_SECONDS):
            thread = self._thread
            if thread is not None and not thread.is_alive():
                raise RuntimeError(
                    "stream downloader died before metadata for "
                    f"{handle.accession!r}"
                )

    def _chunks(self, handle: _Handle):
        """Generator bridging the chunk queue into the align stage.

        Single-use: the bytes behind consumed chunks are gone, so a
        second iteration (an align retry *after* consumption began)
        fails loudly instead of silently aligning a truncated stream.
        Align retries triggered before any chunk was consumed — the
        scripted-fault case — never enter here twice because the fault
        check precedes consumption.
        """
        if handle.consume_started:
            raise RuntimeError(
                f"{handle.accession!r}: streamed reads were already "
                "consumed; a mid-stream alignment cannot be retried"
            )
        handle.consume_started = True
        metrics = self.pipeline.stage_health.stage("align")
        stalled = 0.0
        try:
            while True:
                try:
                    kind, payload = handle.items.get(timeout=_POLL_SECONDS)
                except queue.Empty:
                    if handle.finished.is_set() and handle.items.empty():
                        if handle.stream_error is not None:
                            raise handle.stream_error
                        return  # cancelled: downloader exited early
                    stalled += _POLL_SECONDS
                    continue
                if kind == "chunk":
                    metrics.sample_queue(handle.items.qsize())
                    yield payload
                elif kind == "error":
                    raise payload
                else:  # "done"
                    return
        finally:
            metrics.record(stall=stalled)
