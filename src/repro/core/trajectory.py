"""Mapping-rate trajectory model.

Describes how a run's cumulative mapped-read fraction evolves as STAR
processes its reads.  Empirically (and in our mini-aligner) the cumulative
rate converges quickly to the library's terminal rate after a short
transient — which is exactly why the paper's 10%-of-reads checkpoint is
already decisive.  The model:

    rate(f) = terminal + (initial − terminal) · exp(−f / tau)

with a small bounded wobble so synthesized ``Log.progress.out`` streams
are not implausibly smooth.  Deterministic given its parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.align.progress import ProgressRecord
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class MappingTrajectory:
    """Cumulative mapping rate as a function of processed-read fraction."""

    terminal_rate: float
    initial_rate: float
    #: transient decay constant in processed-fraction units
    tau: float = 0.03
    #: amplitude of the deterministic wobble (sinusoidal, bounded)
    wobble: float = 0.004
    #: wobble phase, radians — varies per run so runs don't wobble in sync
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("terminal_rate", self.terminal_rate)
        check_fraction("initial_rate", self.initial_rate)
        check_positive("tau", self.tau)
        if self.wobble < 0:
            raise ValueError("wobble must be non-negative")

    def rate_at(self, processed_fraction: float) -> float:
        """Cumulative mapped fraction after processing ``processed_fraction``."""
        check_fraction("processed_fraction", processed_fraction)
        base = self.terminal_rate + (self.initial_rate - self.terminal_rate) * math.exp(
            -processed_fraction / self.tau
        )
        ripple = self.wobble * math.sin(
            12.0 * math.pi * processed_fraction + self.phase
        )
        return min(1.0, max(0.0, base + ripple))

    def to_progress_records(
        self,
        *,
        total_reads: int,
        n_snapshots: int = 20,
        seconds_per_snapshot: float = 60.0,
    ) -> list[ProgressRecord]:
        """Synthesize the ``Log.progress.out`` stream of this run.

        Snapshots are evenly spaced in processed fraction, mimicking STAR's
        periodic reporting; unique/multi are split 85/15, a typical ratio.
        """
        check_positive("total_reads", total_reads)
        check_positive("n_snapshots", n_snapshots)
        records: list[ProgressRecord] = []
        for i in range(1, n_snapshots + 1):
            f = i / n_snapshots
            processed = max(1, int(round(f * total_reads)))
            mapped = int(round(self.rate_at(f) * processed))
            mapped = min(mapped, processed)
            unique = int(round(0.85 * mapped))
            records.append(
                ProgressRecord(
                    elapsed_seconds=i * seconds_per_snapshot,
                    reads_processed=processed,
                    reads_total=total_reads,
                    mapped_unique=unique,
                    mapped_multi=mapped - unique,
                )
            )
        return records
