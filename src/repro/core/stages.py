"""Composable pipeline stages and the per-stage metrics layer.

The pipeline's four steps — ``prefetch``, ``fasterq-dump``, STAR
alignment, DESeq2 normalization — used to live as special-cased branches
inside ``TranscriptomicsAtlasPipeline._run_steps``.  This module lifts
them into uniform :class:`Stage` objects so both execution shapes share
one definition:

* the **sequential** path runs :func:`default_stages` in order, each
  ``run`` wrapped in the pipeline's retry/journal harness;
* the **streaming** path (:mod:`repro.core.streaming`) runs the
  prefetch/dump work in a downloader thread and reuses
  :class:`AlignStage` over a live :class:`~repro.align.backend.ReadChunkStream`.

Back-compat is strict: every stage's ``step_key`` is the FaultPlan /
journal / failure-record step name that existed before the refactor
(``prefetch`` / ``fasterq_dump`` / ``align``), so scripted fault plans
(``step:key:kind``), journal replay, and retry ledgers keep working
unchanged.

:class:`StageMetrics` / :class:`PipelineHealth` are the
``EngineHealth``-style counters for the streaming DAG: per-stage
throughput, busy/stall seconds, and queue occupancy, plus the
download-bytes-saved accounting that early-stopped streams produce.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.align.backend import ReadBatch, ReadChunkStream, resolve_backend
from repro.core.early_stopping import EarlyStopMonitor
from repro.quant.deseq2 import estimate_size_factors, normalize_counts
from repro.reads.fastq import iter_fastq
from repro.reads.sra import fasterq_dump, prefetch
from repro.reads.trim import ReadTrimmer

if TYPE_CHECKING:
    from repro.align.progress import ProgressRecord

__all__ = [
    "AlignStage",
    "Deseq2Stage",
    "FasterqDumpStage",
    "PipelineHealth",
    "PrefetchStage",
    "Stage",
    "StageContext",
    "StageMetrics",
    "default_stages",
]


@dataclass
class StageContext:
    """Mutable per-accession state threaded through the stage DAG.

    ``pipeline`` is the owning :class:`TranscriptomicsAtlasPipeline`
    (duck-typed to keep this module import-light); stages read its
    config/repository/aligner and write their products back here.
    ``state`` is the pipeline's per-accession accounting dict (survives
    into FAILED results, unlike this context).
    """

    pipeline: Any
    accession: str
    work: Path
    state: dict
    #: products, populated as stages run
    sra_path: Path | None = None
    paired: bool = False
    fastq_path: Path | None = None
    fastq_path_2: Path | None = None
    #: a ReadBatch (sequential) or ReadChunkStream (streaming)
    reads: Any | None = None
    trim_stats: Any | None = None
    backend: Any | None = None
    out_dir: Path | None = None
    star_result: Any | None = None
    #: set when the drain deadline aborted the alignment (→ DRAINED)
    drain_hit: bool = False
    #: streaming hook: called with the triggering progress record when
    #: the alignment aborts (early stop or drain) — cancels the download
    on_align_abort: Callable[[ProgressRecord], None] | None = None


@runtime_checkable
class Stage(Protocol):
    """One pipeline step, uniform across execution shapes.

    ``step_key`` is the stable identifier used by FaultPlan scripts,
    journal step-done records, failure records, and the retry ledger;
    ``timing_key`` is the :class:`StepTiming` bucket the stage's wall
    clock lands in (None for batch-scoped stages).  ``prepare`` runs
    once per accession *outside* the retry loop (idempotency not
    required); ``run`` is the retried body and must be safe to invoke
    again after a transient failure.  ``cost_hint`` is an optional
    scheduling hint (estimated work units; bytes or reads).
    """

    name: str
    step_key: str
    timing_key: str | None

    def prepare(self, ctx: StageContext) -> None:
        """One-time setup before the retried body (may be a no-op)."""
        ...

    def run(self, ctx: StageContext) -> None:
        """Execute the step, writing products onto ``ctx``."""
        ...

    def cost_hint(self, ctx: StageContext) -> float | None:
        """Estimated work units for this accession (None = unknown)."""
        ...


class PrefetchStage:
    """Step 1: download the ``.sra`` container into the workspace."""

    name = "prefetch"
    step_key = "prefetch"
    timing_key = "prefetch"

    def prepare(self, ctx: StageContext) -> None:
        """No setup needed."""

    def cost_hint(self, ctx: StageContext) -> float | None:
        """Archive size in bytes when the repository can report it."""
        repo = ctx.pipeline.repository
        if hasattr(repo, "archive_bytes"):
            try:
                return float(repo.archive_bytes(ctx.accession))
            except KeyError:
                return None
        return None

    def run(self, ctx: StageContext) -> None:
        """Download the container; detect the library layout from magic."""
        cfg = ctx.pipeline.config
        ctx.sra_path = prefetch(
            ctx.pipeline.repository,
            ctx.accession,
            ctx.work,
            fault_plan=cfg.fault_plan,
        )
        ctx.paired = ctx.sra_path.read_bytes()[:4] == b"SRAP"
        ctx.state["paired"] = ctx.paired
        ctx.state["download_bytes_total"] = ctx.sra_path.stat().st_size


class FasterqDumpStage:
    """Step 2: convert the container to FASTQ (mate-split when paired)."""

    name = "fasterq-dump"
    step_key = "fasterq_dump"
    timing_key = "fasterq_dump"

    def prepare(self, ctx: StageContext) -> None:
        """No setup needed."""

    def cost_hint(self, ctx: StageContext) -> float | None:
        """Container size in bytes (decompression work scales with it)."""
        if ctx.sra_path is not None and ctx.sra_path.exists():
            return float(ctx.sra_path.stat().st_size)
        return None

    def run(self, ctx: StageContext) -> None:
        """Dump FASTQ file(s) next to the container."""
        cfg = ctx.pipeline.config
        assert ctx.sra_path is not None, "prefetch must run first"
        if ctx.paired:
            from repro.reads.paired import fasterq_dump_paired

            ctx.fastq_path, ctx.fastq_path_2 = fasterq_dump_paired(
                ctx.sra_path, ctx.work, fault_plan=cfg.fault_plan
            )
        else:
            ctx.fastq_path = fasterq_dump(
                ctx.sra_path, ctx.work, fault_plan=cfg.fault_plan
            )
            ctx.fastq_path_2 = None
        ctx.state["fastq_bytes"] = ctx.fastq_path.stat().st_size + (
            ctx.fastq_path_2.stat().st_size
            if ctx.fastq_path_2 is not None
            else 0
        )


class AlignStage:
    """Step 3: STAR alignment through the resolved backend.

    ``prepare`` loads/trims reads (unless the streaming runner already
    attached a :class:`~repro.align.backend.ReadChunkStream` to
    ``ctx.reads``), consumes any scripted ``engine_worker`` fault, and
    resolves the backend.  ``run`` is retry-safe: the scripted ``align``
    fault check fires before any read is consumed, and the stateful
    early-stop monitor is rebuilt per attempt so a retried alignment
    sees the same cadence as an unfaulted run.
    """

    name = "align"
    step_key = "align"
    timing_key = "star"

    def prepare(self, ctx: StageContext) -> None:
        """Load reads, arm chaos faults, resolve the backend."""
        pipeline = ctx.pipeline
        cfg = pipeline.config
        if ctx.reads is None:
            if ctx.paired:
                ctx.reads = ReadBatch(
                    records=list(iter_fastq(ctx.fastq_path)),
                    mate2=list(iter_fastq(ctx.fastq_path_2)),
                )
            else:
                records = list(iter_fastq(ctx.fastq_path))
                if cfg.trim is not None:
                    records, ctx.trim_stats = ReadTrimmer(cfg.trim).trim(
                        records
                    )
                ctx.reads = ReadBatch(records=records)
        engine = pipeline._get_engine()
        if (
            engine is not None
            and cfg.fault_plan is not None
            and cfg.fault_plan.consume("engine_worker", ctx.accession)
            is not None
        ):
            # scripted chaos: SIGKILL one pool worker right before this
            # accession's alignment, exercising the engine's recovery path
            engine.kill_worker()
        requested = getattr(pipeline, "_backend_override", None)
        ctx.backend = resolve_backend(
            cfg,
            pipeline.aligner,
            engine,
            paired=ctx.paired,
            requested=requested,
            faas=(
                pipeline._get_faas_backend() if requested == "faas" else None
            ),
        )
        ctx.out_dir = (
            (ctx.work / "star")
            if (cfg.write_outputs and not ctx.paired)
            else None
        )

    def cost_hint(self, ctx: StageContext) -> float | None:
        """Read count when known (alignment work scales with it)."""
        if isinstance(ctx.reads, ReadChunkStream):
            return float(ctx.reads.reads_total)
        if ctx.reads is not None:
            return float(len(ctx.reads))
        return None

    def run(self, ctx: StageContext) -> None:
        """Align, honouring early stopping, drain deadlines, and faults."""
        pipeline = ctx.pipeline
        cfg = pipeline.config
        if cfg.fault_plan is not None:
            cfg.fault_plan.check("align", ctx.accession)
        # the monitor is stateful — build a fresh one per attempt so a
        # retried alignment sees the same cadence as an unfaulted run
        monitor = (
            EarlyStopMonitor(
                policy=cfg.early_stopping, on_abort=ctx.on_align_abort
            )
            if cfg.early_stopping is not None
            else None
        )
        base_hook = monitor.hook if monitor is not None else None

        def hook(record) -> bool:
            # past the drain deadline, abort at the next checkpoint —
            # the result is marked DRAINED (not REJECTED_EARLY) and a
            # resumed run re-executes the accession from scratch
            if pipeline._drain_expired():
                ctx.drain_hit = True
                if ctx.on_align_abort is not None:
                    ctx.on_align_abort(record)
                return False
            return base_hook(record) if base_hook is not None else True

        if isinstance(ctx.reads, ReadChunkStream):
            ctx.star_result = ctx.backend.align_stream(
                ctx.reads, monitor=hook, out_dir=ctx.out_dir
            )
        else:
            # shard-level checkpointing (see repro.core.replication) is
            # owned by the pipeline: None unless this batch journals with
            # shard checkpoints enabled
            get_ckpt = getattr(pipeline, "_shard_checkpointer", None)
            ctx.star_result = ctx.backend.align(
                ctx.reads,
                monitor=hook,
                out_dir=ctx.out_dir,
                checkpoint=(
                    get_ckpt(ctx.accession) if get_ckpt is not None else None
                ),
            )


class Deseq2Stage:
    """Step 4: joint DESeq2 normalization — a batch-scoped stage.

    Unlike the per-accession stages it consumes the whole batch's
    accepted counts, so ``run`` takes the pipeline itself and returns
    the ``(matrix, size_factors, normalized)`` triple;
    ``TranscriptomicsAtlasPipeline.normalize`` delegates here.
    """

    name = "deseq2"
    step_key = "deseq2"
    timing_key = None

    def prepare(self, ctx) -> None:
        """No setup needed."""

    def cost_hint(self, pipeline) -> float | None:
        """Number of accepted count columns awaiting normalization."""
        return float(
            sum(1 for r in pipeline.results if r.status.produced_counts)
        )

    def run(self, pipeline):
        """Median-of-ratios normalization over the accepted columns."""
        matrix = pipeline.build_count_matrix().drop_all_zero_genes()
        factors = estimate_size_factors(matrix)
        return matrix, factors, normalize_counts(matrix, factors)


def default_stages() -> list[Stage]:
    """The per-accession stage DAG, in execution order."""
    return [PrefetchStage(), FasterqDumpStage(), AlignStage()]


# --------------------------------------------------------------------------
# per-stage metrics (EngineHealth-style counters for the streaming DAG)
# --------------------------------------------------------------------------


@dataclass
class StageMetrics:
    """Counters for one stage of the DAG.

    ``busy_seconds`` is time spent doing the stage's own work;
    ``stall_seconds`` is time blocked on backpressure (a full downstream
    queue or an empty upstream one).  ``units`` are stage-appropriate
    work units (bytes moved for prefetch, reads for align).
    """

    name: str
    items: int = 0
    units: int = 0
    busy_seconds: float = 0.0
    stall_seconds: float = 0.0
    queue_peak: int = 0
    queue_occupancy_sum: float = 0.0
    queue_samples: int = 0

    def record(
        self,
        *,
        items: int = 0,
        units: int = 0,
        busy: float = 0.0,
        stall: float = 0.0,
    ) -> None:
        """Accumulate work done by this stage."""
        self.items += items
        self.units += units
        self.busy_seconds += busy
        self.stall_seconds += stall

    def sample_queue(self, depth: int) -> None:
        """Record an inter-stage queue occupancy observation."""
        self.queue_peak = max(self.queue_peak, depth)
        self.queue_occupancy_sum += depth
        self.queue_samples += 1

    @property
    def mean_queue_depth(self) -> float:
        """Average observed queue occupancy (0 when never sampled)."""
        if not self.queue_samples:
            return 0.0
        return self.queue_occupancy_sum / self.queue_samples

    @property
    def throughput(self) -> float:
        """Work units per busy second (0 when the stage never ran)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.units / self.busy_seconds


@dataclass
class PipelineHealth:
    """Pipeline-level observability: per-stage metrics + stream accounting.

    The streaming counterpart of :class:`~repro.align.engine.EngineHealth`
    — consulted by tests, the CLI's stream report, and the docs'
    reproducible claims.  All methods are thread-safe (the downloader
    thread and the consuming thread both report here).
    """

    stages: dict[str, StageMetrics] = field(default_factory=dict)
    #: accessions that executed through the streaming path
    accessions_streamed: int = 0
    #: archive bytes that existed / were skipped by cancelled downloads
    download_bytes_total: int = 0
    download_bytes_saved: int = 0
    #: downloads cancelled mid-stream (early stop or drain)
    downloads_cancelled: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def stage(self, name: str) -> StageMetrics:
        """Get-or-create the metrics bucket for ``name``."""
        with self._lock:
            metrics = self.stages.get(name)
            if metrics is None:
                metrics = self.stages[name] = StageMetrics(name)
            return metrics

    def record_stream(
        self, *, bytes_total: int, bytes_saved: int, cancelled: bool
    ) -> None:
        """Account one streamed accession's download outcome."""
        with self._lock:
            self.accessions_streamed += 1
            self.download_bytes_total += bytes_total
            self.download_bytes_saved += bytes_saved
            if cancelled:
                self.downloads_cancelled += 1

    def to_rows(self) -> list[tuple[str, int, int, float, float, float]]:
        """Tabular view: (stage, items, units, busy_s, stall_s, mean_q)."""
        with self._lock:
            return [
                (
                    m.name,
                    m.items,
                    m.units,
                    m.busy_seconds,
                    m.stall_seconds,
                    m.mean_queue_depth,
                )
                for m in self.stages.values()
            ]
