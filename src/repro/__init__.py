"""repro — reproduction of "Optimizing STAR Aligner for High Throughput
Computing in the Cloud" (Kica et al., CLUSTER 2024).

Layered as the paper's system is:

* substrates: :mod:`repro.genome`, :mod:`repro.reads`, :mod:`repro.align`
  (a working STAR-like aligner), :mod:`repro.quant` (DESeq2
  normalization), :mod:`repro.cloud` (AWS discrete-event simulation),
  :mod:`repro.perf` (calibrated performance models);
* contribution: :mod:`repro.core` (the Transcriptomics Atlas pipeline,
  early stopping, right-sizing, cloud orchestration);
* evaluation: :mod:`repro.experiments` (one harness per figure/table).

Quick start::

    from repro import run_fig3, run_fig4
    print(run_fig3().to_table(max_rows=10))
    print(run_fig4().savings.to_text())
"""

from repro.core import (
    AtlasConfig,
    AtlasJob,
    EarlyStoppingPolicy,
    EarlyStopMonitor,
    TranscriptomicsAtlasPipeline,
    run_atlas,
)
from repro.experiments import (
    run_ablation,
    run_architecture_sweep,
    run_config_table,
    run_fig3,
    run_fig4,
    run_mini_fig3,
)

__version__ = "0.1.0"

__all__ = [
    "AtlasConfig",
    "AtlasJob",
    "EarlyStopMonitor",
    "EarlyStoppingPolicy",
    "TranscriptomicsAtlasPipeline",
    "__version__",
    "run_ablation",
    "run_architecture_sweep",
    "run_atlas",
    "run_config_table",
    "run_fig3",
    "run_fig4",
    "run_mini_fig3",
]
