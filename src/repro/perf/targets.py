"""Every number the paper reports, in one place.

Benches compare their measured output against these targets, and
:mod:`repro.perf.calibration` derives model constants from them.  Keeping
them centralized means EXPERIMENTS.md, the benches, and the models can
never drift apart on what the paper actually said.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GIB, gib, hours


@dataclass(frozen=True)
class PaperTargets:
    """Reported values from Kica et al., CLUSTER 2024."""

    # §III-A — genome release experiment (Fig. 3 and test-configuration block)
    fig3_n_files: int = 49
    fig3_mean_fastq_bytes: float = gib(15.9)
    fig3_total_fastq_bytes: float = gib(777)
    index_bytes_r108: float = gib(85.0)
    index_bytes_r111: float = gib(29.5)
    fig3_weighted_speedup: float = 12.0  # "more than 12 times faster"
    mapping_rate_max_delta: float = 0.01  # "<1% mean difference"
    instance_type: str = "r6a.4xlarge"
    instance_vcpus: int = 16
    instance_ram_bytes: float = 128e9  # 128 GB

    # §III-B — early stopping (Fig. 4)
    early_stop_corpus_size: int = 1000
    early_stop_terminated: int = 38
    early_stop_mapping_threshold: float = 0.30
    early_stop_check_fraction: float = 0.10
    early_stop_total_hours: float = 155.8
    early_stop_saved_hours: float = 30.4
    early_stop_saving_fraction: float = 0.195  # "about 19.5% reduction"

    # §II — atlas scope
    atlas_min_files: int = 7216
    atlas_total_sra_bytes: float = 17e12  # "17TB of SRA data"

    @property
    def index_size_ratio(self) -> float:
        """85 GiB / 29.5 GiB ≈ 2.88 — the index shrink factor."""
        return self.index_bytes_r108 / self.index_bytes_r111

    @property
    def mean_star_seconds(self) -> float:
        """Mean per-run STAR time implied by the 1000-run corpus (≈9.3 min)."""
        return hours(self.early_stop_total_hours) / self.early_stop_corpus_size

    @property
    def terminated_fraction(self) -> float:
        """38 / 1000 = 3.8% of runs safely terminable."""
        return self.early_stop_terminated / self.early_stop_corpus_size


PAPER = PaperTargets()


def summarize() -> str:
    """Human-readable target sheet (printed by the benches)."""
    p = PAPER
    return "\n".join(
        [
            "Paper targets (Kica et al., CLUSTER 2024):",
            f"  Fig3: {p.fig3_n_files} files, mean {p.fig3_mean_fastq_bytes / GIB:.1f} GiB, "
            f"total {p.fig3_total_fastq_bytes / GIB:.0f} GiB",
            f"  index: r108 {p.index_bytes_r108 / GIB:.1f} GiB vs r111 "
            f"{p.index_bytes_r111 / GIB:.1f} GiB (ratio {p.index_size_ratio:.2f})",
            f"  weighted speedup > {p.fig3_weighted_speedup:.0f}x, "
            f"mapping-rate delta < {100 * p.mapping_rate_max_delta:.0f}%",
            f"  Fig4: {p.early_stop_terminated}/{p.early_stop_corpus_size} runs terminated, "
            f"{p.early_stop_saved_hours:.1f} h of {p.early_stop_total_hours:.1f} h saved "
            f"({100 * p.early_stop_saving_fraction:.1f}%)",
            f"  early-stop rule: abort if mapped% < {100 * p.early_stop_mapping_threshold:.0f}% "
            f"after {100 * p.early_stop_check_fraction:.0f}% of reads",
        ]
    )
