"""Performance model of a Salmon-like pseudo-aligner.

Published Salmon/kallisto benchmarks put pseudo-alignment roughly an
order of magnitude faster than STAR on the same hardware; its index is a
*transcriptome* k-mer map, so — unlike STAR's genome suffix array — its
size and speed barely react to the genomic scaffold duplication that
drives the paper's §III-A effect.  What it lacks (the paper's point) is a
progress mapping-rate stream: no early stopping is possible unless the
tool is extended to report one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perf.star_model import StarPerfModel, StarRuntimeBreakdown
from repro.util.rng import ensure_rng
from repro.util.units import Bytes
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class PseudoPerfModel:
    """Wall-time model for the pseudo-aligner baseline.

    Parametrized *relative* to the STAR model so the two stay comparable
    under recalibration: pseudo throughput = ``speed_factor`` × STAR's
    duplication-free throughput.
    """

    star_model: StarPerfModel = field(default_factory=StarPerfModel)
    #: pseudo-alignment speed relative to STAR on a duplication-free index
    speed_factor: float = 8.0
    #: index load + startup, much lighter than STAR's (small index)
    setup_seconds: float = 10.0
    #: transcriptome index size (vs STAR's ~30 GiB genome index)
    index_bytes: float = 800e6

    def __post_init__(self) -> None:
        check_positive("speed_factor", self.speed_factor)
        check_positive("setup_seconds", self.setup_seconds)
        check_positive("index_bytes", self.index_bytes)

    def throughput(self, vcpus: int) -> float:
        """FASTQ bytes/second for a full instance."""
        check_positive("vcpus", vcpus)
        effective = min(vcpus, self.star_model.vcpu_saturation)
        return self.speed_factor * self.star_model.base_throughput_per_vcpu * effective

    def predict(
        self,
        fastq_bytes: Bytes,
        vcpus: int,
        *,
        scanned_fraction: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> StarRuntimeBreakdown:
        """Predict one pseudo-alignment's wall time.

        ``scanned_fraction < 1`` models a *hypothetical* progress-enabled
        pseudo-aligner (the extension the paper's conclusions call for);
        the stock tool always runs with 1.0.
        """
        check_positive("fastq_bytes", fastq_bytes)
        check_fraction("scanned_fraction", scanned_fraction)
        scan = scanned_fraction * fastq_bytes / self.throughput(vcpus)
        if rng is not None and self.star_model.noise_sigma > 0:
            sigma = self.star_model.noise_sigma
            scan *= float(
                ensure_rng(rng).lognormal(mean=-0.5 * sigma**2, sigma=sigma)
            )
        return StarRuntimeBreakdown(
            setup_seconds=self.setup_seconds,
            scan_seconds=scan,
            scanned_fraction=scanned_fraction,
        )
