"""Calibration: derive model constants from the paper's aggregates.

Every fitted constant in :mod:`repro.perf` is computed here from first
principles plus a named target, so the provenance of each number is
auditable and testable:

* ``bytes_per_base`` — from the r108 index size and r108 toplevel bases;
  release 111's predicted index size is then a *held-out check*;
* ``difficulty_alpha`` — from the >12× weighted speedup and the two
  releases' duplication factors;
* ``base_throughput_per_vcpu`` — from the Fig. 3 configuration and the
  per-run mean implied by the 1000-run corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.genome.ensembl import EnsemblRelease, release_spec
from repro.perf.index_model import IndexModel
from repro.perf.star_model import StarPerfModel
from repro.perf.targets import PAPER, PaperTargets
from repro.util.units import GIB


@dataclass(frozen=True)
class CalibrationReport:
    """Derived constants plus their held-out validation residuals."""

    bytes_per_base: float
    difficulty_alpha: float
    base_throughput_per_vcpu: float
    predicted_index_r111_bytes: float
    r111_index_residual: float  # relative error vs the paper's 29.5 GiB
    predicted_speedup: float

    def to_text(self) -> str:
        return "\n".join(
            [
                "Calibration report:",
                f"  bytes/base            = {self.bytes_per_base:.3f}  (fit: r108 index)",
                f"  difficulty alpha      = {self.difficulty_alpha:.3f}  (fit: 12x speedup)",
                f"  throughput/vCPU       = {self.base_throughput_per_vcpu / 1e6:.2f} MB/s"
                "  (fit: Fig3 config)",
                f"  predicted r111 index  = {self.predicted_index_r111_bytes / GIB:.1f} GiB"
                f"  (paper: {PAPER.index_bytes_r111 / GIB:.1f} GiB, "
                f"residual {100 * self.r111_index_residual:+.1f}%)",
                f"  predicted speedup     = {self.predicted_speedup:.1f}x"
                f"  (paper: >{PAPER.fig3_weighted_speedup:.0f}x)",
            ]
        )


def solve_alpha(targets: PaperTargets = PAPER) -> float:
    """α such that the wall-time ratio at the mean Fig. 3 file hits the target.

    Delegates to the model's own calibration (which corrects for the fixed
    setup cost) after validating catalog consistency.
    """
    dup108 = release_spec(EnsemblRelease.R108).duplication_factor
    dup111 = release_spec(EnsemblRelease.R111).duplication_factor
    if dup108 <= dup111:
        raise ValueError("release catalog inconsistent: r108 must duplicate more")
    from repro.perf.star_model import _calibrated_alpha

    return _calibrated_alpha()


def solve_bytes_per_base(targets: PaperTargets = PAPER) -> float:
    """Bytes/base such that release 108's index is exactly 85 GiB."""
    return targets.index_bytes_r108 / release_spec(EnsemblRelease.R108).toplevel_bases


def calibrate(targets: PaperTargets = PAPER) -> CalibrationReport:
    """Run the full calibration and its held-out checks."""
    index_model = IndexModel(bytes_per_base=solve_bytes_per_base(targets))
    star_model = StarPerfModel()
    predicted_r111 = index_model.index_bytes_for_release(EnsemblRelease.R111)
    residual = (predicted_r111 - targets.index_bytes_r111) / targets.index_bytes_r111
    predicted_speedup = star_model.speedup(
        targets.fig3_mean_fastq_bytes,
        EnsemblRelease.R108,
        EnsemblRelease.R111,
        targets.instance_vcpus,
    )
    return CalibrationReport(
        bytes_per_base=index_model.bytes_per_base,
        difficulty_alpha=star_model.difficulty_alpha,
        base_throughput_per_vcpu=star_model.base_throughput_per_vcpu,
        predicted_index_r111_bytes=predicted_r111,
        r111_index_residual=float(residual),
        predicted_speedup=predicted_speedup,
    )
