"""Data-movement model: S3, NCBI, and local-disk transfer times.

One instance's pipeline moves data four times: SRA download from NCBI
(prefetch), FASTQ materialization (fasterq-dump, disk-bound), index
download from S3 at init, and result upload to S3.  Bandwidths are
per-instance effective rates, deliberately conservative for shared links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import Bytes, Duration
from repro.util.validation import check_positive


@dataclass(frozen=True)
class TransferModel:
    """Effective per-instance bandwidths (bytes/second)."""

    #: S3 within-region GET/PUT throughput for large objects
    s3_bandwidth: float = 600e6
    #: NCBI SRA public download throughput (external, much slower)
    ncbi_bandwidth: float = 60e6
    #: local NVMe/EBS streaming write (fasterq-dump is I/O bound)
    disk_bandwidth: float = 500e6
    #: fixed per-request latency added to every transfer
    request_latency_seconds: float = 0.2

    def __post_init__(self) -> None:
        check_positive("s3_bandwidth", self.s3_bandwidth)
        check_positive("ncbi_bandwidth", self.ncbi_bandwidth)
        check_positive("disk_bandwidth", self.disk_bandwidth)

    def _time(self, size: Bytes, bandwidth: float) -> Duration:
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.request_latency_seconds + size / bandwidth

    def s3_download_seconds(self, size: Bytes) -> Duration:
        """GET an object of ``size`` bytes from S3 (e.g. the STAR index)."""
        return self._time(size, self.s3_bandwidth)

    def s3_upload_seconds(self, size: Bytes) -> Duration:
        """PUT pipeline results to S3."""
        return self._time(size, self.s3_bandwidth)

    def prefetch_seconds(self, sra_bytes: Bytes) -> Duration:
        """Download one SRA container from NCBI."""
        return self._time(sra_bytes, self.ncbi_bandwidth)

    def fasterq_dump_seconds(self, fastq_bytes: Bytes) -> Duration:
        """Convert SRA → FASTQ; bounded by writing the FASTQ to disk."""
        return self._time(fastq_bytes, self.disk_bandwidth)
