"""Calibrated performance models.

The mini-aligner in :mod:`repro.align` proves the *mechanisms* (index size
tracks FASTA size; duplicated scaffolds create multimapping work; early
stopping cuts scan time).  This package scales those mechanisms to the
paper's workload sizes with analytical models whose constants are derived
— transparently, in :mod:`repro.perf.calibration` — from the aggregate
numbers the paper reports.  The cloud simulator consumes these models.
"""

from repro.perf.index_model import IndexModel
from repro.perf.star_model import StarPerfModel, StarRuntimeBreakdown
from repro.perf.targets import PAPER
from repro.perf.transfer import TransferModel

__all__ = [
    "IndexModel",
    "PAPER",
    "StarPerfModel",
    "StarRuntimeBreakdown",
    "TransferModel",
]
