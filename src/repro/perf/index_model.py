"""Index size / build / load model.

The STAR index stores, per genome base, the packed sequence plus an
8-byte uncompressed suffix-array entry (the same layout as
:class:`repro.align.index.GenomeIndex`), so its size is linear in
toplevel FASTA bases.  The bytes-per-base constant is calibrated from the
paper's 85 GiB @ release 108; the same constant then predicts release
111's 29.5 GiB — a genuine cross-check, not a fit of both points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.genome.ensembl import EnsemblRelease, ReleaseSpec, release_spec
from repro.perf.targets import PAPER
from repro.util.units import Bytes, Duration
from repro.util.validation import check_positive

#: Calibrated from index_bytes_r108 / toplevel_bases(r108) ≈ 10.23 B/base.
_R108_SPEC = release_spec(EnsemblRelease.R108)
BYTES_PER_BASE: float = PAPER.index_bytes_r108 / _R108_SPEC.toplevel_bases


@dataclass(frozen=True)
class IndexModel:
    """Analytical model of STAR index footprint and handling times."""

    bytes_per_base: float = BYTES_PER_BASE
    #: genomeGenerate throughput, bases/second/vCPU (suffix-array sort bound)
    build_bases_per_second_per_vcpu: float = 1.1e6
    #: sequential read into /dev/shm, bytes/second (NVMe-class local disk)
    shm_load_bandwidth: float = 1.2e9

    def index_bytes(self, spec: ReleaseSpec) -> Bytes:
        """Predicted on-disk/in-memory index size for a release."""
        return self.bytes_per_base * spec.toplevel_bases

    def index_bytes_for_release(self, release: EnsemblRelease | int) -> Bytes:
        return self.index_bytes(release_spec(release))

    def memory_required_bytes(self, spec: ReleaseSpec, *, overhead: Bytes = 6e9) -> Bytes:
        """RAM needed to run STAR: index in shared memory + working overhead."""
        check_positive("overhead", overhead)
        return self.index_bytes(spec) + overhead

    def build_seconds(self, spec: ReleaseSpec, vcpus: int) -> Duration:
        """genomeGenerate wall time on ``vcpus`` cores."""
        check_positive("vcpus", vcpus)
        return spec.toplevel_bases / (self.build_bases_per_second_per_vcpu * vcpus)

    def shm_load_seconds(self, spec: ReleaseSpec) -> Duration:
        """Time to load the index from local disk into shared memory."""
        return self.index_bytes(spec) / self.shm_load_bandwidth
