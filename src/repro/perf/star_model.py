"""Calibrated STAR runtime model.

Decomposes an alignment run as

    t = t_setup + scanned_fraction * fastq_bytes / throughput

where throughput is per-vCPU base throughput divided by a *difficulty
factor* that grows with the release's duplication factor (toplevel /
chromosome bases): duplicated scaffolds multiply seed hits, and each extra
candidate locus costs extension work, so difficulty ≈ dup^α with α
calibrated (see :mod:`repro.perf.calibration`) so that r108 vs r111
reproduces the paper's >12× weighted speedup.  The linear-in-scanned-
fraction term is what makes early stopping save (1 − f) of a run's scan
time — alignment is a streaming pass over reads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.genome.ensembl import EnsemblRelease, ReleaseSpec, release_spec
from repro.perf.targets import PAPER
from repro.util.rng import ensure_rng
from repro.util.units import Bytes, Duration
from repro.util.validation import check_fraction, check_positive


#: Anchor point of the throughput fit: the mean Fig. 3 file (15.9 GiB) takes
#: ~7.5 minutes of scan time on 16 vCPUs with the r111 index — consistent
#: with the ≈9.3 min/run mean implied by the paper's 155.8 h / 1000 runs.
_ANCHOR_SCAN_SECONDS = 450.0
_DEFAULT_SETUP_SECONDS = 40.0


def _calibrated_alpha() -> float:
    """Difficulty exponent α such that the *wall-time* ratio at the mean
    Fig. 3 file equals the target 12× — i.e. the required scan-time ratio
    is inflated to compensate for the fixed setup cost both runs pay:

        R = S + (S/scan111 + 1) · (target − 1),  α = ln R / ln(dup108/dup111)
    """
    dup108 = release_spec(EnsemblRelease.R108).duplication_factor
    dup111 = release_spec(EnsemblRelease.R111).duplication_factor
    target = PAPER.fig3_weighted_speedup
    setup_ratio = _DEFAULT_SETUP_SECONDS / _ANCHOR_SCAN_SECONDS
    required_scan_ratio = target + (target - 1.0) * setup_ratio
    return math.log(required_scan_ratio) / math.log(dup108 / dup111)


def _calibrated_throughput() -> float:
    """Per-vCPU FASTQ throughput (bytes/s) with the r111 index.

    Anchored at :data:`_ANCHOR_SCAN_SECONDS` for the Fig. 3 configuration.
    The value ≈ 2.4 MB/s/vCPU is also in the ballpark of published STAR
    throughput on EPYC cores.
    """
    return PAPER.fig3_mean_fastq_bytes / (_ANCHOR_SCAN_SECONDS * PAPER.instance_vcpus)


@dataclass(frozen=True)
class StarRuntimeBreakdown:
    """One run's predicted wall time, split into its parts."""

    setup_seconds: float
    scan_seconds: float
    scanned_fraction: float

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.scan_seconds

    @property
    def full_scan_seconds(self) -> float:
        """Scan time had the run gone to completion."""
        if self.scanned_fraction <= 0:
            return 0.0
        return self.scan_seconds / self.scanned_fraction


@dataclass(frozen=True)
class StarPerfModel:
    """Analytical STAR wall-time model, deterministic given its constants."""

    #: per-vCPU FASTQ scan throughput against a duplication-free index, B/s
    base_throughput_per_vcpu: float = field(default_factory=_calibrated_throughput)
    #: difficulty exponent over the duplication factor
    difficulty_alpha: float = field(default_factory=_calibrated_alpha)
    #: fixed per-run setup (open files, attach shm index, write outputs), s
    setup_seconds: float = _DEFAULT_SETUP_SECONDS
    #: multiplicative lognormal runtime noise (sigma); 0 disables
    noise_sigma: float = 0.08
    #: thread scaling saturates: effective vcpus = min(vcpus, saturation)
    vcpu_saturation: int = 32

    def difficulty(self, spec: ReleaseSpec) -> float:
        """Search-cost multiplier of a release's index (1.0 = no duplication)."""
        return spec.duplication_factor**self.difficulty_alpha

    def throughput(self, spec: ReleaseSpec, vcpus: int) -> float:
        """FASTQ bytes/second for a full instance against ``spec``'s index."""
        check_positive("vcpus", vcpus)
        effective = min(vcpus, self.vcpu_saturation)
        return self.base_throughput_per_vcpu * effective / self.difficulty(spec)

    def predict(
        self,
        fastq_bytes: Bytes,
        release: EnsemblRelease | int | ReleaseSpec,
        vcpus: int,
        *,
        scanned_fraction: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ) -> StarRuntimeBreakdown:
        """Predict one run's wall time.

        ``scanned_fraction < 1`` models an early-stopped run (the setup cost
        is still paid in full).  Passing ``rng`` adds the lognormal run-to-
        run noise; omit it for the deterministic expectation.
        """
        check_positive("fastq_bytes", fastq_bytes)
        check_fraction("scanned_fraction", scanned_fraction)
        spec = release if isinstance(release, ReleaseSpec) else release_spec(release)
        scan = scanned_fraction * fastq_bytes / self.throughput(spec, vcpus)
        if rng is not None and self.noise_sigma > 0:
            noise = float(
                ensure_rng(rng).lognormal(
                    mean=-0.5 * self.noise_sigma**2, sigma=self.noise_sigma
                )
            )
            scan *= noise
        return StarRuntimeBreakdown(
            setup_seconds=self.setup_seconds,
            scan_seconds=scan,
            scanned_fraction=scanned_fraction,
        )

    def speedup(
        self,
        fastq_bytes: Bytes,
        old: EnsemblRelease | int,
        new: EnsemblRelease | int,
        vcpus: int,
    ) -> float:
        """Wall-time ratio old/new for one file (deterministic)."""
        t_old = self.predict(fastq_bytes, old, vcpus).total_seconds
        t_new = self.predict(fastq_bytes, new, vcpus).total_seconds
        return t_old / t_new


def weighted_mean_speedup(
    model: StarPerfModel,
    fastq_sizes: np.ndarray,
    old: EnsemblRelease | int,
    new: EnsemblRelease | int,
    vcpus: int,
) -> float:
    """FASTQ-size-weighted mean per-file speedup — the paper's Fig. 3 metric."""
    sizes = np.asarray(fastq_sizes, dtype=float)
    if sizes.size == 0:
        raise ValueError("no files")
    speedups = np.array(
        [model.speedup(s, old, new, vcpus) for s in sizes]
    )
    return float((speedups * sizes).sum() / sizes.sum())


def early_stop_time_saved(
    breakdown_full: StarRuntimeBreakdown, stop_fraction: float
) -> Duration:
    """Seconds saved by stopping a run at ``stop_fraction`` of its reads."""
    check_fraction("stop_fraction", stop_fraction)
    return (1.0 - stop_fraction) * breakdown_full.full_scan_seconds
