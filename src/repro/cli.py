"""Command-line interface: regenerate any of the paper's artifacts.

Usage::

    python -m repro fig3 [--seed N] [--rows K]
    python -m repro fig4 [--seed N] [--threshold 0.3] [--check 0.1]
    python -m repro mini-fig3 [--reads N] [--workers N] [--cache-dir DIR]
    python -m repro index [--build] [--cache-dir DIR] [--release 111]
    python -m repro config-table
    python -m repro calibrate
    python -m repro architecture [--jobs N]
    python -m repro ablation [--corpus N]
    python -m repro pseudo [--seed N]
    python -m repro hpc [--jobs N] [--nodes N]
    python -m repro atlas [--jobs N] [--spot] [--release 111] [--fleet 8]
                          [--retries 3] [--fault-plan SPEC] [--no-drain]
                          [--replicate] [--architecture asg|faas|hybrid|all]
    python -m repro faas-crossover [--jobs N] [--seed N]
    python -m repro chaos [--accessions N] [--workers N] [--fault-plan SPEC]
                          [--resume] [--journal PATH] [--kill-instance]
                          [--faas]
    python -m repro pipeline [--accessions N] [--journal PATH] [--resume]
                             [--journal-s3 DIR] [--shard-checkpoints]
                             [--adopt]

Every command prints the same rows/series the paper reports and exits 0
(``pipeline --resume`` exits 2 when the journal's config hash does not
match the current configuration).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import run_fig3

    result = run_fig3(rng=args.seed)
    print(result.to_table(max_rows=args.rows))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.core.early_stopping import EarlyStoppingPolicy
    from repro.experiments.fig4 import run_fig4

    policy = EarlyStoppingPolicy(
        mapping_threshold=args.threshold, check_fraction=args.check
    )
    result = run_fig4(policy=policy, rng=args.seed)
    print(result.to_table())
    return 0


def _cmd_mini_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.mini_fig3 import run_mini_fig3

    result = run_mini_fig3(
        n_reads=args.reads,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(result.to_table())
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    import time

    from repro.align.cache import IndexCache, index_fingerprint
    from repro.genome.ensembl import EnsemblRelease, build_release_assembly
    from repro.genome.synth import GenomeUniverseSpec, make_universe
    from repro.util.rng import derive_rng, ensure_rng
    from repro.util.tables import Table

    cache = IndexCache(args.cache_dir)
    if args.build:
        rng = ensure_rng(args.seed)
        universe = make_universe(GenomeUniverseSpec(), rng)
        assembly = build_release_assembly(
            universe, EnsemblRelease(args.release), rng=derive_rng(rng, "assembly")
        )
        fingerprint = index_fingerprint(assembly, universe.annotation)
        was_cached = fingerprint in cache
        started = time.perf_counter()
        index = cache.get_or_build(assembly, universe.annotation)
        elapsed = time.perf_counter() - started
        table = Table(
            ["metric", "value"],
            title=f"Index build — release {args.release}, seed {args.seed}",
        )
        table.add_row(["fingerprint", fingerprint[:16]])
        table.add_row(["outcome", "cache hit (mmap)" if was_cached else "built"])
        table.add_row(["elapsed (s)", f"{elapsed:.3f}"])
        table.add_row(["genome bases", index.n_bases])
        table.add_row(["index bytes", index.size_bytes()])
        table.add_row(["jump-table L", index.jump_table.length])
        table.add_row(["jump-table bytes", index.jump_table.nbytes])
        table.add_row(["entry bytes on disk", cache.entry_bytes(fingerprint)])
        print(table.render())
        print()

    table = Table(
        ["fingerprint", "assembly", "bases", "bytes"],
        title=f"Index cache — {cache.root}",
    )
    import json

    for fp in cache.entries():
        meta = json.loads((cache.path_for(fp) / "meta.json").read_text())
        table.add_row(
            [fp[:16], meta["assembly_name"], meta["n_bases"], cache.entry_bytes(fp)]
        )
    print(table.render())
    print(
        f"entries: {len(cache.entries())}  "
        f"hits: {cache.hits}  misses: {cache.misses} (this invocation)"
    )
    return 0


def _cmd_config_table(args: argparse.Namespace) -> int:
    from repro.experiments.config_table import memory_fit_matrix, run_config_table

    print(run_config_table().to_table())
    print()
    print(memory_fit_matrix())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.perf.calibration import calibrate
    from repro.perf.targets import summarize

    print(summarize())
    print()
    print(calibrate().to_text())
    return 0


def _cmd_architecture(args: argparse.Namespace) -> int:
    from repro.experiments.architecture import run_architecture_sweep

    result = run_architecture_sweep(n_jobs=args.jobs, seed=args.seed)
    print(result.to_table())
    return 0


def _cmd_faas_crossover(args: argparse.Namespace) -> int:
    from repro.experiments.faas_crossover import run_faas_crossover

    result = run_faas_crossover(n_jobs=args.jobs, seed=args.seed)
    print(result.to_table())
    crossover = result.crossover_scale
    if crossover is None:
        print("serverless never wins on this sweep")
    else:
        print(
            f"serverless is cheaper up to scale {crossover:g} "
            f"(mean {result.point(crossover).mean_fastq_mb:.0f} MB FASTQ)"
        )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablation import run_ablation

    print(run_ablation(corpus_size=args.corpus, seed=args.seed).to_table())
    return 0


def _cmd_pseudo(args: argparse.Namespace) -> int:
    from repro.experiments.pseudo_comparison import (
        run_pseudo_comparison,
        run_transferability,
    )

    print(run_pseudo_comparison(rng=args.seed).to_table())
    print()
    print(run_transferability(seed=args.seed or 11).to_table())
    return 0


def _cmd_hpc(args: argparse.Namespace) -> int:
    from repro.core.hpc import HpcConfig, run_hpc
    from repro.experiments.corpus import CorpusSpec, generate_corpus
    from repro.util.tables import Table

    jobs = generate_corpus(CorpusSpec(n_runs=args.jobs), rng=args.seed)
    report = run_hpc(jobs, HpcConfig(n_nodes=args.nodes, seed=args.seed))
    table = Table(["metric", "value"], title=f"HPC campaign — {args.nodes} nodes")
    table.add_row(["jobs", report.n_jobs])
    table.add_row(["terminated early", report.n_terminated])
    table.add_row(["makespan (h)", f"{report.makespan_seconds / 3600:.2f}"])
    table.add_row(["node-hours", f"{report.node_hours:.1f}"])
    table.add_row(["STAR hours", f"{report.star_hours_actual:.1f}"])
    table.add_row(["jobs/hour", f"{report.throughput_jobs_per_hour:.1f}"])
    print(table.render())
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    from repro.cloud.autoscaling import ScalingPolicy
    from repro.cloud.ec2 import InstanceMarket
    from repro.core.atlas import AtlasConfig, run_atlas
    from repro.core.resilience import FaultPlan, RetryPolicy
    from repro.experiments.corpus import CorpusSpec, generate_corpus
    from repro.genome.ensembl import EnsemblRelease
    from repro.util.tables import Table

    jobs = generate_corpus(CorpusSpec(n_runs=args.jobs), rng=args.seed)
    config = AtlasConfig(
        release=EnsemblRelease(args.release),
        market=InstanceMarket.SPOT if args.spot else InstanceMarket.ON_DEMAND,
        scaling=ScalingPolicy(max_size=args.fleet, messages_per_instance=4),
        retry=RetryPolicy(
            max_attempts=args.retries, base_delay=30.0, max_delay=600.0
        ),
        fault_plan=(
            FaultPlan.parse(args.fault_plan)
            if args.fault_plan is not None
            else None
        ),
        drain_on_warning=not args.no_drain,
        streaming=args.streaming,
        replicate_journal=args.replicate,
        seed=args.seed,
    )
    if args.architecture is not None:
        from repro.core.faas_atlas import ARCHITECTURES, compare_architectures

        architectures = (
            ARCHITECTURES
            if args.architecture == "all"
            else (args.architecture,)
        )
        comparison = compare_architectures(
            jobs, config, architectures=architectures
        )
        print(comparison.to_table())
        print(
            f"hybrid routing: jobs <= {comparison.hybrid_read_threshold} "
            "reads go to functions"
        )
        return 0
    report = run_atlas(jobs, config)
    table = Table(
        ["metric", "value"],
        title=f"Atlas campaign — release {args.release}, "
        f"{'spot' if args.spot else 'on-demand'}, fleet<={args.fleet}"
        f"{', streamed' if args.streaming else ''}",
    )
    table.add_row(["instance type", report.instance.name])
    table.add_row(["jobs completed", report.n_jobs])
    table.add_row(["terminated early", report.n_terminated])
    table.add_row(["makespan (h)", f"{report.makespan_seconds / 3600:.2f}"])
    table.add_row(["throughput (jobs/h)", f"{report.throughput_jobs_per_hour:.1f}"])
    table.add_row(["STAR hours", f"{report.star_hours_actual:.1f}"])
    table.add_row(["STAR hours saved", f"{report.star_hours_saved:.1f}"])
    table.add_row(
        ["download GB saved", f"{report.download_bytes_saved / 1e9:.1f}"]
    )
    for stage, seconds in sorted(report.stage_seconds.items()):
        table.add_row([f"stage {stage} (h)", f"{seconds / 3600:.1f}"])
    table.add_row(["init overhead (s)", f"{report.init_overhead_seconds:.0f}"])
    table.add_row(["peak fleet", report.peak_fleet])
    table.add_row(["mean utilization", f"{report.mean_utilization:.2f}"])
    table.add_row(["spot interruptions", report.cost.n_interrupted])
    table.add_row(["jobs drained", report.jobs_drained])
    table.add_row(["work lost (h)", f"{report.work_lost_seconds / 3600:.1f}"])
    table.add_row(
        ["work saved by drain (h)", f"{report.work_saved_seconds / 3600:.1f}"]
    )
    table.add_row(["queue redeliveries", report.queue_redeliveries])
    if args.replicate:
        table.add_row(["jobs adopted", report.jobs_adopted])
        table.add_row(
            ["work recovered (h)", f"{report.work_recovered_seconds / 3600:.1f}"]
        )
    table.add_row(["job retries", report.total_retries])
    table.add_row(["jobs failed", report.n_failed])
    table.add_row(["total cost", f"${report.cost.total_usd:.2f}"])
    print(table.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.journal import JournalIncompatible
    from repro.core.resilience import RetryPolicy
    from repro.experiments.chaos import (
        ChaosSpec,
        FaasChaosSpec,
        KillInstanceSpec,
        ResumeChaosSpec,
        run_chaos,
        run_faas_chaos,
        run_kill_instance_chaos,
        run_resume_chaos,
    )

    if args.stream and not args.resume:
        print("error: --stream requires --resume", file=sys.stderr)
        return 2
    if args.kill_instance and (args.resume or args.stream):
        print(
            "error: --kill-instance is its own scenario; drop "
            "--resume/--stream",
            file=sys.stderr,
        )
        return 2
    if args.faas and (args.resume or args.stream or args.kill_instance):
        print(
            "error: --faas is its own scenario; drop "
            "--resume/--stream/--kill-instance",
            file=sys.stderr,
        )
        return 2
    if args.faas:
        result = run_faas_chaos(FaasChaosSpec(seed=args.seed))
        print(result.to_table())
        return 0 if result.passed else 1
    if args.kill_instance:
        result = run_kill_instance_chaos(
            KillInstanceSpec(seed=args.seed)
        )
        print(result.to_table())
        return 0 if result.passed else 1
    if args.resume:
        try:
            result = run_resume_chaos(
                ResumeChaosSpec(
                    n_accessions=args.accessions,
                    seed=args.seed,
                    journal_path=(
                        Path(args.journal) if args.journal is not None else None
                    ),
                    streaming=args.stream,
                )
            )
        except JournalIncompatible as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.to_table())
        return 0 if result.passed else 1

    result = run_chaos(
        ChaosSpec(
            n_accessions=args.accessions,
            workers=args.workers,
            max_parallel=args.max_parallel,
            seed=args.seed,
            fault_plan_text=args.fault_plan,
            retry=RetryPolicy(
                max_attempts=args.retries, base_delay=0.01, max_delay=0.05
            ),
        )
    )
    print(result.to_table())
    return 0 if result.passed else 1


def _batch_options(args: argparse.Namespace, journal=None):
    """Map CLI flags onto :class:`BatchOptions` — the one place where
    command-line spellings meet run_batch's vocabulary."""
    from repro.core.pipeline import BatchOptions

    return BatchOptions(
        max_parallel=1 if args.stream else args.max_parallel,
        journal=journal if journal is not None else args.journal,
        resume=args.resume,
        streaming=args.stream,
        prefetch_depth=args.prefetch_depth,
        chunk_reads=args.chunk_reads,
        shard_checkpoints=getattr(args, "shard_checkpoints", False),
    )


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from pathlib import Path
    from tempfile import TemporaryDirectory

    from repro.core.early_stopping import EarlyStoppingPolicy
    from repro.core.journal import JournalIncompatible, RunJournal
    from repro.core.pipeline import (
        PipelineConfig,
        RunStatus,
        TranscriptomicsAtlasPipeline,
        drain_on_signals,
    )
    from repro.util.tables import Table

    if args.resume and args.journal is None:
        print("error: --resume requires --journal PATH", file=sys.stderr)
        return 2
    if args.stream and args.max_parallel > 1:
        print(
            "error: --stream overlaps stages, not accessions; "
            "drop --max-parallel",
            file=sys.stderr,
        )
        return 2
    if args.journal_s3 is not None and args.journal is None:
        print(
            "error: --journal-s3 replicates a local journal; add "
            "--journal PATH",
            file=sys.stderr,
        )
        return 2
    if args.shard_checkpoints and args.journal is None:
        print(
            "error: --shard-checkpoints requires --journal PATH",
            file=sys.stderr,
        )
        return 2
    if args.shard_checkpoints and args.stream:
        print(
            "error: --shard-checkpoints is a non-streaming feature; "
            "drop --stream",
            file=sys.stderr,
        )
        return 2
    if args.adopt and (args.journal_s3 is None or not args.resume):
        print(
            "error: --adopt reconstructs the journal from S3; it needs "
            "--journal-s3 DIR and --resume",
            file=sys.stderr,
        )
        return 2

    from repro.experiments.chaos import build_demo_inputs

    aligner, repo, accessions = build_demo_inputs(
        args.accessions,
        n_reads=args.reads,
        seed=args.seed,
    )
    config = PipelineConfig(
        early_stopping=EarlyStoppingPolicy(min_reads=20),
        write_outputs=False,
        workers=args.workers,
        drain_deadline=args.drain_deadline,
    )
    journal = None
    if args.journal_s3 is not None:
        from repro.cloud.s3 import S3Service
        from repro.core.replication import (
            ReplicatedJournal,
            reconstruct_journal,
        )

        bucket = S3Service(root=Path(args.journal_s3)).create_bucket(
            "pipeline-journal"
        )
        if args.adopt:
            # a different instance is taking over: rebuild the local
            # journal from the replicated segments before replaying it
            reconstruct_journal(bucket, "batch", Path(args.journal))
        journal = ReplicatedJournal(Path(args.journal), bucket, "batch")
    with TemporaryDirectory(prefix="repro-pipeline-") as tmp:
        with TranscriptomicsAtlasPipeline(
            repo, aligner, Path(tmp), config=config
        ) as pipeline:
            try:
                # SIGTERM/SIGINT gracefully drain the batch: no new
                # accessions are admitted, in-flight work is bounded by
                # --drain-deadline, and the journal stays resumable
                with drain_on_signals(pipeline, deadline=args.drain_deadline):
                    results = pipeline.run_batch(
                        accessions, _batch_options(args, journal=journal)
                    )
            except JournalIncompatible as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            finally:
                if journal is not None:
                    journal.close()
            health = pipeline.stage_health
            ckpt_summary = (
                pipeline.shard_checkpoint_summary()
                if args.shard_checkpoints
                else None
            )

    table = Table(
        ["accession", "status", "source", "retries", "mapped %"],
        title=f"Pipeline batch — {len(results)}/{len(accessions)} accessions",
    )
    for r in results:
        table.add_row(
            [
                r.accession,
                r.status.value,
                "journal" if r.resumed else "run",
                r.retries,
                f"{100 * r.mapped_fraction:.1f}"
                if r.status is not RunStatus.FAILED
                else "-",
            ]
        )
    print(table.render())
    if args.stream:
        stages = Table(
            ["stage", "items", "units", "busy s", "stall s", "mean queue"],
            title="Stream stages",
        )
        for name, items, units, busy, stall, mean_q in health.to_rows():
            stages.add_row(
                [name, items, units, f"{busy:.2f}", f"{stall:.2f}",
                 f"{mean_q:.1f}"]
            )
        print(stages.render())
        print(
            f"streamed {health.accessions_streamed} accessions — "
            f"{health.download_bytes_total} bytes total, "
            f"{health.download_bytes_saved} saved "
            f"({health.downloads_cancelled} downloads cancelled)"
        )
    if ckpt_summary is not None:
        print(
            f"shard checkpoints: {ckpt_summary['hits']} replayed, "
            f"{ckpt_summary['recorded']} recorded"
        )
    if args.journal is not None:
        replay = RunJournal(args.journal).replay()
        pending = replay.pending(accessions)
        print(
            f"journal: {args.journal} — {len(replay.terminal)} terminal, "
            f"{len(pending)} pending"
        )
        if pending:
            print(
                f"resume with: python -m repro pipeline --accessions "
                f"{args.accessions} --reads {args.reads} --seed {args.seed} "
                f"--journal {args.journal} --resume"
            )
    drained = sum(1 for r in results if r.status is RunStatus.DRAINED)
    incomplete = len(accessions) - len(results) + drained
    return 3 if incomplete else 0


def _cmd_full_atlas(args: argparse.Namespace) -> int:
    from repro.experiments.full_atlas import run_full_atlas

    result = run_full_atlas(n_files=args.files, fleet=args.fleet, seed=args.seed)
    print(result.to_table())
    return 0


def _cmd_diagrams(args: argparse.Namespace) -> int:
    from repro.experiments.diagrams import diagrams_report

    print(diagrams_report())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import ReportScale, generate_report

    scale = ReportScale.quick() if args.quick else None
    text = generate_report(seed=args.seed, scale=scale)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(text)} bytes)")
    else:
        print(text)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.atlas import AtlasConfig
    from repro.core.planner import PlannerConstraints, plan_campaign
    from repro.experiments.corpus import CorpusSpec, generate_corpus

    jobs = generate_corpus(CorpusSpec(n_runs=args.jobs), rng=args.seed)
    plan = plan_campaign(
        jobs,
        PlannerConstraints(deadline_hours=args.deadline),
        base_config=AtlasConfig(instance_name="r6a.2xlarge", seed=args.seed),
    )
    print(plan.to_table())
    return 0 if plan.feasible else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Optimizing STAR Aligner for High Throughput "
        "Computing in the Cloud' (CLUSTER 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig3", help="release 108 vs 111 STAR times (Fig. 3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rows", type=int, default=None, help="limit printed rows")
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("fig4", help="early-stopping savings replay (Fig. 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threshold", type=float, default=0.30)
    p.add_argument("--check", type=float, default=0.10)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("mini-fig3", help="Fig. 3 mechanisms with the real aligner")
    p.add_argument("--reads", type=int, default=400)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="alignment worker processes (>1 uses the shared-memory engine)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="content-addressed index cache directory (repeat runs mmap-load)",
    )
    p.set_defaults(fn=_cmd_mini_fig3)

    p = sub.add_parser(
        "index", help="content-addressed genome index cache (build + report)"
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=".repro-index-cache",
        help="cache root directory",
    )
    p.add_argument(
        "--build",
        action="store_true",
        help="build (or mmap-load, on a hit) the release index into the cache",
    )
    p.add_argument("--release", type=int, default=111, choices=range(106, 113))
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(fn=_cmd_index)

    p = sub.add_parser("config-table", help="index sizes per Ensembl release")
    p.set_defaults(fn=_cmd_config_table)

    p = sub.add_parser("calibrate", help="show derived model constants")
    p.set_defaults(fn=_cmd_calibrate)

    p = sub.add_parser("architecture", help="fleet-size scaling sweep")
    p.add_argument("--jobs", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_architecture)

    p = sub.add_parser(
        "faas-crossover",
        help="serverless vs instance-fleet cost crossover sweep",
    )
    p.add_argument("--jobs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_faas_crossover)

    p = sub.add_parser("ablation", help="early-stopping operating-point sweep")
    p.add_argument("--corpus", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_ablation)

    p = sub.add_parser("pseudo", help="applicability to pseudo-aligners")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_pseudo)

    p = sub.add_parser("hpc", help="fixed-cluster (SLURM-like) campaign")
    p.add_argument("--jobs", type=int, default=120)
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_hpc)

    p = sub.add_parser(
        "full-atlas", help="the full 7216-file / 17TB campaign, 4 variants"
    )
    p.add_argument("--files", type=int, default=7216)
    p.add_argument("--fleet", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_full_atlas)

    p = sub.add_parser("diagrams", help="Figs. 1-2 as structure-derived text")
    p.set_defaults(fn=_cmd_diagrams)

    p = sub.add_parser("report", help="regenerate every experiment in one document")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true", help="reduced workload sizes")
    p.add_argument("--output", type=str, default=None, help="write to a file")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("plan", help="cheapest config meeting a deadline")
    p.add_argument("--jobs", type=int, default=120)
    p.add_argument("--deadline", type=float, default=6.0, help="hours")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("atlas", help="cloud atlas campaign")
    p.add_argument("--jobs", type=int, default=120)
    p.add_argument("--spot", action="store_true")
    p.add_argument(
        "--streaming",
        action="store_true",
        help="overlap download/decode with STAR per job; early stops "
        "cancel the in-flight download",
    )
    p.add_argument("--release", type=int, default=111, choices=range(106, 113))
    p.add_argument("--fleet", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="max attempts per job (RetryPolicy.max_attempts)",
    )
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="scripted faults, e.g. 'prefetch:SRR9000001:transient*2'",
    )
    p.add_argument(
        "--no-drain",
        action="store_true",
        help="ignore the 120 s spot notice (rely on the visibility "
        "timeout alone, the pre-drain behaviour)",
    )
    p.add_argument(
        "--replicate",
        action="store_true",
        help="replicate per-job progress to S3 under a fencing-token "
        "lease so surviving instances adopt interrupted jobs mid-STAR",
    )
    p.add_argument(
        "--architecture",
        choices=["asg", "faas", "hybrid", "all"],
        default=None,
        help="compare architectures on the same accession set: the ASG "
        "instance fleet, serverless scatter-gather functions, or the "
        "size-routed hybrid ('all' runs every variant)",
    )
    p.set_defaults(fn=_cmd_atlas)

    p = sub.add_parser(
        "chaos", help="fault-injected pipeline run vs fault-free reference"
    )
    p.add_argument("--accessions", type=int, default=12)
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="alignment worker processes (>1 also kills an engine worker)",
    )
    p.add_argument("--max-parallel", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--retries", type=int, default=3)
    p.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        help="override the default scripted fault plan",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="run the kill-mid-batch → journal-resume scenario instead",
    )
    p.add_argument(
        "--journal",
        type=str,
        default=None,
        help="journal path for --resume (default: a temp file)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="with --resume: victim and resumed batch use the streaming "
        "DAG (kill-mid-stream scenario)",
    )
    p.add_argument(
        "--kill-instance",
        action="store_true",
        help="SIGKILL a whole worker instance mid-batch; a second "
        "instance adopts via the S3-replicated journal + lease and the "
        "merged results must match an uninterrupted reference",
    )
    p.add_argument(
        "--faas",
        action="store_true",
        help="kill the serverless driver mid-scatter and crash live "
        "function invocations on the adopting run; adopted shards must "
        "merge byte-identically to an uninterrupted reference",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "pipeline",
        help="journaled pipeline batch with checkpoint/resume and "
        "graceful SIGTERM/SIGINT drain",
    )
    p.add_argument("--accessions", type=int, default=6)
    p.add_argument("--reads", type=int, default=100, help="reads per accession")
    p.add_argument(
        "--workers", type=int, default=1, help="alignment worker processes"
    )
    p.add_argument("--max-parallel", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--journal",
        type=str,
        default=None,
        help="crash-consistent run journal (append-only JSONL)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the journal first; exit 2 if its config hash differs",
    )
    p.add_argument(
        "--drain-deadline",
        type=float,
        default=30.0,
        help="seconds granted to in-flight work after SIGTERM/SIGINT",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="overlap download, decode, and alignment via the streaming "
        "DAG (implies --max-parallel 1)",
    )
    p.add_argument(
        "--prefetch-depth",
        type=int,
        default=1,
        help="accessions downloaded ahead of the one aligning",
    )
    p.add_argument(
        "--chunk-reads",
        type=int,
        default=256,
        help="reads per streamed chunk handed to the aligner",
    )
    p.add_argument(
        "--journal-s3",
        type=str,
        default=None,
        help="replicate the journal to a simulated S3 bucket rooted at "
        "this directory (segments + manifest + tail; requires --journal)",
    )
    p.add_argument(
        "--shard-checkpoints",
        action="store_true",
        help="journal completed align shards so a resume re-dispatches "
        "only unfinished shards (requires --journal)",
    )
    p.add_argument(
        "--adopt",
        action="store_true",
        help="with --journal-s3 and --resume: reconstruct the journal "
        "from S3 first, adopting a dead instance's batch",
    )
    p.set_defaults(fn=_cmd_pipeline)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away — not an error; park
        # stdout on /dev/null so the interpreter-exit flush stays quiet
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
