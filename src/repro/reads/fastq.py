"""FASTQ record model and streaming I/O.

Supports plain and gzipped files, Sanger (Phred+33) quality encoding, and
both eager (`read_fastq`) and streaming (`iter_fastq`) parsing — STAR and
``fasterq-dump`` both stream, and the aligner in :mod:`repro.align` does too.
"""

from __future__ import annotations

import gzip
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.genome.alphabet import decode, encode

PHRED_OFFSET = 33
MAX_PHRED = 41


@dataclass
class FastqRecord:
    """One read: identifier, encoded sequence, numeric Phred qualities."""

    read_id: str
    sequence: np.ndarray  # uint8 base codes
    qualities: np.ndarray  # uint8 Phred scores (not ASCII)

    def __post_init__(self) -> None:
        self.sequence = np.asarray(self.sequence, dtype=np.uint8)
        self.qualities = np.asarray(self.qualities, dtype=np.uint8)
        if self.sequence.shape != self.qualities.shape:
            raise ValueError(
                f"read {self.read_id}: sequence length {self.sequence.size} != "
                f"quality length {self.qualities.size}"
            )

    @property
    def length(self) -> int:
        return int(self.sequence.size)

    @property
    def sequence_str(self) -> str:
        return decode(self.sequence)

    @property
    def quality_str(self) -> str:
        return (self.qualities + PHRED_OFFSET).tobytes().decode("ascii")

    @property
    def mean_quality(self) -> float:
        return float(self.qualities.mean()) if self.qualities.size else 0.0

    @classmethod
    def from_strings(cls, read_id: str, sequence: str, quality: str) -> "FastqRecord":
        """Build a record from FASTQ text fields."""
        q = np.frombuffer(quality.encode("ascii"), dtype=np.uint8)
        if (q < PHRED_OFFSET).any():
            raise ValueError(f"read {read_id}: quality characters below Phred+33 range")
        return cls(read_id, encode(sequence), (q - PHRED_OFFSET).astype(np.uint8))


def _open_text(path: Path | str, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def iter_fastq(path: Path | str) -> Iterator[FastqRecord]:
    """Stream records from a FASTQ file, validating 4-line framing."""
    with _open_text(path, "r") as fh:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header.startswith("@"):
                raise ValueError(f"{path}: expected '@' header, got {header!r}")
            sequence = fh.readline().rstrip("\n")
            plus = fh.readline().rstrip("\n")
            quality = fh.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise ValueError(f"{path}: malformed separator line {plus!r}")
            if len(sequence) != len(quality):
                raise ValueError(
                    f"{path}: sequence/quality length mismatch in {header!r}"
                )
            yield FastqRecord.from_strings(header[1:].split()[0], sequence, quality)


def read_fastq(path: Path | str) -> list[FastqRecord]:
    """Eagerly read a whole FASTQ file."""
    return list(iter_fastq(path))


def write_fastq(records: Iterable[FastqRecord], path: Path | str) -> int:
    """Write records to a (gzipped if ``.gz``) FASTQ file; returns the count."""
    n = 0
    with _open_text(path, "w") as fh:
        for rec in records:
            fh.write(f"@{rec.read_id}\n{rec.sequence_str}\n+\n{rec.quality_str}\n")
            n += 1
    return n


def fastq_byte_size(records: Iterable[FastqRecord]) -> int:
    """Exact uncompressed FASTQ byte size of ``records`` without writing them."""
    total = 0
    for rec in records:
        total += 1 + len(rec.read_id) + 1  # @id\n
        total += rec.length + 1  # seq\n
        total += 2  # +\n
        total += rec.length + 1  # qual\n
    return total
