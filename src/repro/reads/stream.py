"""Chunked streaming over SRA containers: the reads side of the DAG.

The streaming pipeline overlaps download, decompression, and alignment
instead of running ``prefetch → fasterq-dump → align`` to completion one
step at a time.  This module supplies the reads-layer machinery:

* :func:`iter_fastq_chunks` / :func:`iter_chunks` — the chunk API that
  feeds the engine's batch queue;
* :class:`SraStream` — an incremental parser that turns a *byte-chunk*
  download of an ``.sra`` container into FASTQ record chunks as they
  decompress, with mid-stream cancellation (the early-stopping hook that
  saves download bytes, not just align seconds) and exact byte
  accounting;
* :class:`ThrottledRepository` — a repository wrapper that simulates
  network transfer time, used by the stream benchmark and tests to make
  the overlap measurable.

Chunk boundaries never affect results: the batch alignment core is
boundary-independent, so a streamed run is byte-identical to the
sequential path no matter how the bytes arrived.
"""

from __future__ import annotations

import itertools
import json
import struct
import time
import zlib
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TypeVar

from repro.reads.fastq import FastqRecord, iter_fastq
from repro.reads.library import LibraryType
from repro.reads.sra import SraRepository

T = TypeVar("T")

_MAGIC_SINGLE = b"SRAR"
_MAGIC_PAIRED = b"SRAP"
_SUPPORTED_VERSION = 1
_HEADER_PREFIX_LEN = 4 + struct.calcsize("<HI")

#: default records per streamed chunk (the unit the align stage consumes)
DEFAULT_CHUNK_READS = 256
#: default bytes per download chunk (the unit the prefetch stage moves)
DEFAULT_CHUNK_BYTES = 64 * 1024


def iter_chunks(items: Iterable[T], size: int) -> Iterator[list[T]]:
    """Re-chunk any iterable into lists of ``size`` items (last may be short)."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    it = iter(items)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


def iter_fastq_chunks(
    path: Path | str, chunk_reads: int = DEFAULT_CHUNK_READS
) -> Iterator[list[FastqRecord]]:
    """Stream a FASTQ file as record chunks (the pipeline's chunk API)."""
    return iter_chunks(iter_fastq(path), chunk_reads)


class ThrottledRepository:
    """A repository wrapper that charges simulated transfer time.

    ``fetch_bytes`` (the sequential ``prefetch`` path) sleeps the whole
    transfer up front; ``fetch_chunks`` (the streamed path) sleeps per
    chunk — so a cancelled stream genuinely avoids the un-downloaded
    remainder, and overlap against align time is measurable in wall
    clock.  ``sleep`` is injectable for tests.
    """

    def __init__(
        self,
        repository: SraRepository,
        *,
        bandwidth_bytes_per_s: float = 10e6,
        latency_seconds: float = 0.0,
        sleep=time.sleep,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth_bytes_per_s must be positive")
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        self.repository = repository
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.latency_seconds = latency_seconds
        self.sleep = sleep

    def transfer_seconds(self, n_bytes: int) -> float:
        """Simulated seconds to move ``n_bytes`` (excluding latency)."""
        return n_bytes / self.bandwidth_bytes_per_s

    def fetch_bytes(self, accession: str) -> bytes:
        """Whole-archive fetch, paying the full transfer time up front."""
        blob = self.repository.fetch_bytes(accession)
        self.sleep(self.latency_seconds + self.transfer_seconds(len(blob)))
        return blob

    def fetch_chunks(
        self, accession: str, chunk_bytes: int = DEFAULT_CHUNK_BYTES
    ) -> Iterator[bytes]:
        """Chunked fetch, paying transfer time per chunk as it streams."""
        blob = self.repository.fetch_bytes(accession)
        if self.latency_seconds:
            self.sleep(self.latency_seconds)
        for start in range(0, len(blob), chunk_bytes):
            chunk = blob[start : start + chunk_bytes]
            self.sleep(self.transfer_seconds(len(chunk)))
            yield chunk

    def archive_bytes(self, accession: str) -> int:
        """Archive size (a metadata query — no transfer time charged)."""
        return len(self.repository.fetch_bytes(accession))

    def accessions(self) -> list[str]:
        """Delegate to the wrapped repository."""
        return self.repository.accessions()

    def deposit(self, archive):
        """Delegate to the wrapped repository."""
        return self.repository.deposit(archive)

    def __contains__(self, accession: str) -> bool:
        return accession in self.repository


class SraStream:
    """Incrementally download and parse one accession's ``.sra`` archive.

    Call :meth:`open` to pull bytes until the container header is parsed
    (``paired``/``n_reads``/``library`` become available — the align
    stage needs the read total before the payload finishes), then
    iterate :meth:`chunks`: each item is a ``list[FastqRecord]`` for
    single-end archives or a ``(mate1, mate2)`` list pair for paired
    ones.  Records are parsed with the same semantics as the sequential
    ``fasterq-dump → iter_fastq`` path (read ids cut at the first
    whitespace), and ``fastq_bytes`` accumulates the exact size the
    dumped FASTQ file(s) would have had on disk.

    :meth:`cancel` stops the download at the next chunk boundary;
    ``bytes_saved`` then reports what never moved — the quantity the
    early-stopping report claims.
    """

    def __init__(
        self,
        repository,
        accession: str,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        chunk_reads: int = DEFAULT_CHUNK_READS,
    ) -> None:
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if chunk_reads < 1:
            raise ValueError("chunk_reads must be >= 1")
        self.repository = repository
        self.accession = accession
        self.chunk_bytes = chunk_bytes
        self.chunk_reads = chunk_reads
        #: set by :meth:`open`
        self.paired = False
        self.n_reads = 0  # reads (single-end) or pairs (paired)
        self.library: LibraryType | None = None
        self.total_bytes = 0
        #: running accounting
        self.bytes_downloaded = 0
        self.fastq_bytes = 0
        self.records_out = 0
        self.cancelled = False
        self._finished = False
        self._byte_iter: Iterator[bytes] | None = None
        self._decomp = zlib.decompressobj()
        self._text = ""
        self._lines: list[str] = []

    # -- byte side -----------------------------------------------------------

    def _open_byte_iter(self) -> Iterator[bytes]:
        repo = self.repository
        if hasattr(repo, "fetch_chunks"):
            return iter(repo.fetch_chunks(self.accession, self.chunk_bytes))
        blob = repo.fetch_bytes(self.accession)
        return (
            blob[i : i + self.chunk_bytes]
            for i in range(0, len(blob), self.chunk_bytes)
        )

    def _archive_bytes(self) -> int:
        repo = self.repository
        if hasattr(repo, "archive_bytes"):
            return int(repo.archive_bytes(self.accession))
        return len(repo.fetch_bytes(self.accession))

    @property
    def bytes_saved(self) -> int:
        """Bytes the cancellation avoided downloading (0 while streaming)."""
        if not (self.cancelled or self._finished):
            return 0
        return max(0, self.total_bytes - self.bytes_downloaded)

    def cancel(self) -> None:
        """Stop downloading at the next chunk boundary (idempotent)."""
        self.cancelled = True

    # -- header --------------------------------------------------------------

    def open(self) -> "SraStream":
        """Fetch and parse the container header; returns ``self``.

        Raises the same :class:`ValueError` family as the eager
        :class:`~repro.reads.sra.SraArchive` parser on bad magic or an
        unsupported version, so failure semantics match the sequential
        ``fasterq-dump`` step.
        """
        self.total_bytes = self._archive_bytes()
        self._byte_iter = self._open_byte_iter()
        buffer = b""
        while len(buffer) < _HEADER_PREFIX_LEN:
            buffer += self._next_bytes()
        magic = buffer[:4]
        if magic == _MAGIC_PAIRED:
            self.paired = True
        elif magic != _MAGIC_SINGLE:
            raise ValueError("not an SRA archive (bad magic)")
        version, header_len = struct.unpack_from("<HI", buffer, 4)
        if version != _SUPPORTED_VERSION:
            raise ValueError(f"unsupported SRA archive version {version}")
        while len(buffer) < _HEADER_PREFIX_LEN + header_len:
            buffer += self._next_bytes()
        header = json.loads(
            buffer[_HEADER_PREFIX_LEN : _HEADER_PREFIX_LEN + header_len]
        )
        self.library = LibraryType(header["library"])
        self.n_reads = int(
            header["n_pairs"] if self.paired else header["n_reads"]
        )
        self._ingest(buffer[_HEADER_PREFIX_LEN + header_len :])
        return self

    def _next_bytes(self) -> bytes:
        assert self._byte_iter is not None
        chunk = next(self._byte_iter, None)
        if chunk is None:
            raise ValueError(
                f"truncated SRA archive for {self.accession!r}"
            )
        self.bytes_downloaded += len(chunk)
        return chunk

    # -- payload -------------------------------------------------------------

    def _ingest(self, data: bytes) -> None:
        """Feed compressed payload bytes through the incremental inflater."""
        if data:
            self._text += self._decomp.decompress(data).decode("ascii")
        parts = self._text.split("\n")
        self._text = parts.pop()
        self._lines.extend(parts)

    def _group_size(self) -> int:
        return 8 if self.paired else 4

    def _take_records(self, n_groups: int):
        """Pop ``n_groups`` complete FASTQ line groups into record lists."""
        group = self._group_size()
        lines = self._lines[: n_groups * group]
        del self._lines[: n_groups * group]
        self.fastq_bytes += sum(len(line) + 1 for line in lines)
        records: list[FastqRecord] = []
        mate2: list[FastqRecord] = []
        for i in range(0, len(lines), 4):
            header, seq, plus, qual = lines[i : i + 4]
            if not header.startswith("@"):
                raise ValueError(
                    f"{self.accession}: expected '@' header, got {header!r}"
                )
            if not plus.startswith("+"):
                raise ValueError(
                    f"{self.accession}: malformed separator line {plus!r}"
                )
            record = FastqRecord.from_strings(
                header[1:].split()[0], seq, qual
            )
            # paired payloads interleave mates: 4 lines each, mate1 first
            if self.paired and (i // 4) % 2 == 1:
                mate2.append(record)
            else:
                records.append(record)
        self.records_out += len(records)
        if self.paired:
            return records, mate2
        return records

    def chunks(self) -> Iterator:
        """Yield record chunks as payload bytes arrive (see class doc)."""
        if self._byte_iter is None:
            self.open()
        group = self._group_size()
        per_chunk = self.chunk_reads * group
        while True:
            while len(self._lines) >= per_chunk:
                yield self._take_records(self.chunk_reads)
            if self.cancelled:
                return
            chunk = next(self._byte_iter, None)
            if chunk is None:
                break
            self.bytes_downloaded += len(chunk)
            self._ingest(chunk)
        # end of stream: flush the inflater and validate framing
        self._text += self._decomp.flush().decode("ascii")
        if self._text:
            parts = self._text.split("\n")
            self._text = parts.pop()
            self._lines.extend(parts)
        if self._text:
            raise ValueError(
                f"corrupt SRA payload for {self.accession!r}: "
                "unterminated final line"
            )
        if len(self._lines) % group != 0:
            raise ValueError(
                f"corrupt SRA payload for {self.accession!r}: FASTQ line "
                f"count not divisible by {group}"
            )
        while len(self._lines) >= per_chunk:
            yield self._take_records(self.chunk_reads)
        if self._lines:
            yield self._take_records(len(self._lines) // group)
        self._finished = True
        if not self.cancelled and self.records_out != self.n_reads:
            raise ValueError(
                f"corrupt SRA archive: header says {self.n_reads} "
                f"{'pairs' if self.paired else 'reads'}, payload has "
                f"{self.records_out}"
            )
