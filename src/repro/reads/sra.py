"""Mock SRA container format, repository, and the two NCBI tools.

The real pipeline's first two steps are ``prefetch`` (download ``.sra``)
and ``fasterq-dump`` (convert to FASTQ).  NCBI is unreachable here, so this
module defines a self-contained ``.sra`` container with the same tool
interface and round-trip guarantees:

* :class:`SraArchive` — header (accession, library type, read geometry)
  plus a zlib-compressed FASTQ payload;
* :class:`SraRepository` — an accession-keyed store playing the role of
  the NCBI repository (backed by a directory or kept in memory);
* :func:`prefetch` / :func:`fasterq_dump` — the tool front-ends used by
  :class:`repro.core.pipeline.TranscriptomicsAtlasPipeline`.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.reads.fastq import FastqRecord, iter_fastq, write_fastq
from repro.reads.library import LibraryType, SraRunMetadata

if TYPE_CHECKING:
    from repro.core.resilience import FaultPlan

_MAGIC = b"SRAR"
_VERSION = 1


@dataclass
class SraArchive:
    """One SRA run: metadata header + compressed read payload."""

    accession: str
    library: LibraryType
    records: list[FastqRecord]

    @property
    def n_reads(self) -> int:
        return len(self.records)

    @property
    def read_length(self) -> int:
        return self.records[0].length if self.records else 0

    def _fastq_bytes(self) -> bytes:
        buf = io.StringIO()
        for rec in self.records:
            buf.write(f"@{rec.read_id}\n{rec.sequence_str}\n+\n{rec.quality_str}\n")
        return buf.getvalue().encode("ascii")

    def to_bytes(self) -> bytes:
        """Serialize: MAGIC | version | header-length | header-json | zlib(fastq)."""
        header = json.dumps(
            {
                "accession": self.accession,
                "library": self.library.value,
                "n_reads": self.n_reads,
                "read_length": self.read_length,
            }
        ).encode("ascii")
        payload = zlib.compress(self._fastq_bytes(), level=6)
        return (
            _MAGIC
            + struct.pack("<HI", _VERSION, len(header))
            + header
            + payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SraArchive":
        """Parse a serialized archive, validating magic and version."""
        if data[:4] != _MAGIC:
            raise ValueError("not an SRA archive (bad magic)")
        version, header_len = struct.unpack_from("<HI", data, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported SRA archive version {version}")
        header_start = 4 + struct.calcsize("<HI")
        header = json.loads(data[header_start : header_start + header_len])
        fastq_text = zlib.decompress(data[header_start + header_len :]).decode("ascii")
        records: list[FastqRecord] = []
        lines = fastq_text.splitlines()
        if len(lines) % 4 != 0:
            raise ValueError("corrupt SRA payload: FASTQ line count not divisible by 4")
        for i in range(0, len(lines), 4):
            records.append(
                FastqRecord.from_strings(lines[i][1:], lines[i + 1], lines[i + 3])
            )
        archive = cls(
            accession=header["accession"],
            library=LibraryType(header["library"]),
            records=records,
        )
        if archive.n_reads != header["n_reads"]:
            raise ValueError(
                f"corrupt SRA archive: header says {header['n_reads']} reads, "
                f"payload has {archive.n_reads}"
            )
        return archive

    def metadata(self, *, tissue: str = "unknown") -> SraRunMetadata:
        """Derive the repository catalog entry for this archive."""
        blob = self.to_bytes()
        fastq_size = len(self._fastq_bytes())
        return SraRunMetadata(
            accession=self.accession,
            library=self.library,
            n_reads=self.n_reads,
            read_length=self.read_length,
            sra_bytes=len(blob),
            fastq_bytes=fastq_size,
            tissue=tissue,
        )


class SraRepository:
    """Accession-keyed archive store standing in for the NCBI SRA.

    In-memory by default; pass ``root`` to persist archives as
    ``<root>/<accession>.sra`` files.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._blobs: dict[str, bytes] = {}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    def deposit(self, archive: SraArchive) -> SraRunMetadata:
        """Store an archive; returns its catalog metadata."""
        blob = archive.to_bytes()
        if self.root is not None:
            (self.root / f"{archive.accession}.sra").write_bytes(blob)
        else:
            self._blobs[archive.accession] = blob
        return archive.metadata()

    def accessions(self) -> list[str]:
        """All deposited accessions, sorted."""
        if self.root is not None:
            return sorted(p.stem for p in self.root.glob("*.sra"))
        return sorted(self._blobs)

    def fetch_bytes(self, accession: str) -> bytes:
        """Raw archive bytes for ``accession``; KeyError when absent."""
        if self.root is not None:
            path = self.root / f"{accession}.sra"
            if not path.exists():
                raise KeyError(f"accession {accession!r} not in repository")
            return path.read_bytes()
        if accession not in self._blobs:
            raise KeyError(f"accession {accession!r} not in repository")
        return self._blobs[accession]

    def fetch_chunks(self, accession: str, chunk_bytes: int = 65536):
        """Raw archive bytes as an iterator of chunks (the streaming path).

        The base implementation slices :meth:`fetch_bytes`; wrappers that
        model transfer time (:class:`~repro.reads.stream.ThrottledRepository`)
        override this to charge per chunk so cancellation saves real time.
        """
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        blob = self.fetch_bytes(accession)
        return (
            blob[i : i + chunk_bytes] for i in range(0, len(blob), chunk_bytes)
        )

    def archive_bytes(self, accession: str) -> int:
        """Size of the stored archive in bytes (a metadata query)."""
        if self.root is not None:
            path = self.root / f"{accession}.sra"
            if not path.exists():
                raise KeyError(f"accession {accession!r} not in repository")
            return path.stat().st_size
        return len(self.fetch_bytes(accession))

    def __contains__(self, accession: str) -> bool:
        try:
            self.fetch_bytes(accession)
        except KeyError:
            return False
        return True


def prefetch(
    repository: SraRepository,
    accession: str,
    dest_dir: Path | str,
    *,
    fault_plan: "FaultPlan | None" = None,
) -> Path:
    """Download an SRA container to ``dest_dir`` (pipeline step 1).

    Mirrors the NCBI tool's layout: ``<dest>/<accession>/<accession>.sra``.
    ``fault_plan`` lets the resilience harness script download failures
    (the real tool's most failure-prone step) before any bytes move.
    """
    if fault_plan is not None:
        fault_plan.check("prefetch", accession)
    dest = Path(dest_dir) / accession
    dest.mkdir(parents=True, exist_ok=True)
    out = dest / f"{accession}.sra"
    out.write_bytes(repository.fetch_bytes(accession))
    return out


def fasterq_dump(
    sra_path: Path | str,
    out_dir: Path | str,
    *,
    fault_plan: "FaultPlan | None" = None,
) -> Path:
    """Convert an SRA container to FASTQ (pipeline step 2).

    Returns the path of the produced ``<accession>.fastq`` file.
    """
    sra_path = Path(sra_path)
    if fault_plan is not None:
        fault_plan.check("fasterq_dump", sra_path.stem)
    archive = SraArchive.from_bytes(sra_path.read_bytes())
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / f"{archive.accession}.fastq"
    write_fastq(archive.records, out)
    return out


def load_archive(sra_path: Path | str) -> SraArchive:
    """Parse an on-disk ``.sra`` file into an :class:`SraArchive`."""
    return SraArchive.from_bytes(Path(sra_path).read_bytes())


def archive_from_fastq(
    accession: str, fastq_path: Path | str, library: LibraryType
) -> SraArchive:
    """Package an existing FASTQ file back into an archive (test utility)."""
    return SraArchive(accession, library, list(iter_fastq(fastq_path)))
