"""Sequencing-reads substrate: FASTQ, library metadata, simulator, mock SRA.

Covers pipeline steps 1 and 2 of the paper (Fig. 1): ``prefetch`` downloads
an SRA container, ``fasterq-dump`` converts it to FASTQ.  Since NCBI SRA is
unreachable here, :mod:`repro.reads.sra` implements a self-contained archive
format with the same tool interface, and :mod:`repro.reads.simulator`
generates the RNA-seq content (bulk poly-A and single-cell 3' libraries,
whose mapping-rate gap is what the early-stopping optimization exploits).
"""

from repro.reads.fastq import FastqRecord, read_fastq, write_fastq
from repro.reads.library import LibraryType, SampleProfile, SraRunMetadata
from repro.reads.paired import (
    PairedProfile,
    PairedSample,
    PairedSraArchive,
    fasterq_dump_paired,
    simulate_paired,
)
from repro.reads.simulator import ReadSimulator, SimulatorConfig
from repro.reads.sra import SraArchive, SraRepository, fasterq_dump, prefetch
from repro.reads.stream import (
    SraStream,
    ThrottledRepository,
    iter_chunks,
    iter_fastq_chunks,
)

__all__ = [
    "FastqRecord",
    "LibraryType",
    "PairedProfile",
    "PairedSample",
    "PairedSraArchive",
    "ReadSimulator",
    "SampleProfile",
    "SimulatorConfig",
    "SraArchive",
    "SraRepository",
    "SraRunMetadata",
    "SraStream",
    "ThrottledRepository",
    "fasterq_dump",
    "fasterq_dump_paired",
    "iter_chunks",
    "iter_fastq_chunks",
    "prefetch",
    "read_fastq",
    "simulate_paired",
    "write_fastq",
]
