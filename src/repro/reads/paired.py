"""Paired-end sequencing support.

Most SRA RNA-seq runs are paired-end: a cDNA *fragment* of a few hundred
bases is sequenced from both ends, giving mate 1 (the fragment's 5' end
on the transcript strand) and mate 2 (the reverse complement of its 3'
end).  This module adds:

* a fragment-based paired simulator built on the same transcript model as
  :class:`~repro.reads.simulator.ReadSimulator`;
* a paired ``.sra`` container (``SRAP`` magic) whose ``fasterq-dump``
  splits into ``_1.fastq`` / ``_2.fastq`` files, matching the real tool's
  ``--split-files`` layout.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.genome.alphabet import random_sequence, reverse_complement
from repro.reads.fastq import FastqRecord, write_fastq
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng

if TYPE_CHECKING:
    from repro.core.resilience import FaultPlan
from repro.util.validation import check_positive

_MAGIC_PAIRED = b"SRAP"
_VERSION = 1


@dataclass(frozen=True)
class PairedProfile:
    """Generation parameters for one paired-end sample."""

    library: LibraryType
    n_pairs: int
    read_length: int = 100
    insert_mean: float = 300.0
    insert_sd: float = 40.0
    error_rate: float = 0.002
    offtarget_fraction: float | None = None

    def __post_init__(self) -> None:
        check_positive("n_pairs", self.n_pairs)
        check_positive("read_length", self.read_length)
        check_positive("insert_mean", self.insert_mean)
        check_positive("insert_sd", self.insert_sd)
        if self.insert_mean < self.read_length:
            raise ValueError("insert_mean must be at least one read length")

    def single_end_view(self) -> SampleProfile:
        """The equivalent single-end profile (shared machinery)."""
        return SampleProfile(
            library=self.library,
            n_reads=self.n_pairs,
            read_length=self.read_length,
            error_rate=self.error_rate,
            offtarget_fraction=self.offtarget_fraction,
        )


@dataclass
class PairedSample:
    """Mate-1/mate-2 records plus generation truth."""

    mate1: list[FastqRecord]
    mate2: list[FastqRecord]
    true_gene: list[str | None]
    true_fragment: list[tuple[int, int] | None]  # transcript-coordinate span

    def __post_init__(self) -> None:
        if not (
            len(self.mate1) == len(self.mate2) == len(self.true_gene)
            == len(self.true_fragment)
        ):
            raise ValueError("paired sample arrays must have equal lengths")

    @property
    def n_pairs(self) -> int:
        return len(self.mate1)

    @property
    def on_target_fraction(self) -> float:
        if not self.true_gene:
            return 0.0
        return sum(g is not None for g in self.true_gene) / len(self.true_gene)


def simulate_paired(
    simulator: ReadSimulator,
    profile: PairedProfile,
    *,
    rng: np.random.Generator | int | None = None,
    read_id_prefix: str = "pair",
) -> PairedSample:
    """Generate a paired-end sample from a simulator's transcript set.

    Fragment starts are uniform on the transcript; the insert length is
    normal (clipped to [read_length, transcript length]).  Off-target
    pairs are two independent random reads — they should not map, and if
    they do they won't pair properly.
    """
    se_profile = profile.single_end_view()
    rng = ensure_rng(rng)
    expr_rng = derive_rng(rng, "expression")
    pick_rng = derive_rng(rng, "picks")
    err_rng = derive_rng(rng, "errors")
    qual_rng = derive_rng(rng, "quality")
    off_rng = derive_rng(rng, "offtarget")
    insert_rng = derive_rng(rng, "inserts")

    weights = simulator._expression_weights(expr_rng)
    transcripts = simulator._transcripts
    seqs = simulator._transcript_seqs
    n = profile.n_pairs
    L = profile.read_length
    is_off = pick_rng.random(n) < se_profile.effective_offtarget_fraction
    t_idx = pick_rng.choice(len(transcripts), size=n, p=weights)
    qual1 = simulator._qualities(n, L, qual_rng)
    qual2 = simulator._qualities(n, L, qual_rng)

    mate1: list[FastqRecord] = []
    mate2: list[FastqRecord] = []
    true_gene: list[str | None] = []
    true_fragment: list[tuple[int, int] | None] = []

    for i in range(n):
        rid = f"{read_id_prefix}.{i}"
        if is_off[i]:
            seq1 = random_sequence(L, off_rng, gc=0.5)
            seq2 = random_sequence(L, off_rng, gc=0.5)
            true_gene.append(None)
            true_fragment.append(None)
        else:
            ti = int(t_idx[i])
            tseq = seqs[ti]
            tlen = int(tseq.size)
            insert = int(
                np.clip(
                    insert_rng.normal(profile.insert_mean, profile.insert_sd),
                    L,
                    max(L, tlen),
                )
            )
            if tlen <= insert:
                start, insert = 0, tlen
            else:
                start = int(pick_rng.integers(0, tlen - insert + 1))
            fragment = tseq[start : start + insert]
            seq1 = fragment[:L].copy()
            tail = fragment[-L:] if fragment.size >= L else fragment
            seq2 = reverse_complement(tail)
            if seq1.size < L:  # degenerate short transcript: pad
                seq1 = np.concatenate(
                    [seq1, random_sequence(L - seq1.size, off_rng, gc=0.5)]
                )
            if seq2.size < L:
                seq2 = np.concatenate(
                    [seq2, random_sequence(L - seq2.size, off_rng, gc=0.5)]
                )
            seq1 = simulator._apply_errors(seq1, profile.error_rate, err_rng)
            seq2 = simulator._apply_errors(seq2, profile.error_rate, err_rng)
            true_gene.append(transcripts[ti].gene_id)
            true_fragment.append((start, start + insert))
        mate1.append(FastqRecord(f"{rid}/1", seq1, qual1[i]))
        mate2.append(FastqRecord(f"{rid}/2", seq2, qual2[i]))
    return PairedSample(mate1, mate2, true_gene, true_fragment)


@dataclass
class PairedSraArchive:
    """A paired-end SRA container (mate-interleaved payload)."""

    accession: str
    library: LibraryType
    mate1: list[FastqRecord]
    mate2: list[FastqRecord]

    def __post_init__(self) -> None:
        if len(self.mate1) != len(self.mate2):
            raise ValueError("mate lists must have equal length")

    @property
    def n_pairs(self) -> int:
        return len(self.mate1)

    def _payload(self) -> bytes:
        buf = io.StringIO()
        for r1, r2 in zip(self.mate1, self.mate2):
            for rec in (r1, r2):
                buf.write(f"@{rec.read_id}\n{rec.sequence_str}\n+\n{rec.quality_str}\n")
        return zlib.compress(buf.getvalue().encode("ascii"), level=6)

    def to_bytes(self) -> bytes:
        header = json.dumps(
            {
                "accession": self.accession,
                "library": self.library.value,
                "n_pairs": self.n_pairs,
            }
        ).encode("ascii")
        return _MAGIC_PAIRED + struct.pack("<HI", _VERSION, len(header)) + header + self._payload()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PairedSraArchive":
        if data[:4] != _MAGIC_PAIRED:
            raise ValueError("not a paired SRA archive (bad magic)")
        version, header_len = struct.unpack_from("<HI", data, 4)
        if version != _VERSION:
            raise ValueError(f"unsupported paired archive version {version}")
        start = 4 + struct.calcsize("<HI")
        header = json.loads(data[start : start + header_len])
        text = zlib.decompress(data[start + header_len :]).decode("ascii")
        lines = text.splitlines()
        if len(lines) % 8 != 0:
            raise ValueError("corrupt paired payload")
        mate1: list[FastqRecord] = []
        mate2: list[FastqRecord] = []
        for i in range(0, len(lines), 8):
            mate1.append(
                FastqRecord.from_strings(lines[i][1:], lines[i + 1], lines[i + 3])
            )
            mate2.append(
                FastqRecord.from_strings(
                    lines[i + 4][1:], lines[i + 5], lines[i + 7]
                )
            )
        archive = cls(
            accession=header["accession"],
            library=LibraryType(header["library"]),
            mate1=mate1,
            mate2=mate2,
        )
        if archive.n_pairs != header["n_pairs"]:
            raise ValueError("corrupt paired archive: pair count mismatch")
        return archive


def fasterq_dump_paired(
    sra_path: Path | str,
    out_dir: Path | str,
    *,
    fault_plan: "FaultPlan | None" = None,
) -> tuple[Path, Path]:
    """Split a paired archive into ``_1.fastq`` / ``_2.fastq`` files.

    Mirrors ``fasterq-dump --split-files``.
    """
    sra_path = Path(sra_path)
    if fault_plan is not None:
        fault_plan.check("fasterq_dump", sra_path.stem)
    archive = PairedSraArchive.from_bytes(sra_path.read_bytes())
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    p1 = out_dir / f"{archive.accession}_1.fastq"
    p2 = out_dir / f"{archive.accession}_2.fastq"
    write_fastq(archive.mate1, p1)
    write_fastq(archive.mate2, p2)
    return p1, p2
