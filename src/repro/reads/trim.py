"""Read trimming — the QC step real pipelines run before alignment.

A fastp/Trimmomatic-lite: 3' adapter removal by prefix match (with
mismatch tolerance), sliding-window quality trimming from the 3' end, and
a minimum-length filter.  The pipeline can run it between ``fasterq-dump``
and STAR; the simulator's adapter-contaminated reads give it real work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genome.alphabet import encode
from repro.reads.fastq import FastqRecord
from repro.util.validation import check_fraction, check_positive

#: Illumina TruSeq R1 adapter prefix (the classic contaminant)
DEFAULT_ADAPTER = "AGATCGGAAGAGC"


@dataclass(frozen=True)
class TrimConfig:
    """Trimming parameters (fastp-flavoured defaults)."""

    adapter: str = DEFAULT_ADAPTER
    #: max mismatch fraction when matching the adapter prefix
    adapter_mismatch_rate: float = 0.2
    #: minimum overlap with the adapter to trigger trimming
    min_adapter_overlap: int = 5
    #: sliding-window quality trim: window size and mean-quality floor
    quality_window: int = 4
    quality_floor: int = 15
    #: reads shorter than this after trimming are dropped
    min_length: int = 30

    def __post_init__(self) -> None:
        if not self.adapter:
            raise ValueError("adapter must be non-empty")
        check_fraction("adapter_mismatch_rate", self.adapter_mismatch_rate)
        check_positive("min_adapter_overlap", self.min_adapter_overlap)
        check_positive("quality_window", self.quality_window)
        check_positive("min_length", self.min_length)


@dataclass
class TrimStats:
    """Aggregate statistics of one trimming pass."""

    reads_in: int = 0
    reads_out: int = 0
    reads_dropped: int = 0
    adapters_trimmed: int = 0
    quality_trimmed: int = 0
    bases_in: int = 0
    bases_out: int = 0

    @property
    def bases_removed_fraction(self) -> float:
        if self.bases_in == 0:
            return 0.0
        return 1.0 - self.bases_out / self.bases_in

    def to_text(self) -> str:
        return (
            f"reads {self.reads_in} -> {self.reads_out} "
            f"({self.reads_dropped} dropped); "
            f"adapters trimmed {self.adapters_trimmed}, "
            f"quality-trimmed {self.quality_trimmed}; "
            f"bases removed {100 * self.bases_removed_fraction:.1f}%"
        )


class ReadTrimmer:
    """Applies adapter + quality trimming to read streams."""

    def __init__(self, config: TrimConfig | None = None) -> None:
        self.config = config or TrimConfig()
        self._adapter = encode(self.config.adapter)

    # -- individual operations ----------------------------------------------

    def find_adapter(self, sequence: np.ndarray) -> int | None:
        """Leftmost position where the adapter prefix starts, or None.

        Checks every 3' suffix of the read against the adapter's prefix of
        the same length, allowing ``adapter_mismatch_rate`` mismatches —
        the standard overlap-alignment-free heuristic.
        """
        cfg = self.config
        n = int(sequence.size)
        full = self._adapter
        # scan every start: read-through can begin anywhere in the read
        # (everything 3' of it is adapter + synthesis junk)
        for start in range(0, n - cfg.min_adapter_overlap + 1):
            overlap = min(n - start, full.size)
            window = sequence[start : start + overlap]
            mismatches = int((window != full[:overlap]).sum())
            if mismatches <= cfg.adapter_mismatch_rate * overlap:
                return start
        return None

    def quality_trim_point(self, qualities: np.ndarray) -> int:
        """Length to keep after 3' sliding-window quality trimming.

        Scans windows from the 3' end; the read is cut where the last
        window with mean quality >= floor ends.
        """
        cfg = self.config
        n = int(qualities.size)
        if n < cfg.quality_window:
            return n if qualities.size and qualities.mean() >= cfg.quality_floor else 0
        keep = n
        for end in range(n, cfg.quality_window - 1, -1):
            window = qualities[end - cfg.quality_window : end]
            if window.mean() >= cfg.quality_floor:
                return keep
            keep = end - 1
        return keep

    # -- record/stream level -----------------------------------------------

    def trim_record(
        self, record: FastqRecord, stats: TrimStats | None = None
    ) -> FastqRecord | None:
        """Trim one read; None when it falls below the length floor."""
        cfg = self.config
        seq, qual = record.sequence, record.qualities
        if stats is not None:
            stats.reads_in += 1
            stats.bases_in += int(seq.size)

        cut = self.find_adapter(seq)
        if cut is not None:
            seq, qual = seq[:cut], qual[:cut]
            if stats is not None:
                stats.adapters_trimmed += 1

        keep = self.quality_trim_point(qual)
        if keep < seq.size:
            seq, qual = seq[:keep], qual[:keep]
            if stats is not None:
                stats.quality_trimmed += 1

        if seq.size < cfg.min_length:
            if stats is not None:
                stats.reads_dropped += 1
            return None
        if stats is not None:
            stats.reads_out += 1
            stats.bases_out += int(seq.size)
        return FastqRecord(record.read_id, seq.copy(), qual.copy())

    def trim(self, records: list[FastqRecord]) -> tuple[list[FastqRecord], TrimStats]:
        """Trim a whole sample; returns (kept records, statistics)."""
        stats = TrimStats()
        kept = []
        for record in records:
            trimmed = self.trim_record(record, stats)
            if trimmed is not None:
                kept.append(trimmed)
        return kept, stats


def contaminate_with_adapter(
    records: list[FastqRecord],
    *,
    fraction: float = 0.3,
    adapter: str = DEFAULT_ADAPTER,
    rng: np.random.Generator | int | None = None,
) -> list[FastqRecord]:
    """Test/demo utility: splice adapter read-through into some reads.

    For each affected read, everything 3' of a random cut point is
    replaced by the adapter sequence followed by random synthesis junk —
    what the sequencer produces when the insert is shorter than the read.
    """
    from repro.genome.alphabet import random_sequence
    from repro.util.rng import ensure_rng

    check_fraction("fraction", fraction)
    rng = ensure_rng(rng)
    adapter_codes = encode(adapter)
    out: list[FastqRecord] = []
    for record in records:
        if rng.random() >= fraction or record.length < 20:
            out.append(record)
            continue
        cut = int(rng.integers(record.length // 2, record.length - 5))
        seq = record.sequence.copy()
        tail_len = record.length - cut
        adapter_part = adapter_codes[: min(adapter_codes.size, tail_len)]
        seq[cut : cut + adapter_part.size] = adapter_part
        junk = tail_len - adapter_part.size
        if junk > 0:
            seq[cut + adapter_part.size :] = random_sequence(junk, rng, gc=0.5)
        out.append(FastqRecord(record.read_id, seq, record.qualities.copy()))
    return out
