"""Sequencing-library metadata: library types and SRA run descriptors.

The paper's early-stopping analysis hinges on one library-level fact: the
runs it could safely terminate "turned out to be single cell sequencing
data", whose incomplete mRNA coverage yields low STAR mapping rates, while
bulk poly-A libraries map well.  ``LibraryType`` carries the expected
mapping-rate distribution for each class; the corpus generator and the
read simulator both consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_fraction, check_positive


class LibraryType(enum.Enum):
    """RNA-seq library preparation classes relevant to the pipeline."""

    BULK_POLYA = "bulk_polya"
    BULK_TOTAL = "bulk_total"
    SINGLE_CELL_3P = "single_cell_3p"

    @property
    def is_single_cell(self) -> bool:
        return self is LibraryType.SINGLE_CELL_3P


@dataclass(frozen=True)
class MappingRateProfile:
    """Beta-like description of a library class's terminal mapping rate.

    ``mean``/``spread`` parametrize where alignments of this class converge;
    the trajectory model in :mod:`repro.experiments.corpus` adds the early
    transient.  Values follow the paper's observed split: bulk libraries
    converge well above the 30% acceptance threshold, single-cell 3' ones
    (no complete mRNA coverage) converge far below it.
    """

    mean: float
    spread: float

    def __post_init__(self) -> None:
        check_fraction("mean", self.mean)
        check_positive("spread", self.spread)


#: Terminal mapping-rate profiles per library class.  Bulk poly-A maps in
#: the high 80s–90s; bulk total RNA a bit lower; single-cell 3' tag data
#: run through a bulk pipeline maps poorly (often <20%).
MAPPING_RATE_PROFILES: dict[LibraryType, MappingRateProfile] = {
    LibraryType.BULK_POLYA: MappingRateProfile(mean=0.90, spread=0.05),
    LibraryType.BULK_TOTAL: MappingRateProfile(mean=0.78, spread=0.08),
    LibraryType.SINGLE_CELL_3P: MappingRateProfile(mean=0.12, spread=0.06),
}


@dataclass(frozen=True)
class SampleProfile:
    """Generation-time description of a sample for the read simulator."""

    library: LibraryType
    n_reads: int
    read_length: int = 100
    error_rate: float = 0.002
    #: Fraction of reads drawn from outside the transcriptome (adapter,
    #: rRNA, genomic contamination) — the main driver of unmapped reads.
    offtarget_fraction: float | None = None

    def __post_init__(self) -> None:
        check_positive("n_reads", self.n_reads)
        check_positive("read_length", self.read_length)
        check_fraction("error_rate", self.error_rate)
        if self.offtarget_fraction is not None:
            check_fraction("offtarget_fraction", self.offtarget_fraction)

    @property
    def effective_offtarget_fraction(self) -> float:
        """Off-target fraction, defaulting from the library's mapping profile."""
        if self.offtarget_fraction is not None:
            return self.offtarget_fraction
        return 1.0 - MAPPING_RATE_PROFILES[self.library].mean


@dataclass(frozen=True)
class SraRunMetadata:
    """Catalog entry for one SRA run — what the SQS messages reference.

    ``sra_bytes`` is the compressed archive size; ``fastq_bytes`` the
    uncompressed FASTQ it dumps to (the paper weights Fig. 3 by FASTQ size).
    """

    accession: str
    library: LibraryType
    n_reads: int
    read_length: int
    sra_bytes: int
    fastq_bytes: int
    tissue: str = "unknown"

    def __post_init__(self) -> None:
        if not self.accession:
            raise ValueError("accession must be non-empty")
        check_positive("n_reads", self.n_reads)
        check_positive("read_length", self.read_length)
        check_positive("sra_bytes", self.sra_bytes)
        check_positive("fastq_bytes", self.fastq_bytes)

    @property
    def total_bases(self) -> int:
        return self.n_reads * self.read_length
