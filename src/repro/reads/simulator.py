"""RNA-seq read simulator.

Generates FASTQ reads from a genome + annotation with the two properties
the paper's optimizations depend on:

* reads from *transcripts* (possibly spanning splice junctions) that the
  aligner should map — their fraction sets the terminal mapping rate;
* *off-target* reads (random sequence: adapter dimers, rRNA, degraded
  material) that will not map — dominant in single-cell 3' libraries run
  through a bulk pipeline.

Expression follows a log-normal law over genes so GeneCounts output has a
realistic long tail for the DESeq2 stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.genome.alphabet import BASE_N, random_sequence
from repro.genome.annotation import Annotation, Transcript
from repro.genome.model import Assembly
from repro.reads.fastq import MAX_PHRED, FastqRecord
from repro.reads.library import SampleProfile
from repro.util.rng import derive_rng, ensure_rng
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs shared by all samples generated from one simulator instance."""

    #: log-normal sigma of per-gene expression (2.0 gives a realistic tail)
    expression_sigma: float = 1.5
    #: mean Phred score of simulated base qualities
    mean_quality: int = 36
    #: per-base probability that a simulated quality dips (sequencer noise)
    quality_dip_rate: float = 0.05

    def __post_init__(self) -> None:
        check_positive("expression_sigma", self.expression_sigma)
        if not 2 <= self.mean_quality <= MAX_PHRED:
            raise ValueError(f"mean_quality must be in [2, {MAX_PHRED}]")
        check_fraction("quality_dip_rate", self.quality_dip_rate)


@dataclass
class SimulatedSample:
    """Output bundle: reads plus the ground truth used to make them."""

    records: list[FastqRecord]
    #: per-read gene id, or None for off-target reads
    true_gene: list[str | None]
    #: per-read transcript offset (None for off-target)
    true_offset: list[int | None]
    expression: dict[str, float] = field(default_factory=dict)

    @property
    def n_reads(self) -> int:
        return len(self.records)

    @property
    def on_target_fraction(self) -> float:
        if not self.true_gene:
            return 0.0
        return sum(g is not None for g in self.true_gene) / len(self.true_gene)


class ReadSimulator:
    """Simulate RNA-seq samples from one (assembly, annotation) pair.

    Transcript sequences are extracted once at construction; per-sample
    generation is vectorized over reads.
    """

    def __init__(
        self,
        assembly: Assembly,
        annotation: Annotation,
        *,
        config: SimulatorConfig | None = None,
    ) -> None:
        self.assembly = assembly
        self.annotation = annotation
        self.config = config or SimulatorConfig()
        self._transcripts: list[Transcript] = list(annotation.transcripts)
        if not self._transcripts:
            raise ValueError("annotation has no transcripts to simulate from")
        self._transcript_seqs = [
            t.spliced_sequence(assembly) for t in self._transcripts
        ]

    def _expression_weights(self, rng: np.random.Generator) -> np.ndarray:
        """Draw per-transcript expression weights (log-normal, length-biased)."""
        levels = rng.lognormal(mean=0.0, sigma=self.config.expression_sigma,
                               size=len(self._transcripts))
        lengths = np.array([t.spliced_length for t in self._transcripts], dtype=float)
        weights = levels * lengths
        return weights / weights.sum()

    def _qualities(
        self, n: int, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        base = np.full((n, length), self.config.mean_quality, dtype=np.int16)
        jitter = rng.integers(-2, 3, size=(n, length))
        dips = rng.random((n, length)) < self.config.quality_dip_rate
        base += jitter
        base[dips] -= rng.integers(8, 20, size=int(dips.sum()))
        return np.clip(base, 2, MAX_PHRED).astype(np.uint8)

    def _apply_errors(
        self, seq: np.ndarray, error_rate: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Introduce substitution errors in place-free fashion."""
        if error_rate <= 0:
            return seq
        seq = seq.copy()
        mask = (rng.random(seq.size) < error_rate) & (seq != BASE_N)
        if mask.any():
            subs = rng.integers(0, 4, size=int(mask.sum())).astype(np.uint8)
            collide = subs == seq[mask]
            subs[collide] = (subs[collide] + 1) % 4
            seq[mask] = subs
        return seq

    def simulate(
        self,
        profile: SampleProfile,
        *,
        rng: np.random.Generator | int | None = None,
        read_id_prefix: str = "read",
    ) -> SimulatedSample:
        """Generate one sample according to ``profile``."""
        rng = ensure_rng(rng)
        expr_rng = derive_rng(rng, "expression")
        pick_rng = derive_rng(rng, "picks")
        err_rng = derive_rng(rng, "errors")
        qual_rng = derive_rng(rng, "quality")
        off_rng = derive_rng(rng, "offtarget")

        weights = self._expression_weights(expr_rng)
        offtarget = profile.effective_offtarget_fraction
        n = profile.n_reads
        L = profile.read_length

        is_off = pick_rng.random(n) < offtarget
        transcript_idx = pick_rng.choice(len(self._transcripts), size=n, p=weights)
        qualities = self._qualities(n, L, qual_rng)

        records: list[FastqRecord] = []
        true_gene: list[str | None] = []
        true_offset: list[int | None] = []
        expression: dict[str, float] = {}
        for t, w in zip(self._transcripts, weights):
            expression[t.gene_id] = expression.get(t.gene_id, 0.0) + float(w)

        for i in range(n):
            rid = f"{read_id_prefix}.{i}"
            if is_off[i]:
                seq = random_sequence(L, off_rng, gc=0.5)
                true_gene.append(None)
                true_offset.append(None)
            else:
                ti = int(transcript_idx[i])
                tseq = self._transcript_seqs[ti]
                if tseq.size < L:
                    # transcript shorter than the read: pad with off-target
                    # tail so the read still has full length
                    pad = random_sequence(L - tseq.size, off_rng, gc=0.5)
                    seq = np.concatenate([tseq, pad])
                    offset = 0
                else:
                    offset = int(pick_rng.integers(0, tseq.size - L + 1))
                    seq = tseq[offset : offset + L]
                seq = self._apply_errors(seq, profile.error_rate, err_rng)
                true_gene.append(self._transcripts[ti].gene_id)
                true_offset.append(offset)
            records.append(FastqRecord(rid, seq, qualities[i]))
        return SimulatedSample(
            records=records,
            true_gene=true_gene,
            true_offset=true_offset,
            expression=expression,
        )
