"""ABL-SPOT bench: the §II claim that spot mode gives cheaper processing.

Runs the same campaign on-demand and on spot (with interruptions) and
checks the trade the paper's architecture is designed around:

* spot cost ≈ discount × on-demand cost, despite interruptions;
* no work is lost — SQS redelivery reprocesses interrupted jobs;
* makespan penalty stays moderate.
"""

from dataclasses import replace

from repro.cloud.autoscaling import ScalingPolicy
from repro.cloud.ec2 import InstanceMarket, SpotModel
from repro.core.atlas import AtlasConfig, run_atlas
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease
from repro.util.tables import Table


def run_spot_comparison(n_jobs: int = 120, seed: int = 0):
    jobs = generate_corpus(CorpusSpec(n_runs=n_jobs), rng=seed)
    base = AtlasConfig(
        release=EnsemblRelease.R111,
        instance_name="r6a.2xlarge",
        scaling=ScalingPolicy(max_size=8, messages_per_instance=4),
        seed=seed,
    )
    scenarios = {
        "on-demand": base,
        "spot (6h MTBI)": replace(
            base,
            market=InstanceMarket.SPOT,
            spot_model=SpotModel(mean_interruption_seconds=6 * 3600),
        ),
        "spot (2h MTBI)": replace(
            base,
            market=InstanceMarket.SPOT,
            spot_model=SpotModel(mean_interruption_seconds=2 * 3600),
        ),
    }
    return {name: run_atlas(jobs, config) for name, config in scenarios.items()}, jobs


def test_bench_spot(once):
    reports, jobs = once(run_spot_comparison)

    table = Table(
        ["scenario", "makespan h", "cost $", "$/job", "interrupted",
         "redelivered", "jobs done"],
        title="Spot vs on-demand (ABL-SPOT)",
    )
    for name, report in reports.items():
        table.add_row(
            [
                name,
                f"{report.makespan_seconds / 3600:.2f}",
                f"{report.cost.total_usd:.2f}",
                f"{report.cost.total_usd / report.n_jobs:.3f}",
                report.cost.n_interrupted,
                report.queue_redeliveries,
                report.n_jobs,
            ]
        )
    print()
    print(table.render())

    ondemand = reports["on-demand"]
    spot6 = reports["spot (6h MTBI)"]
    spot2 = reports["spot (2h MTBI)"]

    # no work lost in any scenario
    assert all(r.n_jobs == len(jobs) for r in reports.values())

    # spot is much cheaper despite interruptions
    assert spot6.cost.total_usd < 0.55 * ondemand.cost.total_usd
    assert spot2.cost.total_usd < 0.70 * ondemand.cost.total_usd

    # interruptions actually happened in the aggressive scenario
    assert spot2.cost.n_interrupted >= spot6.cost.n_interrupted
    assert spot2.cost.n_interrupted > 0

    # makespan penalty bounded
    assert spot6.makespan_seconds < 1.8 * ondemand.makespan_seconds
