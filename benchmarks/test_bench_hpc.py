"""EXT-HPC bench: the optimizations off the cloud.

"Those insights are applicable outside the cloud environment (HPC or
workstations)." — runs the corpus on a fixed SLURM-like cluster and
quantifies both optimizations in node-hours/makespan terms, the HPC
accounting units.
"""

from dataclasses import replace

import pytest

from repro.core.hpc import HpcConfig, run_hpc
from repro.experiments.corpus import CorpusSpec, generate_corpus
from repro.genome.ensembl import EnsemblRelease
from repro.util.tables import Table


def run_hpc_grid(n_jobs: int = 120, seed: int = 0):
    jobs = generate_corpus(CorpusSpec(n_runs=n_jobs), rng=seed)
    base = HpcConfig(n_nodes=8, vcpus_per_node=16, seed=seed)
    variants = {
        "r111 + early-stop": base,
        "r111, no early-stop": replace(base, early_stopping=None),
        "r108 + early-stop": replace(base, release=EnsemblRelease.R108),
        "r108, no early-stop": replace(
            base, release=EnsemblRelease.R108, early_stopping=None
        ),
    }
    return {name: run_hpc(jobs, cfg) for name, cfg in variants.items()}


def test_bench_hpc(once):
    reports = once(run_hpc_grid)

    table = Table(
        ["variant", "makespan h", "node-hours", "STAR h", "terminated", "jobs/h"],
        title="HPC mode — fixed 8-node cluster (EXT-HPC)",
    )
    for name, r in reports.items():
        table.add_row(
            [
                name,
                f"{r.makespan_seconds / 3600:.2f}",
                f"{r.node_hours:.1f}",
                f"{r.star_hours_actual:.1f}",
                r.n_terminated,
                f"{r.throughput_jobs_per_hour:.1f}",
            ]
        )
    print()
    print(table.render())

    base = reports["r111 + early-stop"]
    no_es = reports["r111, no early-stop"]
    r108 = reports["r108 + early-stop"]

    # early stopping saves STAR hours (and therefore node-hours) on a
    # fixed cluster, same as in the cloud
    saving = 1 - base.star_hours_actual / no_es.star_hours_actual
    assert 0.10 < saving < 0.30
    assert base.node_hours < no_es.node_hours

    # release switch dominates: ~an order of magnitude in makespan
    assert r108.makespan_seconds > 5 * base.makespan_seconds

    # both optimizations compound
    worst = reports["r108, no early-stop"]
    assert worst.node_hours > 8 * base.node_hours
    assert base.n_terminated > 0
    assert no_es.n_terminated == 0
