"""STREAM bench: stage-overlapped streaming vs the sequential pipeline.

The streaming DAG downloads accession *i+1* while accession *i* aligns
and feeds the aligner chunks as they decode, so a batch's makespan drops
from Σ(download + align) toward download₁ + Σ align.  This bench drives
both paths over the same throttled repository — bandwidth self-calibrated
so one accession's download costs about as much as its alignment, the
regime the paper's cloud workers live in — and records the observed
overlap win to ``BENCH_stream.json`` at the repo root.

Two assertions gate the record:

* makespan reduction ≥ 1.3× (the theoretical ceiling for six accessions
  at download ≈ align is ~1.7×, so 1.3 leaves CI headroom), and
* byte-identity — the streamed batch must report exactly the sequential
  batch's statuses, counts, and final log stats.

Also runnable directly (the CI smoke path)::

    PYTHONPATH=src python benchmarks/test_bench_stream.py --accessions 4
"""

import dataclasses
import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.align.star import StarAligner, StarParameters
from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.pipeline import (
    BatchOptions,
    PipelineConfig,
    TranscriptomicsAtlasPipeline,
)
from repro.experiments.chaos import build_demo_inputs
from repro.reads.stream import ThrottledRepository

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_stream.json"
MIN_SPEEDUP = 1.3
CHUNK_READS = 25


def _comparable(result) -> tuple:
    """Everything output-like except wall clock."""
    final = result.star_result.final if result.star_result else None
    if final is not None:
        stats = dataclasses.asdict(final)
        stats.pop("elapsed_seconds")
    else:
        stats = None
    return (result.accession, result.status, result.counts, result.paired, stats)


def _config() -> PipelineConfig:
    return PipelineConfig(
        early_stopping=EarlyStoppingPolicy(min_reads=20), write_outputs=False
    )


def _run(repo, aligner, workdir, accessions, options) -> tuple[float, list]:
    pipeline = TranscriptomicsAtlasPipeline(
        repo, aligner, workdir, config=_config()
    )
    started = time.perf_counter()
    results = pipeline.run_batch(accessions, options)
    return time.perf_counter() - started, results


def measure(n_accessions: int = 6, n_reads: int = 400) -> dict:
    base_aligner, repo, accessions = build_demo_inputs(
        n_accessions, n_reads=n_reads
    )
    # chunk-cadence parameters: the monitor must see progress at chunk
    # granularity for streaming to interleave align with download
    aligner = StarAligner(
        base_aligner.index,
        StarParameters(progress_every=CHUNK_READS, align_batch_size=CHUNK_READS),
    )

    with TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        # calibration: align each accession once, unthrottled, and size the
        # bandwidth so download ≈ align — the regime where overlap pays
        calib_seconds, calib = _run(
            repo, aligner, tmp_path / "calib", accessions, BatchOptions()
        )
        align_seconds = sum(r.timing.star for r in calib) / len(calib)
        mean_sra_bytes = sum(
            repo.archive_bytes(acc) for acc in accessions
        ) / len(accessions)
        bandwidth = mean_sra_bytes / max(align_seconds, 1e-3)

        def throttled():
            return ThrottledRepository(repo, bandwidth_bytes_per_s=bandwidth)

        sequential_seconds, sequential = _run(
            throttled(), aligner, tmp_path / "seq", accessions, BatchOptions()
        )
        streamed_seconds, streamed = _run(
            throttled(),
            aligner,
            tmp_path / "stream",
            accessions,
            BatchOptions(
                streaming=True,
                chunk_reads=CHUNK_READS,
                prefetch_depth=2,
                download_chunk_bytes=2048,
            ),
        )

    identical = [_comparable(r) for r in streamed] == [
        _comparable(r) for r in sequential
    ]
    speedup = sequential_seconds / streamed_seconds
    return {
        "n_accessions": n_accessions,
        "n_reads": n_reads,
        "chunk_reads": CHUNK_READS,
        "align_seconds_per_accession": align_seconds,
        "bandwidth_bytes_per_s": bandwidth,
        "calibration_seconds": calib_seconds,
        "sequential_seconds": sequential_seconds,
        "streamed_seconds": streamed_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "byte_identical": identical,
        "cpu_count": os.cpu_count(),
    }


def test_bench_stream_overlap(once):
    record = once(measure)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(json.dumps(record, indent=2))
    print(f"wrote {OUTPUT}")

    assert record["byte_identical"], "streamed output diverged from sequential"
    assert record["speedup"] >= MIN_SPEEDUP, record


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accessions", type=int, default=6)
    parser.add_argument("--reads", type=int, default=400)
    args = parser.parse_args()

    result = measure(n_accessions=args.accessions, n_reads=args.reads)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    if not result["byte_identical"]:
        raise SystemExit(f"streamed output diverged: {result}")
    if result["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"overlap win below bar: {result}")
