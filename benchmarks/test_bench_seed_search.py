"""SEED bench: jump-table + packed-state MMP vs the pre-PR binary-search path.

The seed-search hot path resolves its first L symbols through the
:class:`PrefixJumpTable` and finishes single-suffix intervals with a
chunked longest-common-extension scan.  The acceptance bar is a ≥ 1.5×
reads-per-second speedup over the original one-symbol-at-a-time interval
narrowing — with *bit-identical* seed decompositions — plus an
``IndexCache`` reload that skips suffix-array construction entirely.
Records everything to ``BENCH_seed.json`` at the repo root.

Also runnable directly (the CI smoke path)::

    PYTHONPATH=src python benchmarks/test_bench_seed_search.py --reads 200
"""

import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.align.cache import IndexCache
from repro.align.index import genome_generate
from repro.align.seeds import SeedHit, seed_decomposition
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_seed.json"
MIN_SPEEDUP = 1.5


def _reference_mmp(ctx, read_list, read_start, max_hits, sa_list):
    """The pre-PR MMP: one ``extend`` (two binary searches) per symbol."""
    n = len(read_list)
    lo, hi = 0, ctx.n
    depth = 0
    extend = ctx.extend
    while read_start + depth < n:
        nlo, nhi = extend(lo, hi, depth, read_list[read_start + depth])
        if nlo >= nhi:
            break
        lo, hi = nlo, nhi
        depth += 1
    if depth == 0:
        return SeedHit(read_start=read_start, length=0, positions=(), n_hits=0)
    shown = sa_list[lo : min(hi, lo + max_hits)]
    if len(shown) > 1:
        shown = sorted(shown)
    return SeedHit(
        read_start=read_start,
        length=depth,
        positions=tuple(shown),
        n_hits=int(hi - lo),
    )


def _reference_decomposition(ctx, read, sa_list, *, max_seeds=8, max_hits=50):
    """Pre-PR ``seed_decomposition``: same skip-1 policy over the slow MMP."""
    seeds = []
    pos = 0
    read_list = read.tolist()
    n = len(read_list)
    while pos < n and len(seeds) < max_seeds:
        seed = _reference_mmp(ctx, read_list, pos, max_hits, sa_list)
        seeds.append(seed)
        pos += seed.length if seed.length > 0 else 1
    return seeds


def _best_reads_per_second(fn, reads, repeats):
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        fn(reads)
        elapsed = time.perf_counter() - started
        best = max(best, len(reads) / elapsed)
    return best


def measure(n_reads: int = 600, read_length: int = 100, repeats: int = 3) -> dict:
    """Time both paths over one simulated sample; returns the JSON record."""
    rng = ensure_rng(42)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    sample = ReadSimulator(assembly, universe.annotation).simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=n_reads, read_length=read_length),
        rng=derive_rng(rng, "reads"),
    )
    reads = [record.sequence for record in sample.records]

    jump_index = genome_generate(assembly, universe.annotation)
    flat_index = genome_generate(assembly, universe.annotation, jump_table=False)
    flat_ctx = flat_index.search_context
    sa_list = flat_index.suffix_array.tolist()  # the old 40 B/position state

    # equivalence first: every decomposition must be bit-identical
    for read in reads:
        assert seed_decomposition(jump_index, read) == _reference_decomposition(
            flat_ctx, read, sa_list
        )

    def run_reference(batch):
        for read in batch:
            _reference_decomposition(flat_ctx, read, sa_list)

    def run_jump(batch):
        for read in batch:
            seed_decomposition(jump_index, read)

    reference_rps = _best_reads_per_second(run_reference, reads, repeats)
    stats_before = jump_index.search_context.stats.snapshot()
    jump_rps = _best_reads_per_second(run_jump, reads, repeats)
    stats = jump_index.search_context.stats.since(stats_before)

    # cache: a second load must attach via mmap, not rebuild the SA
    with TemporaryDirectory() as tmp:
        cache = IndexCache(tmp)
        started = time.perf_counter()
        cache.get_or_build(assembly, universe.annotation)
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        reloaded = cache.get_or_build(assembly, universe.annotation)
        reload_seconds = time.perf_counter() - started
        assert (cache.hits, cache.misses) == (1, 1)
        assert reloaded.jump_table is not None

    return {
        "n_reads": n_reads,
        "read_length": read_length,
        "repeats": repeats,
        "genome_bases": jump_index.n_bases,
        "jump_length": jump_index.jump_table.length,
        "jump_table_bytes": jump_index.jump_table.nbytes,
        "reference_reads_per_second": reference_rps,
        "jump_reads_per_second": jump_rps,
        "speedup": jump_rps / reference_rps,
        "min_speedup": MIN_SPEEDUP,
        "seed_search_stats": stats,
        "cache_build_seconds": build_seconds,
        "cache_reload_seconds": reload_seconds,
        "cpu_count": os.cpu_count(),
    }


def test_bench_seed_search_speedup(once):
    record = once(measure)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(json.dumps(record, indent=2))
    print(f"wrote {OUTPUT}")

    assert record["jump_reads_per_second"] > 0
    assert record["seed_search_stats"]["table_hits"] > 0
    assert record["seed_search_stats"]["binary_steps_saved"] > 0
    assert record["cache_reload_seconds"] < record["cache_build_seconds"]
    assert record["speedup"] >= MIN_SPEEDUP, record


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=600)
    parser.add_argument("--read-length", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    result = measure(
        n_reads=args.reads,
        read_length=args.read_length,
        repeats=args.repeats,
    )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    if result["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"seed-search speedup below bar: {result}")
