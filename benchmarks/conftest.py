"""Benchmark-suite configuration.

Every bench regenerates one of the paper's tables/figures, prints the same
rows/series the paper reports, and asserts the shape claims from
DESIGN.md §6.  Benches run once per session (``pedantic`` with one round)
— the quantity of interest is the experiment's *output*, not harness
micro-timing — except the substrate micro-benchmarks, which use normal
pytest-benchmark statistics.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables on stdout).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
