"""FIG3 bench: STAR execution time with r108 vs r111 indexes.

Regenerates Fig. 3's per-file series (49 files, mean 15.9 GiB, 777 GiB
total on r6a.4xlarge) and checks the §III-A claims:

* release 111 wins on every file;
* FASTQ-size-weighted mean speedup ≈ 12× (band 8–16×);
* mean mapping-rate delta < 1%;
* index sizes 85 GiB vs 29.5 GiB (checked in the config-table bench).
"""

import pytest

from repro.experiments.fig3 import run_fig3
from repro.perf.targets import PAPER


def test_bench_fig3(once):
    result = once(run_fig3, rng=0)

    print()
    print(result.to_table())

    assert len(result.rows) == PAPER.fig3_n_files
    assert result.mean_fastq_bytes == pytest.approx(
        PAPER.fig3_mean_fastq_bytes, rel=0.01
    )

    # shape claim 1: r111 wins everywhere, weighted mean ≈ 12x
    assert all(r.speedup > 1 for r in result.rows)
    assert 8.0 < result.weighted_speedup < 16.0

    # shape claim 3: mapping-rate delta < 1% mean
    assert result.mean_mapping_delta < PAPER.mapping_rate_max_delta

    # crossover check: there is none — the old index never wins, even for
    # the smallest file where fixed setup costs matter most
    smallest = min(result.rows, key=lambda r: r.fastq_bytes)
    assert smallest.speedup > 2.0
