"""FAAS bench: the serverless cost/makespan crossover.

Runs the same rescaled corpus through the three architectures (ASG
instance fleet, scatter-gather functions, size-routed hybrid) and
records the cost-per-accession bars to ``BENCH_faas.json`` at the repo
root.  The shape claims:

* small-archive regime: serverless is strictly cheaper per accession
  (per-instance boot + index-load overheads dominate the fleet's bill);
* paper-scale regime: the fleet is cheaper (GB-second pricing on
  function-sized vCPU slices loses to bin-packed instances), while
  serverless still wins on makespan via its massive fan-out;
* the 15-minute execution cap is a live constraint at paper scale —
  the duration-noise tail pushes some shards over it, and they are
  billed at the cap and re-scattered (``cap_reshards > 0``).

Also runnable directly (the CI smoke path)::

    PYTHONPATH=src python benchmarks/test_bench_faas.py --jobs 40
"""

import json
from pathlib import Path

from repro.experiments.faas_crossover import run_faas_crossover

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_faas.json"


def measure(n_jobs: int = 60, seed: int = 0) -> dict:
    """Run the sweep and return the ``BENCH_faas.json`` record."""
    result = run_faas_crossover(n_jobs=n_jobs, seed=seed)
    record = result.to_json()
    record["table"] = result.to_table()
    return record, result


def test_bench_faas(once):
    record, result = once(measure, 60)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(result.to_table())

    scales = sorted(p.scale for p in result.points)
    smallest = result.point(scales[0])
    full = result.point(1.0)

    # serverless wins the small-archive regime, the fleet wins at paper scale
    assert smallest.faas_wins
    assert smallest.faas_usd_per_accession < 0.5 * smallest.asg_usd_per_accession
    assert not full.faas_wins
    assert result.crossover_scale is not None
    assert result.crossover_scale < 1.0

    # fan-out still buys makespan even where it loses on cost
    assert full.faas_makespan_hours < full.asg_makespan_hours

    # the execution cap is a live constraint at paper scale
    assert full.faas_cap_reshards > 0

    # cold starts are accounted and bounded
    assert 0.0 < full.faas_cold_start_share <= 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    record, result = measure(args.jobs, args.seed)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    print(result.to_table())
    print(f"wrote {OUTPUT}")
