"""TAB-CONFIG bench: the §III-A test-configuration block.

Regenerates the index-size table across Ensembl releases and checks:

* release 108 index ≈ 85 GiB (fit) and release 111 ≈ 29.5 GiB (held out);
* the consolidation at 109→110 collapses the index ~3×;
* the r111 index fits a half-size, half-price instance.
"""

import pytest

from repro.experiments.config_table import memory_fit_matrix, run_config_table
from repro.perf.targets import PAPER
from repro.util.units import GIB


def test_bench_config_table(once):
    result = once(run_config_table)

    print()
    print(result.to_table())
    print()
    print(memory_fit_matrix())

    assert result.predicted_r108_bytes == pytest.approx(
        PAPER.index_bytes_r108, rel=0.01
    )
    assert result.predicted_r111_bytes == pytest.approx(
        PAPER.index_bytes_r111, rel=0.02
    )
    ratio = result.predicted_r108_bytes / result.predicted_r111_bytes
    assert ratio == pytest.approx(PAPER.index_size_ratio, rel=0.02)

    # shape claim 2: smaller instance class becomes available at release 110
    assert result.row(108).smallest_instance == "r6a.4xlarge"
    assert result.row(111).smallest_instance == "r6a.2xlarge"
    assert result.row(111).hourly_usd == pytest.approx(
        result.row(108).hourly_usd / 2, rel=0.01
    )

    print(
        f"\nindex ratio {ratio:.2f} (paper {PAPER.index_size_ratio:.2f}); "
        f"r111 index {result.predicted_r111_bytes / GIB:.1f} GiB"
    )
