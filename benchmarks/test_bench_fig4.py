"""FIG4 bench: time savings due to early stopping.

Regenerates Fig. 4's replay over the 1000-run corpus and checks §III-B:

* 38 of 1000 runs terminated;
* every terminated run is single-cell, none would have passed the bar;
* termination happens at ~10% of reads;
* total saving ≈ 19.5% (30.4 h of 155.8 h; band 15–25%).
"""

import pytest

from repro.experiments.fig4 import run_fig4
from repro.perf.targets import PAPER


def test_bench_fig4(once):
    result = once(run_fig4, rng=0)
    savings = result.savings

    print()
    print(result.to_table())

    assert savings.n_runs == PAPER.early_stop_corpus_size
    assert savings.n_terminated == PAPER.early_stop_terminated
    assert savings.all_terminated_single_cell()
    assert result.false_terminations == 0

    for row in result.terminated_rows:
        assert row.stop_fraction == pytest.approx(
            PAPER.early_stop_check_fraction, abs=0.01
        )

    # totals track the paper's hour-level aggregates
    assert savings.total_hours_if_full == pytest.approx(
        PAPER.early_stop_total_hours, rel=0.10
    )
    assert 0.15 < savings.saving_fraction < 0.25
