"""BATCH bench: vectorized batch alignment core vs the per-read oracle.

The batch core (:mod:`repro.align.batch`) packs a whole read batch into
structure-of-arrays form and drives seeding, extension, and splice
stitching through fused numpy kernels.  The acceptance bar is a ≥ 5×
reads-per-second speedup over the per-read reference path — with
*byte-identical* outcomes across single-end, paired-end, and
early-stopped runs.  Serial and batch passes are interleaved within each
trial so thermal throttling and scheduler drift cancel out of the
per-trial ratio; the recorded ``speedup`` is the best per-trial ratio
(adjacent-in-time measurements), alongside both paths' best absolute
rates.  Records everything to ``BENCH_batch.json`` at the repo root.

Also runnable directly (the CI smoke path)::

    PYTHONPATH=src python benchmarks/test_bench_batch.py --reads 200
"""

import json
import os
import time
from pathlib import Path

from repro.align.batch import align_read_batch
from repro.align.index import genome_generate
from repro.align.paired import PairedParameters, PairedStarAligner
from repro.align.star import StarAligner, StarParameters
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.paired import PairedProfile, simulate_paired
from repro.reads.simulator import ReadSimulator
from repro.util.rng import derive_rng, ensure_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_batch.json"
MIN_SPEEDUP = 5.0


def _paired_identical(index, mate1, mate2) -> bool:
    """Paired runs, batch core on vs off, must agree outcome-for-outcome."""
    results = {}
    for batch in (True, False):
        aligner = StarAligner(index, StarParameters(batch_align=batch))
        results[batch] = PairedStarAligner(aligner, PairedParameters()).run(
            mate1, mate2
        )
    return results[True].outcomes == results[False].outcomes


def _early_stop_identical(index, records) -> bool:
    """Aborted runs must truncate at the same read with equal outcomes."""
    results = {}
    for batch in (True, False):
        aligner = StarAligner(
            index,
            StarParameters(
                progress_every=50, batch_align=batch, align_batch_size=128
            ),
        )
        seen = []

        def monitor(rec, seen=seen):
            seen.append(rec)
            return len(seen) < 3

        results[batch] = aligner.run(records, monitor=monitor)
    on, off = results[True], results[False]
    return (
        on.aborted
        and off.aborted
        and on.outcomes == off.outcomes
        and on.final.reads_processed == off.final.reads_processed
    )


def measure(n_reads: int = 600, read_length: int = 100, trials: int = 5) -> dict:
    """Time both paths over one simulated sample; returns the JSON record."""
    rng = ensure_rng(42)
    universe = make_universe(GenomeUniverseSpec(), rng)
    assembly = build_release_assembly(
        universe, EnsemblRelease.R111, rng=derive_rng(rng, "assembly")
    )
    simulator = ReadSimulator(assembly, universe.annotation)
    records = simulator.simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=n_reads, read_length=read_length),
        rng=derive_rng(rng, "reads"),
    ).records
    index = genome_generate(assembly, universe.annotation)
    aligner = StarAligner(index, StarParameters())

    # equivalence first: the batch core must be bit-identical on this
    # corpus before its timing means anything
    serial_outcomes = [aligner.align_read(r) for r in records]
    batch_outcomes = align_read_batch(aligner, records)
    identical_se = serial_outcomes == batch_outcomes
    assert identical_se, "batch core diverged from the per-read oracle"

    paired = simulate_paired(
        simulator,
        PairedProfile(
            LibraryType.BULK_POLYA, n_pairs=max(50, n_reads // 4),
            read_length=max(40, read_length - 30),
            insert_mean=250, insert_sd=30,
        ),
        rng=derive_rng(rng, "pairs"),
    )
    identical_pe = _paired_identical(index, paired.mate1, paired.mate2)
    assert identical_pe, "paired batch run diverged"
    identical_stop = _early_stop_identical(index, records)
    assert identical_stop, "early-stopped batch run diverged"

    serial_best = batch_best = ratio_best = 0.0
    trial_rows = []
    for _ in range(trials):
        started = time.perf_counter()
        for record in records:
            aligner.align_read(record)
        mid = time.perf_counter()
        align_read_batch(aligner, records)
        done = time.perf_counter()
        serial_rps = n_reads / (mid - started)
        batch_rps = n_reads / (done - mid)
        serial_best = max(serial_best, serial_rps)
        batch_best = max(batch_best, batch_rps)
        ratio_best = max(ratio_best, batch_rps / serial_rps)
        trial_rows.append(
            {"serial_rps": serial_rps, "batch_rps": batch_rps,
             "ratio": batch_rps / serial_rps}
        )

    return {
        "n_reads": n_reads,
        "read_length": read_length,
        "trials": trials,
        "genome_bases": index.n_bases,
        "serial_reads_per_second": serial_best,
        "batch_reads_per_second": batch_best,
        "speedup": ratio_best,
        "min_speedup": MIN_SPEEDUP,
        "per_trial": trial_rows,
        "identical_single_end": identical_se,
        "identical_paired": identical_pe,
        "identical_early_stopped": identical_stop,
        "cpu_count": os.cpu_count(),
    }


def test_bench_batch_core_speedup(once):
    record = once(measure)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(json.dumps(record, indent=2))
    print(f"wrote {OUTPUT}")

    assert record["identical_single_end"]
    assert record["identical_paired"]
    assert record["identical_early_stopped"]
    assert record["speedup"] >= MIN_SPEEDUP, record


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reads", type=int, default=600)
    parser.add_argument("--read-length", type=int, default=100)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_SPEEDUP,
        help="speedup bar; the CI smoke relaxes it because the fixed "
        "per-batch cost amortizes over fewer reads at smoke scale "
        "(identity checks always assert at full strictness)",
    )
    args = parser.parse_args()

    result = measure(
        n_reads=args.reads,
        read_length=args.read_length,
        trials=args.trials,
    )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    if result["speedup"] < args.min_speedup:
        raise SystemExit(f"batch-core speedup below bar: {result}")
