"""ABL-RIGHTSIZE bench: "smaller index allows smaller and cheaper instances".

Quantifies the §III-A consequence: the advisor picks the cheapest r6a
whose RAM fits each release's index, and reports per-file cost and init
overhead on that choice vs the paper's pinned r6a.4xlarge.
"""

import pytest

from repro.core.rightsizing import RightSizingAdvisor
from repro.genome.ensembl import RELEASE_CATALOG
from repro.perf.targets import PAPER
from repro.util.tables import Table
from repro.util.units import GIB


def run_rightsizing():
    advisor = RightSizingAdvisor()
    return {
        int(release): advisor.recommend(
            release, mean_fastq_bytes=PAPER.fig3_mean_fastq_bytes
        )
        for release in sorted(RELEASE_CATALOG)
    }, advisor


def test_bench_rightsizing(once):
    choices, advisor = once(run_rightsizing)

    table = Table(
        ["release", "index GiB", "RAM need GiB", "instance", "$/h",
         "init s", "STAR min/file", "$/file"],
        title="Right-sizing per Ensembl release (ABL-RIGHTSIZE)",
    )
    for release, c in choices.items():
        table.add_row(
            [
                release,
                f"{c.index_bytes / GIB:.1f}",
                f"{c.memory_required_bytes / GIB:.1f}",
                c.instance.name,
                f"{c.hourly_usd:.4f}",
                f"{c.init_overhead_seconds:.0f}",
                f"{c.star_seconds_mean_file / 60:.1f}",
                f"{c.cost_per_mean_file_usd:.4f}",
            ]
        )
    print()
    print(table.render())

    old, new = choices[108], choices[111]

    # the claim: r111 runs on a smaller, cheaper instance
    assert new.instance.memory_gib < old.instance.memory_gib
    assert new.hourly_usd < old.hourly_usd

    # init overhead (download + shm load) shrinks ~3x with the index
    assert old.init_overhead_seconds / new.init_overhead_seconds == pytest.approx(
        PAPER.index_size_ratio, rel=0.15
    )

    # compounded cost per file: >12x speedup AND cheaper hardware
    assert old.cost_per_mean_file_usd / new.cost_per_mean_file_usd > 12

    # pinned-instance comparison (the paper's actual Fig. 3 protocol)
    pinned_old = advisor.fixed_instance_choice(
        108, PAPER.instance_type, mean_fastq_bytes=PAPER.fig3_mean_fastq_bytes
    )
    pinned_new = advisor.fixed_instance_choice(
        111, PAPER.instance_type, mean_fastq_bytes=PAPER.fig3_mean_fastq_bytes
    )
    speedup = pinned_old.star_seconds_mean_file / pinned_new.star_seconds_mean_file
    print(f"\npinned {PAPER.instance_type}: r108/r111 time ratio {speedup:.1f}x")
    assert speedup == pytest.approx(PAPER.fig3_weighted_speedup, rel=0.05)
