"""FULL-ATLAS bench: the paper's §II scope projected end to end.

"We aim to process the subset consisting of at least 7216 files and 17TB
of SRA data."  Runs the complete campaign through the simulator under
four configurations and verifies the compounded value of the paper's
contributions: genome-release switch (~12×), early stopping (~19%), and
spot purchasing (~3×) together collapse the campaign cost by almost two
orders of magnitude.
"""

import pytest

from repro.experiments.full_atlas import run_full_atlas
from repro.perf.targets import PAPER


def test_bench_full_atlas(once):
    result = once(run_full_atlas, fleet=32, seed=0)

    print()
    print(result.to_table())

    assert result.n_files == PAPER.atlas_min_files
    assert result.total_sra_tb == pytest.approx(17.0, rel=0.01)

    optimized = result.report("optimized (r111+ES, spot x32)")
    no_es = result.report("no early stopping")
    on_demand = result.report("on-demand")
    unoptimized = result.report("unoptimized (r108, on-demand x32)")

    # every variant processes every file (no work lost at full scale)
    for report in result.reports.values():
        assert report.n_jobs == PAPER.atlas_min_files

    # early stopping: ~3.8% of runs terminated, STAR hours band
    assert optimized.n_terminated == round(
        PAPER.atlas_min_files * PAPER.terminated_fraction
    )
    saving = 1 - optimized.star_hours_actual / no_es.star_hours_actual
    assert 0.12 < saving < 0.25

    # spot ≈ 1/3 the cost of on-demand at equal work
    assert optimized.cost.total_usd < 0.45 * on_demand.cost.total_usd

    # compounded: the optimized campaign is >20x cheaper and >3x faster
    assert unoptimized.cost.total_usd > 20 * optimized.cost.total_usd
    assert unoptimized.makespan_seconds > 3 * optimized.makespan_seconds
