"""JOURNAL bench: fsync'd append cost vs per-accession pipeline time.

The durability layer pays one ``write() + flush + fsync`` per journal
record.  The acceptance bar is that journaling stays in the noise: the
appends an accession generates (started + one per step + terminal) must
cost < 5% of the accession's own wall-clock time through the four-step
pipeline.  Measures both sides, records them to ``BENCH_journal.json``
at the repo root, and asserts the ratio.

S3 replication (:class:`repro.core.replication.ReplicatedJournal`)
mirrors every line to a durable-rooted bucket *inside* the append — the
fsync-ordering guarantee — so it is measured under the same bar:
``replicated_overhead_fraction`` must also stay under 5%, with the
replica persisted to disk (the conservative case; the in-memory service
is cheaper).

The per-accession read count matters here: journal cost is fixed per
accession, so the overhead fraction scales inversely with accession
size.  400 reads keeps the toy accession small while staying clear of
the regime where the batch alignment core finishes the whole accession
in single-digit milliseconds — real accessions are millions of reads,
so if anything this *overstates* the journal's relative cost.

Also runnable directly (the CI smoke path)::

    PYTHONPATH=src python benchmarks/test_bench_journal.py --appends 200
"""

import json
import os
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.core.early_stopping import EarlyStoppingPolicy
from repro.core.journal import RunJournal, config_fingerprint
from repro.core.pipeline import (
    BatchOptions,
    PipelineConfig,
    TranscriptomicsAtlasPipeline,
)
from repro.experiments.chaos import build_demo_inputs

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_journal.json"
MAX_OVERHEAD_FRACTION = 0.05


def _append_seconds(path: Path, n_appends: int) -> float:
    """Mean seconds per fsync'd append of a realistic step-done record."""
    with RunJournal(path) as journal:
        journal.record_batch_start("0" * 16, ["SRR0000001"])
        started = time.perf_counter()
        for i in range(n_appends):
            journal.record_step_done(f"SRR{i:07d}", "align")
        elapsed = time.perf_counter() - started
    return elapsed / n_appends


def _replicated_append_seconds(root: Path, n_appends: int) -> float:
    """Same appends through a ReplicatedJournal over a disk-rooted bucket."""
    from repro.cloud.s3 import S3Bucket
    from repro.core.replication import ReplicatedJournal

    bucket = S3Bucket("bench-journal", root=root / "s3")
    with ReplicatedJournal(
        root / "replicated.jsonl", bucket, "batch"
    ) as journal:
        journal.record_batch_start("0" * 16, ["SRR0000001"])
        started = time.perf_counter()
        for i in range(n_appends):
            journal.record_step_done(f"SRR{i:07d}", "align")
        elapsed = time.perf_counter() - started
    return elapsed / n_appends


def measure(n_appends: int = 400, n_accessions: int = 4, n_reads: int = 400) -> dict:
    """Time raw appends and a journaled batch; returns the JSON record."""
    aligner, repo, accessions = build_demo_inputs(n_accessions, n_reads=n_reads)
    config = PipelineConfig(
        early_stopping=EarlyStoppingPolicy(min_reads=20), write_outputs=False
    )

    with TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        seconds_per_append = _append_seconds(tmp_path / "appends.jsonl", n_appends)
        seconds_per_replicated_append = _replicated_append_seconds(
            tmp_path / "replicated", n_appends
        )

        journal = RunJournal(tmp_path / "batch.jsonl")
        pipeline = TranscriptomicsAtlasPipeline(
            repo, aligner, tmp_path / "work", config=config
        )
        started = time.perf_counter()
        results = pipeline.run_batch(accessions, BatchOptions(journal=journal))
        batch_seconds = time.perf_counter() - started
        appends = journal.appends
        journal.close()

    assert len(results) == n_accessions
    per_accession_seconds = batch_seconds / n_accessions
    appends_per_accession = (appends - 1) / n_accessions  # minus batch-start
    overhead_fraction = (
        appends_per_accession * seconds_per_append / per_accession_seconds
    )
    replicated_overhead_fraction = (
        appends_per_accession
        * seconds_per_replicated_append
        / per_accession_seconds
    )
    return {
        "n_appends_timed": n_appends,
        "n_accessions": n_accessions,
        "n_reads": n_reads,
        "fingerprint": config_fingerprint(config),
        "seconds_per_append": seconds_per_append,
        "seconds_per_replicated_append": seconds_per_replicated_append,
        "appends_per_accession": appends_per_accession,
        "per_accession_seconds": per_accession_seconds,
        "overhead_fraction": overhead_fraction,
        "replicated_overhead_fraction": replicated_overhead_fraction,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "cpu_count": os.cpu_count(),
    }


def test_bench_journal_append_overhead(once):
    record = once(measure)
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(json.dumps(record, indent=2))
    print(f"wrote {OUTPUT}")

    assert record["seconds_per_append"] > 0
    # each accession journals started + 4 step-dones + a terminal record
    assert record["appends_per_accession"] >= 3
    assert record["overhead_fraction"] < MAX_OVERHEAD_FRACTION, record
    # replication to S3 must keep the append under the same bar
    assert (
        record["replicated_overhead_fraction"] < MAX_OVERHEAD_FRACTION
    ), record


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--appends", type=int, default=400)
    parser.add_argument("--accessions", type=int, default=4)
    parser.add_argument("--reads", type=int, default=100)
    args = parser.parse_args()

    result = measure(
        n_appends=args.appends,
        n_accessions=args.accessions,
        n_reads=args.reads,
    )
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    if result["overhead_fraction"] >= MAX_OVERHEAD_FRACTION:
        raise SystemExit(f"journal overhead too high: {result}")
    if result["replicated_overhead_fraction"] >= MAX_OVERHEAD_FRACTION:
        raise SystemExit(f"replicated append overhead too high: {result}")
