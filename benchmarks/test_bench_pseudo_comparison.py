"""EXT-PSEUDO bench: the paper's future-work measurement.

"Early stopping optimization ... suggests that other (pseudo)aligners
should also provide the current mapping rate value (e.g. Salmon does
not). ... Further research will measure applicability of those findings
for other aligners."  This bench performs that measurement:

* corpus level — the stock pseudo-aligner wastes ~19% of its compute on
  runs the atlas rejects; exposing a progress stream would recover ~17%
  of its total time (same fraction early stopping saves STAR);
* real-tool level — the actual k-mer pseudo-aligner's final mapping rate
  separates bulk from single-cell exactly as the suffix-array aligner's
  does, so the same 30%-at-10% policy would make the same decisions.
"""

import pytest

from repro.experiments.pseudo_comparison import (
    run_pseudo_comparison,
    run_transferability,
)


def test_bench_pseudo_comparison(once):
    result = once(run_pseudo_comparison, rng=0)

    print()
    print(result.to_table())

    stock = result.variant("pseudo-stock")
    extended = result.variant("pseudo-with-progress")
    star_es = result.variant("star-early-stop")
    star_plain = result.variant("star-no-early-stop")

    # the pseudo-aligner is the faster tool...
    assert stock.total_hours < 0.3 * star_plain.total_hours
    # ...but, as shipped, cannot early-stop and wastes compute
    assert stock.n_terminated == 0
    assert result.pseudo_waste_fraction == pytest.approx(0.195, abs=0.05)
    # a progress stream recovers the same relative saving STAR gets
    star_saving = 1 - star_es.total_hours / star_plain.total_hours
    assert result.pseudo_recoverable_fraction == pytest.approx(star_saving, abs=0.05)
    assert extended.n_terminated == star_es.n_terminated == 38

    transfer = run_transferability(n_reads=300, seed=11)
    print()
    print(transfer.to_table())
    assert transfer.star_separates and transfer.pseudo_separates
