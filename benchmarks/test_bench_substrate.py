"""Substrate micro-benchmarks (pytest-benchmark statistics).

Times the hot operations every experiment rests on: suffix-array
construction (genomeGenerate's core), per-read alignment, pseudo-
alignment, DESeq2 normalization, and the DES event loop.  These establish
the performance envelope of the reproduction itself and catch substrate
regressions.
"""

import numpy as np
import pytest

from repro.align.index import genome_generate
from repro.align.pseudo import PseudoAligner, build_pseudo_index
from repro.align.star import StarAligner, StarParameters
from repro.align.suffix_array import build_suffix_array
from repro.cloud.events import Simulation, Timeout
from repro.genome.ensembl import EnsemblRelease, build_release_assembly
from repro.genome.synth import GenomeUniverseSpec, make_universe
from repro.quant.deseq2 import estimate_size_factors
from repro.quant.matrix import CountMatrix
from repro.reads.library import LibraryType, SampleProfile
from repro.reads.simulator import ReadSimulator


@pytest.fixture(scope="module")
def universe():
    return make_universe(GenomeUniverseSpec(), np.random.default_rng(42))


@pytest.fixture(scope="module")
def assembly(universe):
    return build_release_assembly(universe, EnsemblRelease.R111, rng=1)


@pytest.fixture(scope="module")
def index(universe, assembly):
    return genome_generate(assembly, universe.annotation)


@pytest.fixture(scope="module")
def reads(universe, assembly):
    simulator = ReadSimulator(assembly, universe.annotation)
    return simulator.simulate(
        SampleProfile(LibraryType.BULK_POLYA, n_reads=100, read_length=80), rng=7
    ).records


def test_bench_suffix_array_100kb(benchmark):
    rng = np.random.default_rng(0)
    seq = rng.integers(0, 4, size=100_000).astype(np.uint8)
    sa = benchmark(build_suffix_array, seq)
    assert sa.size == 100_000


def test_bench_genome_generate(benchmark, universe, assembly):
    idx = benchmark(genome_generate, assembly, universe.annotation)
    assert idx.n_bases == assembly.total_length


def test_bench_align_100_reads(benchmark, index, reads):
    aligner = StarAligner(index, StarParameters(progress_every=1000))
    result = benchmark(aligner.run, reads)
    assert result.final.reads_processed == 100


def test_bench_pseudo_align_100_reads(benchmark, universe, assembly, reads):
    pseudo = PseudoAligner(build_pseudo_index(assembly, universe.annotation))
    result = benchmark(pseudo.run, reads)
    assert result.n_reads == 100


def test_bench_deseq2_20k_genes(benchmark):
    rng = np.random.default_rng(1)
    counts = rng.poisson(30, size=(20_000, 16)) + 1
    matrix = CountMatrix(
        gene_ids=[f"g{i}" for i in range(20_000)],
        sample_ids=[f"s{j}" for j in range(16)],
        counts=counts,
    )
    factors = benchmark(estimate_size_factors, matrix)
    assert factors.shape == (16,)


def test_bench_des_event_loop_10k(benchmark):
    def run_sim():
        sim = Simulation()

        def ticker():
            for _ in range(1000):
                yield Timeout(1.0)

        for _ in range(10):
            sim.process(ticker())
        sim.run()
        return sim.now

    now = benchmark(run_sim)
    assert now == 1000.0
