"""MINI-FIG3 bench: Fig. 3's mechanisms validated with the REAL aligner.

Unlike the FIG3 bench (calibrated model at paper scale), this one builds
two laptop-scale release assemblies from one chromosome universe, indexes
both with the actual suffix-array ``genomeGenerate``, aligns the same
simulated reads with the actual MMP aligner, and measures:

* index-size ratio ≈ the paper's 85/29.5 ≈ 2.88;
* wall-clock slowdown on the scaffold-heavy release;
* mapping-rate parity (<1% delta), with unique→multi conversion.
"""

import pytest

from repro.experiments.mini_fig3 import run_mini_fig3


def test_bench_mini_fig3(once):
    result = once(run_mini_fig3, n_reads=400, seed=42)

    print()
    print(result.to_table())

    assert result.index_ratio == pytest.approx(2.88, rel=0.1)
    assert result.time_ratio > 1.2
    assert result.mapping_delta < 0.01
    assert result.r108.multimapped > result.r111.multimapped
    assert result.r108.unique < result.r111.unique
