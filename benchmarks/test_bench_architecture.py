"""ARCH bench: the Fig. 2 cloud architecture, end to end.

The paper evaluates its architecture through stated goals (scalability,
high utilization, cost minimization).  This bench runs the full DES
campaign across fleet sizes and checks:

* throughput scales near-linearly with the ASG ceiling;
* fleet utilization stays high;
* the r111 index cuts makespan, cost, and init overhead vs r108.
"""

from repro.experiments.architecture import run_architecture_sweep


def test_bench_architecture(once):
    result = once(
        run_architecture_sweep, n_jobs=120, fleet_sizes=(2, 4, 8, 16), seed=0
    )

    print()
    print(result.to_table())

    t = {n: result.point(f"ondemand-x{n}") for n in (2, 4, 8, 16)}

    # near-linear scaling until the queue drains faster than boots matter
    assert t[4].jobs_per_hour > 1.6 * t[2].jobs_per_hour
    assert t[8].jobs_per_hour > 1.5 * t[4].jobs_per_hour
    assert t[16].jobs_per_hour > 1.3 * t[8].jobs_per_hour

    # utilization stays high while scaling out
    assert all(p.mean_utilization > 0.75 for p in t.values())

    # cost per job roughly flat — scaling out is ~free at constant work
    costs = [p.cost_per_job_usd for p in t.values()]
    assert max(costs) / min(costs) < 1.3

    # release-108 variant: slower, pricier, heavier init
    r108 = result.point("r108-x8")
    r111 = result.point("ondemand-x8")
    assert r108.makespan_hours > 4 * r111.makespan_hours
    assert r108.cost_usd > 5 * r111.cost_usd
    assert r108.init_overhead_seconds > 2 * r111.init_overhead_seconds
