"""ABL-DUP bench: the duplication mechanism, measured on the real aligner.

Validates the assumption behind the calibrated difficulty model
(difficulty = duplication^α): with the actual suffix-array aligner,
alignment time grows monotonically with the amount of duplicated scaffold
sequence, mean seed hits per read track the duplication factor ~linearly,
and the mapping rate does not move — the complete §III-A mechanism on one
axis, with releases 111 and 108 sitting at dup≈1.0 and ≈2.9.
"""

import pytest

from repro.experiments.scaling_study import run_scaling_study


def test_bench_scaling_study(once):
    result = once(
        run_scaling_study,
        duplication_factors=(1.0, 2.0, 3.0, 6.0),
        n_reads=200,
        seed=42,
    )

    print()
    print(result.to_table())

    assert result.time_ratios_increase
    assert result.seed_hits_track_duplication
    assert result.max_mapping_delta < 0.01

    # at release 108's duplication (~3), the real aligner already pays ~2-3x
    near_r108 = min(
        result.points, key=lambda p: abs(p.duplication_factor - 3.0)
    )
    assert result.time_ratio(near_r108) > 1.8

    # seed hits ≈ duplication factor (each genome window exists dup times)
    for p in result.points:
        assert p.mean_seed_hits == pytest.approx(
            result.baseline.mean_seed_hits * p.duplication_factor, rel=0.4
        )
